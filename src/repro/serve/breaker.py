"""Per-(module fingerprint, level) circuit breaker.

A module that reliably crashes or stalls the ``vliw`` pipeline would
otherwise pay the full retry-with-degradation cost — two deadlines and
a respawn — on *every* request. The breaker remembers: once a
(fingerprint, level) pair has failed ``threshold`` times, the pair is
**open** and :meth:`start_level` sends subsequent requests straight to
the highest level that is not known-poisoned. After ``cooldown``
seconds the pair goes half-open: exactly **one** trial request may
attempt the level again (the compiler may have been fixed, the stall
may have been load) while everyone else keeps being routed around it.
A probe that never reports back (its request died) is a lease: it
expires after another cooldown and the next caller re-claims it. A
single further failure re-opens the pair immediately because the
failure count is retained until a success clears it.
"""

import time
from typing import Dict, List, Optional, Tuple


class CircuitBreaker:
    """Failure memory keyed by (module fingerprint, compile level)."""

    def __init__(
        self,
        threshold: int = 2,
        cooldown: float = 60.0,
        clock=time.monotonic,
    ):
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures: Dict[Tuple[str, str], int] = {}
        self._open_until: Dict[Tuple[str, str], float] = {}
        #: Half-open pairs: None means a probe is available (the next
        #: is_open admits it); a float is the outstanding probe's lease
        #: expiry (everyone else sees the pair as open until then).
        self._half_open: Dict[Tuple[str, str], Optional[float]] = {}
        self.opens = 0
        self.skips = 0

    def record_failure(self, fingerprint: str, level: str) -> None:
        key = (fingerprint, level)
        self._half_open.pop(key, None)
        count = self._failures.get(key, 0) + 1
        self._failures[key] = count
        if count >= self.threshold:
            if key not in self._open_until:
                self.opens += 1
            self._open_until[key] = self._clock() + self.cooldown

    def record_success(self, fingerprint: str, level: str) -> None:
        key = (fingerprint, level)
        self._failures.pop(key, None)
        self._open_until.pop(key, None)
        self._half_open.pop(key, None)

    def is_open(self, fingerprint: str, level: str) -> bool:
        key = (fingerprint, level)
        now = self._clock()
        until = self._open_until.get(key)
        if until is not None:
            if now < until:
                return True
            # Cooldown elapsed: this caller becomes the half-open
            # probe; the retained failure count re-opens on its next
            # record_failure, a success closes fully.
            del self._open_until[key]
            self._half_open[key] = now + self.cooldown
            return False
        if key in self._half_open:
            lease = self._half_open[key]
            if lease is None or now >= lease:
                # Probe available (restored half-open, or the previous
                # probe's request died without reporting): admit one.
                self._half_open[key] = now + self.cooldown
                return False
            return True
        return False

    def start_index(self, fingerprint: str, ladder: List[str]) -> int:
        """Index into ``ladder`` of the first level worth attempting.

        Counts a skip when anything above it is open. If every level is
        open the last (safest) one is attempted anyway — the service
        never refuses to try.
        """
        for index, level in enumerate(ladder):
            if not self.is_open(fingerprint, level):
                if index:
                    self.skips += 1
                return index
        self.skips += 1
        return len(ladder) - 1

    def forget_level(self, level: str) -> int:
        """Drop all state for one ladder level, across every fingerprint.

        For when the level's root cause was fixed *out of band* — e.g.
        triage just quarantined the guilty pass, so vliw compiles now
        run without it. The per-module failure memory accumulated while
        the pass was live is stale evidence; honouring it would keep
        routing requests around a level that works again. Returns the
        number of pairs forgotten.
        """
        keys = {
            key
            for table in (self._failures, self._open_until, self._half_open)
            for key in table
            if key[1] == level
        }
        for key in keys:
            self._failures.pop(key, None)
            self._open_until.pop(key, None)
            self._half_open.pop(key, None)
        return len(keys)

    # -- persistence (journal checkpoints) -----------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe state for a journal checkpoint.

        Open deadlines are stored as *remaining* cooldown seconds, so
        restoring on a different clock (a fresh process) re-opens each
        pair for the time it had left, not forever.
        """
        now = self._clock()
        remaining = {
            f"{fp}|{level}": max(0.0, until - now)
            for (fp, level), until in self._open_until.items()
        }
        # Half-open pairs persist at 0.0 remaining: nobody will report
        # a pre-crash probe after a restart, so restore must re-admit
        # one probe, not wait out a dead lease (and never silently
        # close a pair that still has retained failures).
        for (fp, level) in self._half_open:
            remaining[f"{fp}|{level}"] = 0.0
        return {
            "failures": {
                f"{fp}|{level}": count
                for (fp, level), count in self._failures.items()
            },
            "open_remaining": remaining,
        }

    def restore(self, snapshot: Dict) -> None:
        """Load a :meth:`snapshot` (replacing current state).

        A deadline already expired at restore time lands the pair in
        **half-open** (one probe admitted on the next ``is_open``), not
        closed — the retained failure count is still evidence, and the
        probe protocol is how evidence gets retired.
        """
        if not snapshot:
            return
        self._failures = {
            tuple(key.split("|", 1)): int(count)
            for key, count in snapshot.get("failures", {}).items()
            if "|" in key
        }
        now = self._clock()
        self._open_until = {}
        self._half_open = {}
        for key, remaining in snapshot.get("open_remaining", {}).items():
            if "|" not in key:
                continue
            pair = tuple(key.split("|", 1))
            if float(remaining) > 0.0:
                self._open_until[pair] = now + float(remaining)
            else:
                self._half_open[pair] = None

    @property
    def open_entries(self) -> int:
        now = self._clock()
        return sum(1 for until in self._open_until.values() if until > now)

    def stats(self) -> Dict[str, int]:
        return {
            "opens": self.opens,
            "skips": self.skips,
            "open_entries": self.open_entries,
            "half_open": len(self._half_open),
            "tracked": len(self._failures),
        }
