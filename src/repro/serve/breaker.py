"""Per-(module fingerprint, level) circuit breaker.

A module that reliably crashes or stalls the ``vliw`` pipeline would
otherwise pay the full retry-with-degradation cost — two deadlines and
a respawn — on *every* request. The breaker remembers: once a
(fingerprint, level) pair has failed ``threshold`` times, the pair is
**open** and :meth:`start_level` sends subsequent requests straight to
the highest level that is not known-poisoned. After ``cooldown``
seconds the pair goes half-open: one trial request may attempt the
level again (the compiler may have been fixed, the stall may have been
load), and a single further failure re-opens it immediately because the
failure count is retained until a success clears it.
"""

import time
from typing import Dict, List, Tuple


class CircuitBreaker:
    """Failure memory keyed by (module fingerprint, compile level)."""

    def __init__(
        self,
        threshold: int = 2,
        cooldown: float = 60.0,
        clock=time.monotonic,
    ):
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures: Dict[Tuple[str, str], int] = {}
        self._open_until: Dict[Tuple[str, str], float] = {}
        self.opens = 0
        self.skips = 0

    def record_failure(self, fingerprint: str, level: str) -> None:
        key = (fingerprint, level)
        count = self._failures.get(key, 0) + 1
        self._failures[key] = count
        if count >= self.threshold:
            if key not in self._open_until:
                self.opens += 1
            self._open_until[key] = self._clock() + self.cooldown

    def record_success(self, fingerprint: str, level: str) -> None:
        key = (fingerprint, level)
        self._failures.pop(key, None)
        self._open_until.pop(key, None)

    def is_open(self, fingerprint: str, level: str) -> bool:
        key = (fingerprint, level)
        until = self._open_until.get(key)
        if until is None:
            return False
        if self._clock() >= until:
            # Half-open: allow one trial; the retained failure count
            # re-opens on the next record_failure.
            del self._open_until[key]
            return False
        return True

    def start_index(self, fingerprint: str, ladder: List[str]) -> int:
        """Index into ``ladder`` of the first level worth attempting.

        Counts a skip when anything above it is open. If every level is
        open the last (safest) one is attempted anyway — the service
        never refuses to try.
        """
        for index, level in enumerate(ladder):
            if not self.is_open(fingerprint, level):
                if index:
                    self.skips += 1
                return index
        self.skips += 1
        return len(ladder) - 1

    # -- persistence (journal checkpoints) -----------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-safe state for a journal checkpoint.

        Open deadlines are stored as *remaining* cooldown seconds, so
        restoring on a different clock (a fresh process) re-opens each
        pair for the time it had left, not forever.
        """
        now = self._clock()
        return {
            "failures": {
                f"{fp}|{level}": count
                for (fp, level), count in self._failures.items()
            },
            "open_remaining": {
                f"{fp}|{level}": max(0.0, until - now)
                for (fp, level), until in self._open_until.items()
            },
        }

    def restore(self, snapshot: Dict) -> None:
        """Load a :meth:`snapshot` (replacing current state)."""
        if not snapshot:
            return
        now = self._clock()
        self._failures = {
            tuple(key.split("|", 1)): int(count)
            for key, count in snapshot.get("failures", {}).items()
            if "|" in key
        }
        self._open_until = {
            tuple(key.split("|", 1)): now + float(remaining)
            for key, remaining in snapshot.get("open_remaining", {}).items()
            if "|" in key and float(remaining) > 0.0
        }

    @property
    def open_entries(self) -> int:
        now = self._clock()
        return sum(1 for until in self._open_until.values() if until > now)

    def stats(self) -> Dict[str, int]:
        return {
            "opens": self.opens,
            "skips": self.skips,
            "open_entries": self.open_entries,
            "tracked": len(self._failures),
        }
