"""Pass-level quarantine: a circuit breaker keyed by *pass name*.

The per-(fingerprint, level) breaker (:mod:`repro.serve.breaker`)
protects one module from re-proving a known failure, but a buggy pass
taxes *every* module at its level: each new fingerprint pays the full
deadline-and-degrade cost before its own breaker trips. The quarantine
closes that gap with evidence from the triage pipeline
(:mod:`repro.serve.triage`): once bisection has implicated the same
pass in ``threshold`` *distinct* failures, subsequent ``vliw`` compiles
run with that pass ablated — a finer degradation rung between "full
vliw" and "fall back to base", since the other dozen passes still run.

Lifecycle per pass::

    closed --k distinct implications--> quarantined (ablated)
    quarantined --cooldown elapsed--> probing: exactly ONE compile runs
        with the pass re-enabled (everyone else keeps the ablation)
    probe ok (xprobe_successes) --> closed again (evidence cleared)
    probe failed --> quarantined for another cooldown

Distinctness is what makes the threshold honest: evidence keys are
crash-bundle ids (fingerprint + level + failure kind), so one weird
module hammering the service cannot quarantine a pass for everyone —
that module's own breaker handles it.

Probes are leases: a claimed probe that never reports back (the probing
request died with the process) expires after ``probe_timeout`` and the
next request re-claims it, so an abandoned probe can never wedge a pass
in quarantine forever.

:meth:`snapshot`/:meth:`restore` carry the state through journal
checkpoints using *remaining* cooldown seconds (same convention as the
breaker), so quarantine survives SIGKILL+restart on a fresh monotonic
clock. A deadline already expired at restore time lands in the
half-open probing state — one probe admitted — never silently closed.
"""

import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.pipeline import QUARANTINABLE_PASSES


class PassQuarantine:
    """Evidence-driven ablation of passes the triage pipeline indicted."""

    def __init__(
        self,
        threshold: int = 2,
        cooldown: float = 300.0,
        probe_successes: int = 1,
        probe_timeout: float = 30.0,
        clock=time.monotonic,
        quarantinable: Optional[Iterable[str]] = None,
    ):
        self.threshold = threshold
        self.cooldown = cooldown
        self.probe_successes = probe_successes
        self.probe_timeout = probe_timeout
        self._clock = clock
        self.quarantinable = frozenset(
            quarantinable if quarantinable is not None else QUARANTINABLE_PASSES
        )
        #: pass -> {evidence_key: failure kind}; distinct keys count
        #: toward the threshold.
        self._evidence: Dict[str, Dict[str, str]] = {}
        #: pass -> monotonic deadline after which a probe is admitted.
        self._cooldown_until: Dict[str, float] = {}
        #: pass -> probe lease expiry (probe claimed, result pending).
        self._probing: Dict[str, float] = {}
        self._streak: Dict[str, int] = {}
        self.quarantines = 0
        self.probes = 0
        self.reinstated = 0
        self.requarantined = 0
        self.ignored = 0

    # -- evidence ------------------------------------------------------------

    def record_implication(
        self, name: str, evidence_key: str, kind: str
    ) -> bool:
        """Triage implicated ``name``; True when this *newly* quarantines it.

        Implications against passes outside the quarantinable set (the
        mandatory lowering, or a pass the pipeline does not know) are
        counted and dropped — ablating them would not leave a runnable
        pipeline behind.
        """
        if name not in self.quarantinable:
            self.ignored += 1
            return False
        bucket = self._evidence.setdefault(name, {})
        bucket[evidence_key] = kind
        if name in self._cooldown_until or name in self._probing:
            return False
        if len(bucket) >= self.threshold:
            self._cooldown_until[name] = self._clock() + self.cooldown
            self._streak.pop(name, None)
            self.quarantines += 1
            return True
        return False

    # -- per-request planning ------------------------------------------------

    def plan(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """``(disabled, probes)`` for one compile about to run at vliw.

        Every quarantined pass lands in ``disabled`` except those whose
        cooldown has elapsed and whose probe lease this call claims —
        the caller must compile with each probed pass *enabled* and
        report the outcome via :meth:`probe_result` (or let the lease
        expire). Concurrent callers keep ablating while a probe is out.
        """
        now = self._clock()
        disabled: List[str] = []
        probes: List[str] = []
        for name in sorted(set(self._cooldown_until) | set(self._probing)):
            lease = self._probing.get(name)
            if lease is not None:
                if now >= lease:
                    # Abandoned probe: re-claim it here.
                    self._probing[name] = now + self.probe_timeout
                    self.probes += 1
                    probes.append(name)
                else:
                    disabled.append(name)
                continue
            if now >= self._cooldown_until[name]:
                del self._cooldown_until[name]
                self._probing[name] = now + self.probe_timeout
                self.probes += 1
                probes.append(name)
            else:
                disabled.append(name)
        return tuple(disabled), tuple(probes)

    def probe_result(self, name: str, ok: bool) -> Optional[str]:
        """Report a probe compile; returns ``"reinstated"``,
        ``"requarantined"`` or None (probe consumed, state unchanged /
        stale report)."""
        if self._probing.pop(name, None) is None:
            return None
        if ok:
            streak = self._streak.get(name, 0) + 1
            if streak >= self.probe_successes:
                self._streak.pop(name, None)
                self._evidence.pop(name, None)
                self.reinstated += 1
                return "reinstated"
            self._streak[name] = streak
            # More successes required: expired deadline re-admits the
            # next request as another probe immediately.
            self._cooldown_until[name] = self._clock()
            return None
        self._streak.pop(name, None)
        self._cooldown_until[name] = self._clock() + self.cooldown
        self.requarantined += 1
        return "requarantined"

    def abandon_probe(self, name: str) -> None:
        """Return an unclaimed probe (the caller never attempted vliw)."""
        if self._probing.pop(name, None) is not None:
            self._cooldown_until[name] = self._clock()

    # -- introspection -------------------------------------------------------

    def active(self) -> Tuple[str, ...]:
        """Passes currently quarantined or under probe."""
        return tuple(sorted(set(self._cooldown_until) | set(self._probing)))

    def evidence_counts(self) -> Dict[str, int]:
        return {name: len(keys) for name, keys in self._evidence.items()}

    def stats(self) -> Dict:
        return {
            "active": list(self.active()),
            "probing": sorted(self._probing),
            "evidence": self.evidence_counts(),
            "threshold": self.threshold,
            "quarantines": self.quarantines,
            "probes": self.probes,
            "reinstated": self.reinstated,
            "requarantined": self.requarantined,
            "ignored": self.ignored,
        }

    # -- persistence (journal checkpoints) -----------------------------------

    def snapshot(self) -> Dict:
        """JSON-safe state; deadlines stored as *remaining* seconds.

        A pass under probe snapshots at 0.0 remaining — after a restart
        nobody will report the old probe, so the restored state must
        re-admit one, not wait out a dead lease.
        """
        now = self._clock()
        remaining = {
            name: max(0.0, until - now)
            for name, until in self._cooldown_until.items()
        }
        for name in self._probing:
            remaining[name] = 0.0
        return {
            "evidence": {
                name: dict(keys) for name, keys in self._evidence.items()
            },
            "cooldown_remaining": remaining,
        }

    def restore(self, snapshot: Optional[Dict]) -> None:
        """Load a :meth:`snapshot` (replacing current state).

        Remaining time <= 0 lands the pass half-open — quarantined with
        an already-expired deadline, so the next :meth:`plan` admits
        exactly one probe — never silently closed.
        """
        if not snapshot:
            return
        now = self._clock()
        self._evidence = {
            str(name): {str(k): str(v) for k, v in keys.items()}
            for name, keys in snapshot.get("evidence", {}).items()
            if isinstance(keys, dict)
        }
        self._cooldown_until = {
            str(name): now + max(0.0, float(remaining))
            for name, remaining in snapshot.get(
                "cooldown_remaining", {}
            ).items()
        }
        self._probing = {}
        self._streak = {}
