"""The compile service: validation, caching, dedupe, backpressure and
the retry-with-degradation ladder.

:class:`CompileService` is the synchronous, thread-safe logic layer
between a front end (:mod:`repro.serve.http`) and the worker pool
(:mod:`repro.serve.pool`). One request flows through:

1. **backpressure** — more than ``max_pending`` requests in flight and
   the request is shed immediately (``shed`` / HTTP 429); a queue with
   no bound is just a slower crash;
2. **validation** — unparseable or verifier-rejected IR is a ``reject``
   (HTTP 400) without ever touching a worker;
3. **cache** — in-memory LRU (:class:`~repro.perf.memo.CompileCache`)
   in front of the persisted, checksummed shard
   (:class:`~repro.perf.store.PersistentCacheShard`), both keyed by
   (module fingerprint, config key). Only results served at the
   *requested* level are cached — degraded results stay out so a fixed
   compiler restores full quality without cache invalidation;
4. **in-flight dedupe** — identical concurrent compiles share one
   worker execution; followers wait and reuse the leader's response;
5. **the ladder** — the request is attempted at each level of
   :func:`repro.pipeline.degradation_ladder` starting from the best the
   circuit breaker still trusts. Transient failures (worker crash,
   timeout) get one same-level retry; deterministic failures (a pass
   raising, a sanitizer violation) degrade immediately. Every attempt
   is recorded on the response, and each given-up failure feeds the
   breaker.

``level="none"`` runs zero passes, so short of the worker fleet being
unspawnable, every well-formed request ends in a correct binary.

With a :class:`~repro.serve.journal.WriteAheadJournal` attached the
service is additionally **crash-durable**: ladder-bound requests are
journaled before compile and on completion, breaker state and counters
ride checkpoint snapshots, and :meth:`CompileService.recover` replays
the journal on restart — re-enqueueing whatever was in flight when the
process died (at-least-once completion). :meth:`begin_shutdown` /
:meth:`drain` give SIGTERM a graceful path: stop admission, finish
in-flight work, checkpoint, exit.

The service is also **self-healing** (see :mod:`repro.serve.triage`):
deterministic failures are flight-recorded as crash bundles, a
background triage worker replays/bisects/reduces them, and once a pass
is indicted often enough the :class:`~repro.serve.quarantine.PassQuarantine`
inserts a finer degradation rung — ``vliw`` minus the guilty pass —
ahead of the fall to ``base``. Ablated (and probe) compiles are forced
through the guarded pipeline's differential check, so quarantine never
trades a known-bad pass for an unchecked binary; quarantine state rides
journal checkpoints and survives SIGKILL+restart.
"""

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module
from repro.perf.fingerprint import fingerprint_module
from repro.perf.memo import CompileCache, config_key
from repro.perf.store import PersistentCacheShard
from repro.pipeline import degradation_ladder
from repro.robustness.report import REQUEST_FAILURE_KINDS
from repro.serve.breaker import CircuitBreaker
from repro.serve.quarantine import PassQuarantine
from repro.serve.triage import BUNDLE_KINDS


@dataclass
class ServeRequest:
    """One compile request, front-end agnostic."""

    ir: str
    level: str = "vliw"
    #: Pipeline options forwarded to the worker: ``unroll_factor``,
    #: ``software_pipelining``, ``pipeliner`` (``swp`` | ``modulo`` |
    #: ``modulo-opt``), ``resilience``, ``sanitize``, ``diff_seed``,
    #: ``pass_budget``, ``fault_plan`` (compact spec).
    options: Dict = field(default_factory=dict)
    #: Fault drill (tests/soak only): see :mod:`repro.serve.worker`.
    inject: Optional[Dict] = None
    request_id: Optional[str] = None
    #: Per-request wall-clock budget; None uses the service default.
    deadline: Optional[float] = None


@dataclass
class AttemptRecord:
    """One ladder attempt and how it ended."""

    level: str
    status: str  # "ok" or one of REQUEST_FAILURE_KINDS
    detail: str = ""
    seconds: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "level": self.level,
            "status": self.status,
            "detail": self.detail,
            "seconds": round(self.seconds, 4),
        }


@dataclass
class ServeResponse:
    """The service's answer; serialises to the wire format."""

    status: str  # "ok" | "reject" | "shed" | "failed"
    level_requested: str
    level_served: Optional[str] = None
    ir: Optional[str] = None
    static_instructions: Optional[int] = None
    degraded: bool = False
    cached: bool = False
    deduped: bool = False
    breaker_skip: bool = False
    attempts: List[AttemptRecord] = field(default_factory=list)
    latency_seconds: float = 0.0
    fingerprint: str = ""
    detail: str = ""
    request_id: Optional[str] = None
    #: Passes ablated from the binary actually served (the quarantine's
    #: finer degradation rung); empty for full-quality compiles.
    quarantined_passes: List[str] = field(default_factory=list)

    @property
    def http_status(self) -> int:
        return {"ok": 200, "reject": 400, "shed": 429}.get(self.status, 500)

    def to_dict(self) -> Dict:
        return {
            "status": self.status,
            "level_requested": self.level_requested,
            "level_served": self.level_served,
            "ir": self.ir,
            "static_instructions": self.static_instructions,
            "degraded": self.degraded,
            "cached": self.cached,
            "deduped": self.deduped,
            "breaker_skip": self.breaker_skip,
            "attempts": [a.to_dict() for a in self.attempts],
            "latency_seconds": round(self.latency_seconds, 4),
            "fingerprint": self.fingerprint,
            "detail": self.detail,
            "request_id": self.request_id,
            "quarantined_passes": list(self.quarantined_passes),
        }


class _Inflight:
    """Rendezvous for deduped identical compiles."""

    def __init__(self):
        self.event = threading.Event()
        self.response: Optional[ServeResponse] = None


class CompileService:
    """Thread-safe compile-as-a-service core."""

    def __init__(
        self,
        pool,
        cache: Optional[CompileCache] = None,
        store: Optional[PersistentCacheShard] = None,
        max_pending: int = 64,
        deadline: float = 10.0,
        retry_per_level: int = 1,
        breaker: Optional[CircuitBreaker] = None,
        warm_start: bool = True,
        journal=None,
        quarantine: Optional[PassQuarantine] = None,
        recorder=None,
    ):
        self.pool = pool
        self.cache = cache if cache is not None else CompileCache(max_entries=256)
        self.store = store
        self.max_pending = max_pending
        self.deadline = deadline
        self.retry_per_level = retry_per_level
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.journal = journal
        self.quarantine = quarantine if quarantine is not None else PassQuarantine()
        #: Flight recorder (:class:`~repro.serve.triage.FlightRecorder`)
        #: for crash bundles; None disables flight recording.
        self.recorder = recorder
        #: Background :class:`~repro.serve.triage.TriageWorker`, wired by
        #: the CLI; the service only consults it to retire evidence when
        #: a probe reinstates a pass.
        self.triage = None
        self._lock = threading.Lock()
        self._inflight: Dict = {}
        self._pending = 0
        #: accept_seq -> journaled request wire dict, for requests whose
        #: completion record has not been written yet (checkpoints must
        #: carry them forward).
        self._journaled: Dict[int, Dict] = {}
        self._closing = False
        self._drained = threading.Event()
        self._drained.set()
        self._recovering = 0
        self._recovery_thread: Optional[threading.Thread] = None
        self.recovery_seconds: Optional[float] = None
        self.recovered_inflight = 0
        self._started_at = time.time()
        self.requests = 0
        self.completed = 0
        self.shed = 0
        self.rejected = 0
        self.failed = 0
        self.degraded = 0
        self.dedupe_hits = 0
        self.store_hits = 0
        self.failures_by_kind: Dict[str, int] = {
            kind: 0 for kind in REQUEST_FAILURE_KINDS
        }
        self.served_by_level: Dict[str, int] = {}
        self._latencies: List[float] = []
        if self.store is not None and warm_start:
            for fp, key, payload in self.store.load_all():
                self.cache.store_fp(fp, key, payload)

    # -- entry point ---------------------------------------------------------

    def compile(self, request: ServeRequest) -> ServeResponse:
        """Serve one request end to end; never raises."""
        start = time.perf_counter()
        with self._lock:
            self.requests += 1
            closing = self._closing
            admitted = not closing and self._pending < self.max_pending
            if admitted:
                self._pending += 1
                self._drained.clear()
            else:
                self.shed += 1
                self.failures_by_kind["overload"] += 1
                pending = self._pending
        if not admitted:
            detail = (
                "service is shutting down; admission stopped"
                if closing
                else f"{pending} requests already pending "
                f"(limit {self.max_pending}); retry later"
            )
            return self._finish(
                ServeResponse(
                    status="shed",
                    level_requested=request.level,
                    detail=detail,
                    request_id=request.request_id,
                ),
                start,
            )
        try:
            response = self._compile(request)
        except Exception as exc:  # noqa: BLE001 — the service must not die
            response = ServeResponse(
                status="failed",
                level_requested=request.level,
                detail=f"internal error: {type(exc).__name__}: {exc}",
                request_id=request.request_id,
            )
        finally:
            with self._lock:
                self._pending -= 1
                if self._pending == 0:
                    self._drained.set()
        return self._finish(response, start)

    def _finish(self, response: ServeResponse, start: float) -> ServeResponse:
        response.latency_seconds = time.perf_counter() - start
        with self._lock:
            self._latencies.append(response.latency_seconds)
            if len(self._latencies) > 100_000:
                del self._latencies[: len(self._latencies) // 2]
            if response.status == "ok":
                self.completed += 1
                level = response.level_served or response.level_requested
                self.served_by_level[level] = self.served_by_level.get(level, 0) + 1
                if response.degraded:
                    self.degraded += 1
            elif response.status == "reject":
                self.rejected += 1
            elif response.status == "failed":
                self.failed += 1
        return response

    # -- pipeline ------------------------------------------------------------

    def _compile(self, request: ServeRequest) -> ServeResponse:
        try:
            module = parse_module(request.ir)
            verify_module(module)
        except Exception as exc:
            return ServeResponse(
                status="reject",
                level_requested=request.level,
                detail=f"{type(exc).__name__}: {exc}",
                request_id=request.request_id,
            )
        fp = fingerprint_module(module)
        qdisabled: Tuple[str, ...] = ()
        qprobes: Tuple[str, ...] = ()
        if request.level == "vliw":
            qdisabled, qprobes = self.quarantine.plan()
        key = config_key(request.level, **request.options)
        if qdisabled:
            # Ablated results are keyed apart from full-quality ones, so
            # a later reinstatement restores full quality without cache
            # invalidation (the clean key was never polluted).
            key += "|q:" + ",".join(qdisabled)

        # Fault drills bypass the read path — a cache hit would swallow
        # the injection the test asked for — but their (sound) results
        # may still be stored below. Probe compiles bypass it too: the
        # probe's whole point is to run the suspect pass again.
        if request.inject is None and not qprobes:
            hit = self._cache_get(fp, key)
            if hit is not None:
                return ServeResponse(
                    status="ok",
                    level_requested=request.level,
                    level_served=hit["level_served"],
                    ir=hit["ir"],
                    static_instructions=hit.get("static_instructions"),
                    cached=True,
                    fingerprint=fp,
                    request_id=request.request_id,
                    quarantined_passes=list(hit.get("quarantined_passes") or []),
                )
            leader, entry = self._join_inflight(fp, key)
            if not leader:
                return self._await_leader(request, entry, fp)
            response = None
            try:
                response = self._run_ladder_journaled(
                    request, fp, key, qdisabled, qprobes
                )
            finally:
                entry.response = response
                entry.event.set()
                with self._lock:
                    self._inflight.pop((fp, key), None)
            return response
        return self._run_ladder_journaled(request, fp, key, qdisabled, qprobes)

    def _cache_get(self, fp: str, key: str) -> Optional[Dict]:
        hit = self.cache.lookup_fp(fp, key)
        if hit is not None:
            return hit
        if self.store is not None:
            payload = self.store.get(fp, key)
            if payload is not None:
                with self._lock:
                    self.store_hits += 1
                self.cache.store_fp(fp, key, payload)
                return payload
        return None

    def _join_inflight(self, fp: str, key: str):
        with self._lock:
            entry = self._inflight.get((fp, key))
            if entry is not None:
                self.dedupe_hits += 1
                return False, entry
            entry = _Inflight()
            self._inflight[(fp, key)] = entry
            return True, entry

    def _await_leader(
        self, request: ServeRequest, entry: _Inflight, fp: str
    ) -> ServeResponse:
        # Worst case the leader walks the whole ladder with retries;
        # the timeout is defensive only (the leader's finally always
        # fires in-process).
        budget = (request.deadline or self.deadline) + getattr(
            self.pool, "grace", 1.0
        )
        ladder_len = len(degradation_ladder(request.level))
        entry.event.wait(timeout=budget * ladder_len * (1 + self.retry_per_level) + 5.0)
        leader_response = entry.response
        if leader_response is None:
            return ServeResponse(
                status="failed",
                level_requested=request.level,
                detail="deduped leader never answered",
                fingerprint=fp,
                request_id=request.request_id,
            )
        return replace(
            leader_response,
            deduped=True,
            attempts=list(leader_response.attempts),
            request_id=request.request_id,
        )

    # -- write-ahead journaling ----------------------------------------------

    @staticmethod
    def _wire(request: ServeRequest) -> Dict:
        """The journal-persisted form of a request (drills excluded —
        a fault drill belongs to the run that asked for it, not to the
        recovery replaying its work)."""
        return {
            "ir": request.ir,
            "level": request.level,
            "options": request.options,
            "id": request.request_id,
            "deadline": request.deadline,
        }

    def _run_ladder_journaled(
        self,
        request: ServeRequest,
        fp: str,
        key: str,
        qdisabled: Tuple[str, ...] = (),
        qprobes: Tuple[str, ...] = (),
    ) -> ServeResponse:
        """Accept-journal, run the ladder, completion-journal."""
        if self.journal is None:
            return self._run_ladder(request, fp, key, qdisabled, qprobes)
        accept_seq = self.journal.append_accept(self._wire(request))
        with self._lock:
            self._journaled[accept_seq] = self._wire(request)
        try:
            response = self._run_ladder(request, fp, key, qdisabled, qprobes)
        finally:
            with self._lock:
                self._journaled.pop(accept_seq, None)
        self.journal.append_complete(
            accept_seq,
            response.status,
            fingerprint=fp,
            level_served=response.level_served,
            attempts=[[a.level, a.status] for a in response.attempts],
        )
        if self.journal.should_checkpoint:
            self.checkpoint()
        return response

    def checkpoint(self) -> None:
        """Write a journal checkpoint (breaker + counters + in-flight)."""
        if self.journal is None:
            return
        with self._lock:
            inflight = list(self._journaled.values())
            counters = self._counters_snapshot_locked()
        self.journal.checkpoint(
            self.breaker.snapshot(),
            counters,
            inflight,
            quarantine=self.quarantine.snapshot(),
        )

    def _counters_snapshot_locked(self) -> Dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "failed": self.failed,
            "degraded": self.degraded,
            "dedupe_hits": self.dedupe_hits,
            "store_hits": self.store_hits,
            "failures_by_kind": dict(self.failures_by_kind),
            "served_by_level": dict(self.served_by_level),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
            },
        }

    def _restore_counters(self, counters: Dict) -> None:
        if not counters:
            return
        with self._lock:
            self.requests = int(counters.get("requests", 0))
            self.completed = int(counters.get("completed", 0))
            self.shed = int(counters.get("shed", 0))
            self.rejected = int(counters.get("rejected", 0))
            self.failed = int(counters.get("failed", 0))
            self.degraded = int(counters.get("degraded", 0))
            self.dedupe_hits = int(counters.get("dedupe_hits", 0))
            self.store_hits = int(counters.get("store_hits", 0))
            for kind, count in counters.get("failures_by_kind", {}).items():
                if kind in self.failures_by_kind:
                    self.failures_by_kind[kind] = int(count)
            for level, count in counters.get("served_by_level", {}).items():
                self.served_by_level[level] = int(count)
        cache = counters.get("cache", {})
        self.cache.hits += int(cache.get("hits", 0))
        self.cache.misses += int(cache.get("misses", 0))
        self.cache.evictions += int(cache.get("evictions", 0))

    # -- crash recovery ------------------------------------------------------

    def recover(self, block: bool = False) -> Dict:
        """Replay the journal; restore state; re-enqueue in-flight work.

        Returns a summary dict. Re-enqueued requests run on a background
        thread (oldest first) through the normal ``compile`` path — each
        is re-journaled, so a crash *during* recovery still loses
        nothing. ``health()`` reports ``recovering`` (HTTP 503) until
        the backlog is finished; ``block=True`` waits for it inline.
        """
        t0 = time.perf_counter()
        if self.journal is None:
            return {"recovered_inflight": 0, "replayed": 0}
        state = self.journal.replay()
        self.breaker.restore(state.breaker)
        self.quarantine.restore(state.quarantine)
        self._restore_counters(state.counters)
        for fp, level, status in state.attempts:
            if status == "ok":
                self.breaker.record_success(fp, level)
            else:
                self.breaker.record_failure(fp, level)
        pending = list(state.inflight)
        self.recovered_inflight = len(pending)
        with self._lock:
            self._recovering = len(pending)

        def _replay_backlog():
            for wire in pending:
                try:
                    self.compile(
                        ServeRequest(
                            ir=wire.get("ir", ""),
                            level=wire.get("level", "vliw"),
                            options=wire.get("options") or {},
                            request_id=wire.get("id"),
                            deadline=wire.get("deadline"),
                        )
                    )
                finally:
                    with self._lock:
                        self._recovering -= 1
            self.recovery_seconds = time.perf_counter() - t0

        if pending:
            self._recovery_thread = threading.Thread(
                target=_replay_backlog, name="repro-serve-recovery", daemon=True
            )
            self._recovery_thread.start()
            if block:
                self._recovery_thread.join()
        else:
            self.recovery_seconds = time.perf_counter() - t0
        # Rewrite the journal as one checkpoint: replayed history is
        # now live state, and an unbounded journal defeats recovery-time
        # bounds.
        self.checkpoint()
        return {
            "recovered_inflight": self.recovered_inflight,
            "replayed": state.replayed,
            "corrupt_skipped": state.corrupt_skipped,
            "completed_before_crash": state.completed,
            "breaker_tracked": len(state.breaker.get("failures", {})),
            "quarantined_passes": sorted(self.quarantine.active()),
        }

    # -- graceful shutdown ---------------------------------------------------

    def begin_shutdown(self) -> None:
        """Stop admission; in-flight requests keep running."""
        with self._lock:
            self._closing = True

    def drain(self, deadline: float = 10.0) -> bool:
        """Wait for in-flight requests to finish; True when fully drained."""
        return self._drained.wait(timeout=deadline)

    def flush(self) -> None:
        """Final checkpoint so restart replays state, not history."""
        self.checkpoint()

    # -- the degradation ladder ----------------------------------------------

    def _run_ladder(
        self,
        request: ServeRequest,
        fp: str,
        key: str,
        qdisabled: Tuple[str, ...] = (),
        qprobes: Tuple[str, ...] = (),
    ) -> ServeResponse:
        ladder = degradation_ladder(request.level)
        start_index = self.breaker.start_index(fp, ladder)
        attempts: List[AttemptRecord] = []
        attempt_no = 0
        probes_pending = list(qprobes)
        try:
            for level in ladder[start_index:]:
                options = request.options
                if level == "vliw" and (qdisabled or probes_pending):
                    options = dict(request.options)
                    if qdisabled:
                        merged = set(options.get("disable") or ()) | set(qdisabled)
                        options["disable"] = sorted(merged)
                    # Quarantine may never trade a known-bad pass for an
                    # unchecked binary: ablated and probe compiles go
                    # through the guarded pipeline's differential check,
                    # with rollback so a probe of a still-bad pass costs
                    # the prober nothing.
                    options.setdefault("resilience", "rollback")
                failures_here = 0
                while True:
                    worker_request = {
                        "ir": request.ir,
                        "level": level,
                        "attempt": attempt_no,
                        "options": options,
                        "inject": request.inject,
                        "deadline": request.deadline or self.deadline,
                    }
                    began = time.perf_counter()
                    answer = self.pool.submit(worker_request)
                    seconds = time.perf_counter() - began
                    attempt_no += 1
                    status = answer.get("status", "error")
                    if status == "ok":
                        rollbacks = int(answer.get("rollbacks") or 0)
                        if level == "vliw" and probes_pending:
                            # A probed pass is healthy only if it ran and
                            # survived the differential check — a rollback
                            # means the guard caught it misbehaving again.
                            for name in probes_pending:
                                self._report_probe(name, rollbacks == 0)
                            probes_pending = []
                        self.breaker.record_success(fp, level)
                        attempts.append(AttemptRecord(level, "ok", seconds=seconds))
                        payload = {
                            "ir": answer["ir"],
                            "level_served": level,
                            "static_instructions": answer.get("static_instructions"),
                        }
                        if level == "vliw" and qdisabled:
                            payload["quarantined_passes"] = list(qdisabled)
                        if level == request.level and rollbacks == 0:
                            # Rolled-back results are quality-degraded
                            # (a pass's effect is missing): keep them out
                            # so the healed pipeline restores quality.
                            self.cache.store_fp(fp, key, payload)
                            if self.store is not None:
                                self.store.put(fp, key, payload)
                        return ServeResponse(
                            status="ok",
                            level_requested=request.level,
                            level_served=level,
                            ir=answer["ir"],
                            static_instructions=answer.get("static_instructions"),
                            degraded=level != request.level,
                            breaker_skip=start_index > 0,
                            attempts=attempts,
                            fingerprint=fp,
                            request_id=request.request_id,
                            quarantined_passes=(
                                list(qdisabled) if level == "vliw" else []
                            ),
                        )
                    if status == "reject":
                        # The service already verified this IR; a worker
                        # reject means the two disagree — surface loudly.
                        return ServeResponse(
                            status="failed",
                            level_requested=request.level,
                            detail=f"worker rejected validated IR: {answer.get('detail')}",
                            attempts=attempts,
                            fingerprint=fp,
                            request_id=request.request_id,
                        )
                    kind = self._failure_kind(status)
                    attempts.append(
                        AttemptRecord(level, kind, answer.get("detail", ""), seconds)
                    )
                    with self._lock:
                        self.failures_by_kind[kind] += 1
                    self.breaker.record_failure(fp, level)
                    failures_here += 1
                    # Crashes and timeouts may be transient (a poisoned
                    # worker, a load spike): one same-level retry. An
                    # in-worker exception, sanitizer violation or OOM is
                    # deterministic for this input — the same compile at
                    # the same level will blow the same limit — so degrade
                    # immediately; a lower level allocates less.
                    if status in ("crash", "timeout") and failures_here <= self.retry_per_level:
                        continue
                    # Giving up at this level: report probe failures and
                    # flight-record the failure for background triage.
                    if level == "vliw" and probes_pending:
                        for name in probes_pending:
                            self._report_probe(name, False)
                        probes_pending = []
                    self._flight_record(
                        request, fp, level, kind, options, answer, attempts
                    )
                    break
        finally:
            # Probes the ladder never resolved (breaker skipped vliw, or
            # an internal error unwound us) go back to half-open so the
            # next request re-claims them instead of waiting out a dead
            # lease.
            for name in probes_pending:
                self.quarantine.abandon_probe(name)
        return ServeResponse(
            status="failed",
            level_requested=request.level,
            detail="every ladder level failed",
            attempts=attempts,
            fingerprint=fp,
            request_id=request.request_id,
        )

    def pass_quarantined(self, name: str) -> None:
        """Triage just quarantined ``name``: heal the routing around it.

        Vliw compiles now run with the pass ablated, so the breaker's
        per-module vliw failure memory — accumulated while the pass was
        live — is stale; clearing it lets the very next request retry
        the full level instead of waiting out a breaker cooldown. The
        transition is made durable immediately (same as probe
        outcomes). Wired as the triage worker's ``on_quarantine``.
        """
        with self._lock:
            self.breaker.forget_level("vliw")
        if self.journal is not None:
            self.checkpoint()

    def _report_probe(self, name: str, ok: bool) -> None:
        """Feed one probe outcome to the quarantine; retire evidence on
        reinstatement so a later regression can be re-indicted."""
        outcome = self.quarantine.probe_result(name, ok)
        if outcome == "reinstated" and self.triage is not None:
            try:
                self.triage.forget_pass(name)
            except Exception:  # noqa: BLE001 — probes must not kill serving
                pass
        if outcome is not None and self.journal is not None:
            # Quarantine transitions are rare and load-bearing: make
            # them durable now, not at the next periodic checkpoint.
            self.checkpoint()

    def _flight_record(
        self,
        request: ServeRequest,
        fp: str,
        level: str,
        kind: str,
        options: Dict,
        answer: Dict,
        attempts: List[AttemptRecord],
    ) -> None:
        """Write a crash bundle for a given-up failure at ``level``.

        Drill-injected failures are synthetic worker faults, not
        compiler bugs — they would only no-repro in triage. ``none``
        runs zero passes, so there is nothing for triage to bisect.
        """
        if self.recorder is None or request.inject is not None:
            return
        if level == "none" or kind not in BUNDLE_KINDS:
            return
        try:
            self.recorder.record(
                fp,
                level,
                kind,
                request.ir,
                options=options,
                detail=answer.get("detail", ""),
                attempts=[[a.level, a.status] for a in attempts],
                seed=int(options.get("diff_seed", 0) or 0),
            )
        except Exception:  # noqa: BLE001 — recording must not kill serving
            pass

    @staticmethod
    def _failure_kind(status: str) -> str:
        if status in ("crash", "error"):
            return "crash"
        if status == "timeout":
            return "timeout"
        if status == "sanitizer-violation":
            return "sanitizer-violation"
        if status == "oom":
            return "oom"
        return "crash"

    # -- introspection -------------------------------------------------------

    def health(self) -> Dict:
        pool = self.pool.stats()
        healthy = pool.get("alive", 0) > 0
        with self._lock:
            recovering = self._recovering
        if not healthy:
            status = "degraded"
        elif recovering:
            status = "recovering"
        else:
            status = "ok"
        return {
            "status": status,
            "workers_alive": pool.get("alive", 0),
            "workers": pool.get("workers", 0),
            "pending": self._pending,
            "recovering": recovering,
            "uptime_seconds": round(time.time() - self._started_at, 1),
        }

    def stats(self) -> Dict:
        with self._lock:
            latencies = sorted(self._latencies)
            counts = {
                "total": self.requests,
                "ok": self.completed,
                "degraded": self.degraded,
                "shed": self.shed,
                "rejected": self.rejected,
                "failed": self.failed,
                "pending": self._pending,
            }
            failures = dict(self.failures_by_kind)
            levels = dict(self.served_by_level)
            dedupe = {"hits": self.dedupe_hits, "inflight": len(self._inflight)}
            store_hits = self.store_hits
        cache = dict(self.cache.counters)
        if self.store is not None:
            cache.update(self.store.counters)
        cache["store.promotions"] = store_hits
        journal = None
        if self.journal is not None:
            journal = dict(self.journal.counters)
            journal["recovery_pending"] = self._recovering
            journal["recovered_inflight"] = self.recovered_inflight
            if self.recovery_seconds is not None:
                journal["recovery_seconds"] = round(self.recovery_seconds, 3)
        triage = {
            "quarantine": self.quarantine.stats(),
            "recorder": (
                self.recorder.stats() if self.recorder is not None else None
            ),
            "index": (
                self.triage.index.summary() if self.triage is not None else None
            ),
            "worker": self.triage.stats() if self.triage is not None else None,
        }
        return {
            "uptime_seconds": round(time.time() - self._started_at, 1),
            "requests": counts,
            "latency_ms": {
                "p50": _percentile(latencies, 0.50) * 1e3,
                "p99": _percentile(latencies, 0.99) * 1e3,
                "count": len(latencies),
            },
            "levels_served": levels,
            "failures": failures,
            "cache": cache,
            "dedupe": dedupe,
            "breaker": self.breaker.stats(),
            "pool": self.pool.stats(),
            "journal": journal,
            "triage": triage,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[index]
