"""In-production crash triage: flight recorder, replay, reduce, indict.

The serve stack contains failures (degrade, breaker) but never *learns*
from them — the fuzz stack's bisection and delta-debugging reducer that
can name the guilty pass sit idle in production. This module closes the
loop:

- :class:`FlightRecorder` — on any deterministic request failure the
  service writes a checksummed **crash bundle** (module IR, config,
  level, fault class, env fingerprint) under ``--state-dir/triage/``.
  Bundles are content-addressed (``fp12-level-kind``), so the same
  failure recurring is deduplicated, and the pending set is bounded —
  a crash storm drops bundles, it does not eat the disk.
- :class:`TriageWorker` — a background thread that replays each pending
  bundle in a **separate process** (triage replays failures; a replay
  that segfaults or hangs must not take the service with it), reusing
  ``fuzz/oracle.py``'s differential check + per-pass bisection to name
  the guilty pass and ``fuzz/reduce.py``'s delta-debugging reducer to
  shrink the module while the signature reproduces.
- :class:`TriageIndex` — findings deduplicated by signature (guilty
  pass, failure kind, reduced fingerprint) into a persistent,
  durable-atomically rewritten JSON index.
- confirmed indictments feed
  :class:`~repro.serve.quarantine.PassQuarantine`, and (optionally) the
  reduced module is promoted into the fuzz corpus so the failure
  replays forever under ``tests/fuzz/test_corpus_replay.py``.

Every byte on disk goes through the ``fs`` interface and the journal's
``encode_record``/``decode_record`` framing, so chaos-fs faults and
torn writes are survivable: a corrupt bundle is quarantined aside and
counted, never replayed, never fatal.
"""

import multiprocessing
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.robustness.chaosfs import REAL_FS
from repro.serve.journal import decode_record, encode_record

#: Failure kinds worth bundling: deterministic for the input, so a
#: replay has something to find. ("overload" is the service's problem,
#: not a compiler bug.)
BUNDLE_KINDS = ("crash", "sanitizer-violation", "oom", "timeout")

_BUNDLE_SUFFIX = ".crash"


def _env_fingerprint() -> Dict[str, str]:
    return {
        "python": sys.version.split()[0],
        "platform": sys.platform,
    }


@dataclass
class CrashBundle:
    """Everything a triage replay needs, as captured at failure time."""

    bundle_id: str
    fingerprint: str
    level: str
    kind: str
    ir: str
    options: Dict = field(default_factory=dict)
    detail: str = ""
    attempts: List = field(default_factory=list)
    env: Dict = field(default_factory=_env_fingerprint)
    seed: int = 0

    def to_record(self) -> Dict:
        return {
            "bundle_id": self.bundle_id,
            "fingerprint": self.fingerprint,
            "level": self.level,
            "kind": self.kind,
            "ir": self.ir,
            "options": self.options,
            "detail": self.detail,
            "attempts": self.attempts,
            "env": self.env,
            "seed": self.seed,
        }

    @classmethod
    def from_record(cls, record: Dict) -> "CrashBundle":
        return cls(
            bundle_id=str(record.get("bundle_id", "")),
            fingerprint=str(record.get("fingerprint", "")),
            level=str(record.get("level", "vliw")),
            kind=str(record.get("kind", "crash")),
            ir=str(record.get("ir", "")),
            options=record.get("options") or {},
            detail=str(record.get("detail", "")),
            attempts=record.get("attempts") or [],
            env=record.get("env") or {},
            seed=int(record.get("seed", 0)),
        )


class FlightRecorder:
    """Checksummed crash bundles under ``<root>/pending``.

    Thread-safe; all I/O is contained (an OSError is a counter, not an
    outage). Bundle ids are ``fp[:12]-level-kind``: the same module
    failing the same way twice writes one bundle, and a bundle already
    triaged (moved to ``resolved/``) is not re-recorded until
    :meth:`forget` clears it — which the service does when a quarantined
    pass is reinstated, so a regression is re-detectable.
    """

    def __init__(self, root, fs=None, max_pending: int = 64):
        self.root = Path(root)
        self.fs = fs if fs is not None else REAL_FS
        self.max_pending = max_pending
        self.pending_dir = self.root / "pending"
        self.resolved_dir = self.root / "resolved"
        self.pending_dir.mkdir(parents=True, exist_ok=True)
        self.resolved_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.recorded = 0
        self.deduped = 0
        self.dropped = 0
        self.resolved = 0
        self.corrupt = 0
        self.errors = 0
        self.forgotten = 0

    def record(
        self,
        fingerprint: str,
        level: str,
        kind: str,
        ir: str,
        options: Optional[Dict] = None,
        detail: str = "",
        attempts: Optional[List] = None,
        seed: int = 0,
    ) -> Optional[str]:
        """Write one bundle; returns its id, or None (dedupe/drop/error)."""
        bundle_id = f"{fingerprint[:12]}-{level}-{kind}"
        name = bundle_id + _BUNDLE_SUFFIX
        with self._lock:
            if (self.pending_dir / name).exists() or (
                self.resolved_dir / name
            ).exists():
                self.deduped += 1
                return None
            if len(self._pending_names()) >= self.max_pending:
                self.dropped += 1
                return None
            bundle = CrashBundle(
                bundle_id=bundle_id,
                fingerprint=fingerprint,
                level=level,
                kind=kind,
                ir=ir,
                options=dict(options or {}),
                detail=detail,
                attempts=list(attempts or []),
                seed=seed,
            )
            path = self.pending_dir / name
            try:
                self.fs.write_bytes(path, encode_record(bundle.to_record()))
                self.fs.fsync(path)
            except OSError:
                self.errors += 1
                return None
            self.recorded += 1
            return bundle_id

    def _pending_names(self) -> List[str]:
        try:
            return sorted(
                p.name
                for p in self.pending_dir.iterdir()
                if p.name.endswith(_BUNDLE_SUFFIX)
            )
        except OSError:
            return []

    def pending(self) -> List[Path]:
        """Pending bundle paths, oldest id first."""
        return [self.pending_dir / name for name in self._pending_names()]

    def load(self, path: Path) -> Optional[CrashBundle]:
        """Decode one bundle; a corrupt file is shunted aside, not fatal."""
        try:
            raw = self.fs.read_bytes(path)
        except OSError:
            self.errors += 1
            return None
        record = decode_record(raw.splitlines()[0] if raw else b"")
        if record is None:
            self.corrupt += 1
            try:
                self.fs.replace(path, path.with_suffix(".corrupt"))
            except OSError:
                pass
            return None
        return CrashBundle.from_record(record)

    def resolve(self, path: Path, outcome: str = "") -> None:
        """Move a triaged bundle out of the pending set (keeps the dedupe)."""
        try:
            self.fs.replace(path, self.resolved_dir / path.name)
        except OSError:
            self.errors += 1
            return
        self.resolved += 1

    def forget(self, bundle_ids) -> int:
        """Drop resolved bundles so their failures can re-record.

        Called when a quarantined pass is reinstated: if it regresses,
        the same (fingerprint, level, kind) must be able to open a fresh
        bundle and re-indict it.
        """
        dropped = 0
        for bundle_id in bundle_ids:
            path = self.resolved_dir / (str(bundle_id) + _BUNDLE_SUFFIX)
            try:
                self.fs.remove(path)
            except OSError:
                continue
            dropped += 1
        self.forgotten += dropped
        return dropped

    def stats(self) -> Dict:
        return {
            "recorded": self.recorded,
            "deduped": self.deduped,
            "dropped": self.dropped,
            "resolved": self.resolved,
            "corrupt": self.corrupt,
            "errors": self.errors,
            "forgotten": self.forgotten,
            "pending": len(self._pending_names()),
        }


class TriageIndex:
    """Persistent findings, deduplicated by signature.

    Signature = ``guilty pass | failure kind | reduced fingerprint`` —
    one entry per distinct bug, with an occurrence count and the source
    bundle ids. Rewritten durable-atomically on every add (findings are
    rare next to requests).
    """

    NAME = "index.json"

    def __init__(self, root, fs=None):
        self.root = Path(root)
        self.fs = fs if fs is not None else REAL_FS
        self.path = self.root / self.NAME
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.entries: Dict[str, Dict] = {}
        self.save_errors = 0
        self.corrupt = False
        self._load()

    def _load(self) -> None:
        try:
            raw = self.fs.read_bytes(self.path)
        except OSError:
            return
        record = decode_record(raw.splitlines()[0] if raw else b"")
        if record is None:
            self.corrupt = True
            return
        entries = record.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def _save_locked(self) -> None:
        tmp = self.path.with_name(self.path.name + ".new")
        try:
            self.fs.write_bytes(tmp, encode_record({"entries": self.entries}))
            self.fs.fsync(tmp)
            self.fs.replace(tmp, self.path)
            self.fs.fsync_dir(self.path.parent)
        except OSError:
            self.save_errors += 1

    def add(self, result: Dict, source: str) -> Tuple[str, bool]:
        """Record one triage finding; returns (signature, is_new)."""
        guilty = result.get("guilty") or "?"
        kind = result.get("kind") or "?"
        reduced_fp = (result.get("reduced_fp") or "")[:12]
        signature = f"{guilty}|{kind}|{reduced_fp}"
        with self._lock:
            entry = self.entries.get(signature)
            new = entry is None
            if new:
                entry = {
                    "guilty": guilty,
                    "kind": kind,
                    "reduced_fp": reduced_fp,
                    "config": result.get("config", ""),
                    "detail": result.get("detail", ""),
                    "reduced_ir": result.get("reduced_ir", ""),
                    "occurrences": 0,
                    "sources": [],
                }
                self.entries[signature] = entry
            entry["occurrences"] += 1
            if source and source not in entry["sources"]:
                entry["sources"].append(source)
            self._save_locked()
        return signature, new

    def sources_for(self, guilty: str) -> List[str]:
        with self._lock:
            out: List[str] = []
            for entry in self.entries.values():
                if entry.get("guilty") == guilty:
                    out.extend(entry.get("sources", []))
            return out

    def summary(self) -> Dict:
        with self._lock:
            by_pass: Dict[str, int] = {}
            occurrences = 0
            for entry in self.entries.values():
                occurrences += int(entry.get("occurrences", 0))
                guilty = entry.get("guilty", "?")
                by_pass[guilty] = by_pass.get(guilty, 0) + 1
            return {
                "signatures": len(self.entries),
                "occurrences": occurrences,
                "by_pass": by_pass,
                "save_errors": self.save_errors,
            }


# -- the replay itself (runs in a child process) ----------------------------


def _sweep_for_bundle(bundle: Dict):
    """A :class:`~repro.fuzz.oracle.SweepConfig` matching the failing
    compile. The key is the canonical clean form (``config_from_key``
    round-trips it); any injected fault plan rides separately so corpus
    promotion can replay the reduced module *without* the injection."""
    from repro.fuzz.oracle import SweepConfig

    level = bundle.get("level", "vliw")
    options = bundle.get("options") or {}
    fault_plan = options.get("fault_plan") or None
    if level == "base":
        return SweepConfig("base", "base", fault_plan=fault_plan)
    unroll = int(options.get("unroll_factor", 2))
    swp = bool(options.get("software_pipelining", True))
    pipeliner = options.get("pipeliner", "swp")
    disable = tuple(options.get("disable") or ())
    parts = ["vliw", f"u{unroll}"]
    if pipeliner in ("modulo", "modulo-opt"):
        parts.append(pipeliner)
    else:
        parts.append("swp" if swp else "noswp")
    parts.extend(f"no-{name}" for name in disable)
    return SweepConfig(
        ":".join(parts), "vliw", unroll, swp, disable, pipeliner,
        fault_plan=fault_plan,
    )


def triage_bundle(
    bundle: Dict,
    max_steps: int = 50_000,
    argsets: int = 2,
    reduce_rounds: int = 3,
) -> Dict:
    """Replay one bundle: reproduce, bisect the guilty pass, reduce.

    Pure function of the bundle record — safe to run in a child process
    (and meant to: a replayed failure may hang or kill the interpreter).
    """
    from repro.fuzz.oracle import Oracle, OracleConfig
    from repro.fuzz.reduce import instruction_count, reduce_module
    from repro.fuzz.residue import reads_call_residue
    from repro.ir.parser import parse_module
    from repro.ir.printer import format_module
    from repro.perf.fingerprint import fingerprint_module

    module = parse_module(bundle["ir"])
    sweep = _sweep_for_bundle(bundle)
    seed = int(bundle.get("seed", 0))
    oracle = Oracle(OracleConfig(max_steps=max_steps, argsets_per_function=argsets))
    findings = oracle.check_module(module, seed, configs=[sweep])
    if not findings:
        return {"status": "no-repro", "config": sweep.key}
    finding = findings[0]

    quick = Oracle(OracleConfig(
        max_steps=max_steps, argsets_per_function=argsets, bisect=False,
    ))

    def predicate(candidate) -> bool:
        if reads_call_residue(candidate):
            return False
        found = quick.check_module(candidate, seed, configs=[sweep])
        return any(f.kind == finding.kind for f in found)

    before = instruction_count(module)
    reduced = reduce_module(module, predicate, max_rounds=reduce_rounds)
    # Re-confirm (and re-bisect) on the reduced module; if reduction
    # morphed the failure, fall back to the original finding.
    final = oracle.check_module(reduced, seed, configs=[sweep])
    confirmed = next(
        (f for f in final if f.kind == finding.kind), None
    )
    if confirmed is None:
        reduced, confirmed = module, finding
    return {
        "status": "finding",
        "kind": confirmed.kind,
        "guilty": confirmed.guilty,
        "config": sweep.key,
        "detail": confirmed.detail,
        "reduced_ir": format_module(reduced),
        "reduced_fp": fingerprint_module(reduced),
        "instructions_before": before,
        "instructions_after": instruction_count(reduced),
        "injected": bool((bundle.get("options") or {}).get("fault_plan")),
    }


def _triage_child(conn, bundle: Dict, knobs: Dict) -> None:
    try:
        result = triage_bundle(bundle, **knobs)
    except BaseException as exc:  # noqa: BLE001 — anything is a result here
        result = {
            "status": "triage-error",
            "detail": f"{type(exc).__name__}: {exc}",
        }
    try:
        conn.send(result)
    except (BrokenPipeError, OSError):
        pass
    finally:
        conn.close()


class IsolatedTriageRunner:
    """One child process per bundle, hard-killed past ``deadline``.

    Same containment contract as the compile workers: a replay that
    wedges or dies is a counted outcome (``triage-timeout`` /
    ``triage-crash``), never the service's problem.
    """

    def __init__(
        self,
        deadline: float = 120.0,
        max_steps: int = 50_000,
        argsets: int = 2,
        reduce_rounds: int = 3,
    ):
        self.deadline = deadline
        self.knobs = {
            "max_steps": max_steps,
            "argsets": argsets,
            "reduce_rounds": reduce_rounds,
        }

    def __call__(self, bundle: Dict) -> Dict:
        parent, child = multiprocessing.Pipe(duplex=False)
        proc = multiprocessing.Process(
            target=_triage_child,
            args=(child, bundle, self.knobs),
            daemon=True,
        )
        proc.start()
        child.close()
        result: Dict = {"status": "triage-timeout"}
        try:
            if parent.poll(self.deadline):
                try:
                    result = parent.recv()
                except (EOFError, OSError):
                    result = {"status": "triage-crash"}
        finally:
            parent.close()
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10.0)
        return result


def promote_case(result: Dict, bundle: CrashBundle, directory) -> Path:
    """Write a reduced finding into the fuzz corpus, pinned forever.

    A finding whose bundle carried an injected fault plan reproduces
    only *with* the injection, so it is promoted ``status: fixed`` —
    the replay test asserts the clean config stays clean, pinning the
    reduced module as a regression input. A finding with no injection
    is a real in-tree bug: promoted ``status: xfail`` so it replays as
    known-open until fixed (and fails loudly when it heals).
    """
    from repro.fuzz.corpus import case_from_finding, save_case
    from repro.fuzz.oracle import Finding

    finding = Finding(
        seed=int(bundle.seed),
        config=result.get("config", "vliw:u2:swp"),
        kind=result.get("kind", "crash"),
        detail=result.get("detail", ""),
        guilty=result.get("guilty", ""),
    )
    status = "fixed" if result.get("injected") else "xfail"
    case = case_from_finding(
        finding,
        result.get("reduced_ir", ""),
        status=status,
        name=f"triage-{bundle.bundle_id}",
    )
    case.extra = {
        "origin": "serve-triage",
        "bundle": bundle.bundle_id,
        "env": f"{bundle.env.get('python', '?')}/{bundle.env.get('platform', '?')}",
    }
    return save_case(case, Path(directory))


class TriageWorker:
    """Background triage loop: pending bundles -> index + quarantine.

    Runs :class:`IsolatedTriageRunner` per bundle on a daemon thread;
    ``drain()`` processes synchronously (tests, ``repro triage``). Each
    confirmed finding is indexed, fed to the quarantine as one distinct
    implication, optionally promoted to the corpus, and followed by
    ``on_finding`` (the service passes its ``checkpoint`` so quarantine
    state hits the journal before the next SIGKILL). When an implication
    *activates* a quarantine, ``on_quarantine`` fires with the pass name
    (the service clears the breaker's stale vliw memory there).
    """

    def __init__(
        self,
        recorder: FlightRecorder,
        index: TriageIndex,
        quarantine,
        runner: Optional[Callable[[Dict], Dict]] = None,
        interval: float = 0.25,
        promote_dir=None,
        on_finding: Optional[Callable[[], None]] = None,
        on_quarantine: Optional[Callable[[str], None]] = None,
        log=None,
    ):
        self.recorder = recorder
        self.index = index
        self.quarantine = quarantine
        self.runner = runner if runner is not None else IsolatedTriageRunner()
        self.interval = interval
        self.promote_dir = promote_dir
        self.on_finding = on_finding
        self.on_quarantine = on_quarantine
        self.log = log
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.processed = 0
        self.findings = 0
        self.duplicates = 0
        self.no_repro = 0
        self.errors = 0
        self.promoted = 0
        self.promote_errors = 0

    # -- processing ----------------------------------------------------------

    def process_once(self) -> int:
        """Triage everything currently pending; returns bundles handled."""
        handled = 0
        for path in self.recorder.pending():
            if self._stop.is_set():
                break
            bundle = self.recorder.load(path)
            if bundle is None:
                continue
            result = self.runner(bundle.to_record())
            self._apply(bundle, result)
            self.recorder.resolve(path, result.get("status", ""))
            handled += 1
        return handled

    def _apply(self, bundle: CrashBundle, result: Dict) -> None:
        self.processed += 1
        status = result.get("status")
        if status == "finding":
            _signature, new = self.index.add(result, source=bundle.bundle_id)
            if new:
                self.findings += 1
            else:
                self.duplicates += 1
            guilty = result.get("guilty") or ""
            if guilty:
                newly = self.quarantine.record_implication(
                    guilty, bundle.bundle_id, result.get("kind", "")
                )
                if newly and self.log:
                    self.log(
                        f"# repro serve: triage quarantined pass {guilty!r} "
                        f"({result.get('kind')}, bundle {bundle.bundle_id})"
                    )
                if newly and self.on_quarantine is not None:
                    try:
                        self.on_quarantine(guilty)
                    except Exception:  # noqa: BLE001 — healing is best-effort
                        pass
            if new and self.promote_dir:
                try:
                    promote_case(result, bundle, self.promote_dir)
                    self.promoted += 1
                except Exception:  # noqa: BLE001 — promotion is best-effort
                    self.promote_errors += 1
            if self.on_finding is not None:
                self.on_finding()
        elif status == "no-repro":
            self.no_repro += 1
        else:
            self.errors += 1

    def forget_pass(self, name: str) -> None:
        """A reinstated pass's resolved bundles become recordable again."""
        self.recorder.forget(self.index.sources_for(name))

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve-triage", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.process_once()
            except Exception:  # noqa: BLE001 — triage must not die
                self.errors += 1
            self._stop.wait(self.interval)

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def drain(self, timeout: float = 60.0) -> int:
        """Process synchronously until the pending set is empty."""
        deadline = time.monotonic() + timeout
        total = 0
        while self.recorder.pending() and time.monotonic() < deadline:
            handled = self.process_once()
            total += handled
            if not handled:
                break
        return total

    def stats(self) -> Dict:
        return {
            "processed": self.processed,
            "findings": self.findings,
            "duplicates": self.duplicates,
            "no_repro": self.no_repro,
            "errors": self.errors,
            "promoted": self.promoted,
            "promote_errors": self.promote_errors,
            "running": self._thread is not None,
        }
