"""Front ends: asyncio HTTP server and a JSON-lines stdin loop.

The HTTP surface is deliberately tiny (no framework, stdlib only):

- ``POST /compile`` — JSON body ``{"ir": "...", "level": "vliw",
  "options": {...}, "id": "...", "deadline": 2.0}``; answers the
  :class:`~repro.serve.service.ServeResponse` wire dict. Status codes:
  200 served, 400 rejected IR, 429 shed (backpressure), 500 failed.
- ``GET /healthz`` — liveness; 200 with worker counts, 503 when no
  worker is alive.
- ``GET /stats`` — the structured JSON stats document (requests,
  latency percentiles, degradations, cache/dedupe/breaker/pool
  counters).

Blocking service calls run on a dedicated thread pool sized past the
service's ``max_pending`` so the shed logic — not an invisible executor
queue — is what absorbs overload. Each connection serves one request
(``Connection: close``): compile requests are long relative to
connection setup, and one-shot connections keep the parser honest.

``serve_stdin`` is the same service over JSON lines on stdin/stdout —
handy behind an SSH pipe or in a test harness without sockets.
"""

import asyncio
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.machine.engine import ENGINES
from repro.scheduling import PIPELINERS
from repro.serve.service import CompileService, ServeRequest

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: Cap on request bodies; a compile request is IR text, not a data set.
MAX_BODY_BYTES = 8 * 1024 * 1024

_KNOWN_PASSES: Optional[frozenset] = None


def _known_passes() -> frozenset:
    global _KNOWN_PASSES
    if _KNOWN_PASSES is None:
        from repro.pipeline import vliw_passes

        _KNOWN_PASSES = frozenset(p.name for p in vliw_passes())
    return _KNOWN_PASSES


def request_from_wire(msg: Dict) -> ServeRequest:
    """Build a :class:`ServeRequest` from a decoded JSON message."""
    if not isinstance(msg, dict) or "ir" not in msg:
        raise ValueError('body must be a JSON object with an "ir" field')
    options = msg.get("options") or {}
    # Admission-time validation: an unknown pipelining backend must be a
    # 400 here, not a ladder of doomed worker attempts later.
    pipeliner = options.get("pipeliner", "swp")
    if pipeliner not in PIPELINERS:
        raise ValueError(
            f"unknown pipeliner {pipeliner!r} (want one of {PIPELINERS})"
        )
    engine = options.get("engine", "tree")
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (want one of {ENGINES})"
        )
    disable = options.get("disable")
    if disable is not None:
        if not isinstance(disable, list):
            raise ValueError('"disable" must be a list of pass names')
        unknown = sorted(set(disable) - _known_passes())
        if unknown:
            raise ValueError(
                f"unknown passes in disable: {', '.join(map(repr, unknown))} "
                f"(pipeline has: {', '.join(sorted(_known_passes()))})"
            )
    return ServeRequest(
        ir=msg["ir"],
        level=msg.get("level", "vliw"),
        options=options,
        inject=msg.get("inject"),
        request_id=msg.get("id"),
        deadline=msg.get("deadline"),
    )


class HttpFrontEnd:
    """Minimal asyncio HTTP/1.1 server over a :class:`CompileService`."""

    def __init__(
        self,
        service: CompileService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = ThreadPoolExecutor(
            max_workers=service.max_pending + 4,
            thread_name_prefix="repro-serve",
        )

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    # -- one connection ------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the server
            status, payload = 400, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, reader) -> Tuple[int, Dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length > MAX_BODY_BYTES:
            return 400, {"error": f"body too large ({length} bytes)"}
        body = await reader.readexactly(length) if length else b""

        if method == "GET" and path == "/healthz":
            health = self.service.health()
            return (200 if health["status"] == "ok" else 503), health
        if method == "GET" and path == "/stats":
            return 200, self.service.stats()
        if method == "POST" and path == "/compile":
            try:
                message = json.loads(body)
                request = request_from_wire(message)
            except ValueError as exc:
                return 400, {"error": str(exc)}
            loop = asyncio.get_running_loop()
            response = await loop.run_in_executor(
                self._executor, self.service.compile, request
            )
            return response.http_status, response.to_dict()
        return 404, {"error": f"no route for {method} {path}"}


async def serve_http(
    service: CompileService,
    host: str = "127.0.0.1",
    port: int = 8077,
    log=print,
    shutdown: Optional[asyncio.Event] = None,
) -> None:
    """Run the HTTP front end until cancelled (or ``shutdown`` is set).

    With a ``shutdown`` event the server returns cleanly when it fires
    — the caller then owns the graceful sequence (stop admission, drain
    in-flight work, flush the journal) before exiting 0.
    """
    front = HttpFrontEnd(service, host, port)
    await front.start()
    log(f"# repro serve: listening on http://{host}:{front.port} "
        f"(POST /compile, GET /healthz, GET /stats)")
    try:
        if shutdown is None:
            await front.serve_forever()
        else:
            await shutdown.wait()
            log("# repro serve: shutdown signal received")
    finally:
        await front.stop()


def serve_stdin(service: CompileService, stdin=None, stdout=None, log=None) -> int:
    """JSON-lines mode: one request object per line in, one response out."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    served = 0
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = request_from_wire(json.loads(line))
        except ValueError as exc:
            print(json.dumps({"status": "reject", "detail": str(exc)}),
                  file=stdout, flush=True)
            continue
        response = service.compile(request)
        print(json.dumps(response.to_dict()), file=stdout, flush=True)
        served += 1
    if log is not None:
        log(f"# repro serve: stdin closed after {served} requests")
    return served
