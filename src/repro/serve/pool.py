"""Supervised pool of process-isolated compile workers.

:class:`WorkerPool` owns N worker processes (:mod:`repro.serve.worker`)
and the supervision logic around them:

- **dispatch** — ``submit`` blocks until a worker is free, sends the
  request over the worker's pipe and waits for the response;
- **hard deadlines** — if no response arrives within the request
  deadline plus a grace period (time for the worker's own SIGALRM to
  answer first), the worker is killed outright and the request reports
  ``timeout``;
- **crash containment** — EOF on the pipe (the process died) reports
  ``crash``; either way the request fails *cleanly* and the caller (the
  service's degradation ladder) decides what to do next;
- **supervised respawn with backoff and jitter** — a dead worker is
  respawned automatically, but consecutive failures of the same slot
  back off exponentially (base doubling up to a cap), so a
  crash-looping environment throttles instead of fork-bombing; a
  seeded multiplicative jitter decorrelates the slots, so N workers
  killed by the same event (an OOM sweep, a bad deploy) respawn
  staggered instead of stampeding back in lockstep;
- **memory caps** — ``mem_headroom_bytes`` gives each worker an
  address-space rlimit (its startup footprint plus the headroom); an
  over-allocating compile is contained in-worker as an ``oom`` answer
  rather than summoning the kernel's OOM killer.

The pool is thread-safe: the service layer calls ``submit`` from many
threads, each of which exclusively holds one worker for the duration of
its request.
"""

import multiprocessing
import queue
import random
import threading
import time
from typing import Dict, List, Optional

from repro.serve.worker import worker_main


def _mp_context():
    # fork is dramatically cheaper per respawn; fall back where absent.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class _WorkerHandle:
    """One worker slot: process + pipe + respawn bookkeeping."""

    def __init__(self, slot: int, ctx, mem_headroom_bytes: Optional[int] = None):
        self.slot = slot
        self.ctx = ctx
        self.mem_headroom_bytes = mem_headroom_bytes
        self.proc = None
        self.conn = None
        self.alive = False
        #: Consecutive failures since the last successful request.
        self.failures = 0
        #: Monotonic time before which this slot must not respawn.
        self.respawn_at = 0.0
        #: Lifetime respawn count for this slot.
        self.restarts = 0

    def spawn(self) -> None:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=worker_main,
            args=(child_conn, self.slot, self.mem_headroom_bytes),
            name=f"repro-serve-worker-{self.slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self.proc = proc
        self.conn = parent_conn
        self.alive = True

    def kill(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.proc is not None:
            self.proc.terminate()
            self.proc.join(timeout=0.5)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=0.5)
        self.alive = False

    @property
    def exitcode(self) -> Optional[int]:
        return self.proc.exitcode if self.proc is not None else None


class WorkerPool:
    """Process-isolated compile workers with supervised respawn."""

    def __init__(
        self,
        workers: int = 2,
        deadline: float = 10.0,
        grace: float = 1.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_jitter: float = 0.5,
        jitter_seed: int = 0,
        mem_headroom_bytes: Optional[int] = None,
        start: bool = True,
    ):
        self.deadline = deadline
        self.grace = grace
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        #: Seeded so a pool's respawn schedule is reproducible in tests
        #: while still decorrelating its slots from one another.
        self._jitter_rng = random.Random(jitter_seed)
        self.mem_headroom_bytes = mem_headroom_bytes
        self._ctx = _mp_context()
        self._handles: List[_WorkerHandle] = [
            _WorkerHandle(i, self._ctx, mem_headroom_bytes)
            for i in range(workers)
        ]
        self._idle: "queue.Queue[_WorkerHandle]" = queue.Queue()
        self._lock = threading.Lock()
        self._started = False
        self.requests = 0
        self.crashes = 0
        self.timeouts = 0
        self.respawns = 0
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            for handle in self._handles:
                handle.spawn()
                self._idle.put(handle)
            self._started = True

    def stop(self) -> None:
        with self._lock:
            self._started = False
            while True:
                try:
                    self._idle.get_nowait()
                except queue.Empty:
                    break
            for handle in self._handles:
                if handle.alive and handle.conn is not None:
                    try:
                        handle.conn.send(None)
                    except (BrokenPipeError, OSError):
                        pass
                handle.kill()

    # -- dispatch ------------------------------------------------------------

    def submit(self, request: Dict, deadline: Optional[float] = None) -> Dict:
        """Run one request on a worker; always returns a response dict.

        Failure responses use ``status`` ``"crash"`` (process died) or
        ``"timeout"`` (hard deadline, worker killed); everything else is
        whatever the worker itself answered.
        """
        if not self._started:
            raise RuntimeError("WorkerPool is not started")
        budget = deadline if deadline is not None else (
            request.get("deadline") or self.deadline
        )
        request = dict(request, deadline=budget)
        handle = self._acquire()
        with self._lock:
            self.requests += 1
        try:
            handle.conn.send(request)
        except (BrokenPipeError, OSError):
            self._fail(handle, "crash")
            return {
                "status": "crash",
                "detail": f"worker {handle.slot} pipe closed before send",
            }
        if not handle.conn.poll(budget + self.grace):
            exit_note = self._fail(handle, "timeout")
            return {
                "status": "timeout",
                "detail": (
                    f"no response within {budget + self.grace:.2f}s; "
                    f"worker {handle.slot} killed{exit_note}"
                ),
            }
        try:
            response = handle.conn.recv()
        except (EOFError, OSError):
            exit_note = self._fail(handle, "crash")
            return {
                "status": "crash",
                "detail": f"worker {handle.slot} died mid-request{exit_note}",
            }
        self._release(handle)
        return response

    # -- supervision ---------------------------------------------------------

    def _acquire(self) -> _WorkerHandle:
        while True:
            self._maybe_respawn()
            try:
                return self._idle.get(timeout=0.05)
            except queue.Empty:
                continue

    def _release(self, handle: _WorkerHandle) -> None:
        handle.failures = 0
        self._idle.put(handle)

    def _fail(self, handle: _WorkerHandle, kind: str) -> str:
        """Record a failure, kill the slot, schedule its respawn."""
        exitcode = handle.exitcode
        with self._lock:
            if kind == "timeout":
                self.timeouts += 1
            else:
                self.crashes += 1
            handle.kill()
            handle.failures += 1
            delay = min(
                self.backoff_base * (2 ** (handle.failures - 1)),
                self.backoff_cap,
            )
            # Multiplicative jitter: slots killed by the same event get
            # distinct delays, so the fleet respawns staggered instead
            # of thundering back all at once.
            delay *= 1.0 + self.backoff_jitter * self._jitter_rng.random()
            handle.respawn_at = time.monotonic() + delay
        return f" (exit {exitcode})" if exitcode is not None else ""

    def _maybe_respawn(self) -> None:
        with self._lock:
            if not self._started:
                return
            now = time.monotonic()
            for handle in self._handles:
                if not handle.alive and now >= handle.respawn_at:
                    handle.spawn()
                    handle.restarts += 1
                    self.respawns += 1
                    self._idle.put(handle)

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict:
        with self._lock:
            return {
                "workers": len(self._handles),
                "alive": sum(1 for h in self._handles if h.alive),
                "requests": self.requests,
                "crashes": self.crashes,
                "timeouts": self.timeouts,
                "respawns": self.respawns,
                "restarts_by_worker": [h.restarts for h in self._handles],
            }

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()
        return False
