"""Fault-contained compile service: ``repro serve``.

The "millions of users" architecture from ROADMAP item 1, with failure
behaviour as the headline. A stateless, reentrant ``compile_module``
core runs inside a supervised pool of **process-isolated** workers
(:mod:`repro.serve.pool` / :mod:`repro.serve.worker`); the service layer
(:mod:`repro.serve.service`) adds every containment mechanism a real
fleet needs:

- per-request hard deadlines — the worker arms ``SIGALRM`` around the
  compile, and the supervisor kills the whole process if even that does
  not come back;
- crash containment — a dead worker is respawned automatically under
  exponential-backoff throttling, and the request that was on it is
  retried, not dropped;
- bounded queues with backpressure — overload sheds (HTTP 429) instead
  of queueing without bound;
- retry **with degradation** — a request at ``vliw`` that crashes, times
  out or trips the speculation sanitizer is retried down the paper's own
  quality ladder ``vliw → base → none`` (unoptimized), so the service
  always returns *some* correct binary; the degradation is recorded on
  the response;
- a per-fingerprint circuit breaker — known-poison inputs skip straight
  to the safe level instead of burning deadlines re-proving the failure;
- a two-tier compile cache — in-memory LRU
  (:class:`~repro.perf.memo.CompileCache`) over a persisted, checksummed
  shard (:class:`~repro.perf.store.PersistentCacheShard`) keyed by
  module fingerprint, plus in-flight dedupe of identical compiles;
- structured JSON health/stats endpoints.

Front ends (:mod:`repro.serve.http`): an asyncio HTTP server
(``POST /compile``, ``GET /healthz``, ``GET /stats``) and a JSON-lines
stdin loop. See ``docs/SERVING.md`` for the failure matrix and
``benchmarks/test_e11_serve_soak.py`` for the fault-injected soak proof.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.http import HttpFrontEnd, serve_http, serve_stdin
from repro.serve.journal import JournalState, WriteAheadJournal
from repro.serve.pool import WorkerPool
from repro.serve.quarantine import PassQuarantine
from repro.serve.service import (
    AttemptRecord,
    CompileService,
    ServeRequest,
    ServeResponse,
)
from repro.serve.triage import (
    CrashBundle,
    FlightRecorder,
    IsolatedTriageRunner,
    TriageIndex,
    TriageWorker,
)

__all__ = [
    "AttemptRecord",
    "CircuitBreaker",
    "CompileService",
    "CrashBundle",
    "FlightRecorder",
    "HttpFrontEnd",
    "IsolatedTriageRunner",
    "JournalState",
    "PassQuarantine",
    "ServeRequest",
    "ServeResponse",
    "TriageIndex",
    "TriageWorker",
    "WorkerPool",
    "WriteAheadJournal",
    "serve_http",
    "serve_stdin",
]
