"""Checksummed write-ahead journal: crash-durable serving state.

``repro serve --state-dir`` makes the service itself crash-recoverable.
Every *accepted* request is journaled before its compile starts and a
completion record is appended when it finishes; restart replays the
journal and gets back:

- the **in-flight set** — requests accepted but never completed (the
  process died mid-compile) are re-enqueued and finished, so a SIGKILL
  mid-load loses zero accepted work;
- **circuit-breaker state** — reconstructed from checkpoint snapshots
  plus the per-attempt outcomes recorded on completions, so a module
  that poisoned the vliw pipeline before the crash does not get to
  re-poison the fresh fleet one deadline at a time;
- **service counters** — request/degradation/failure tallies continue
  across restarts instead of resetting to zero.

Format: append-only text file of one record per line,
``<blake2b-12> <canonical JSON>\\n``. Every line is independently
checksummed, so replay **skips** any record that fails — a torn tail
from a crash mid-append, a torn middle from dying media — and keeps
going. Skipping (rather than halting) is what makes recovery converge
under fs faults: a lost ``accept`` leaves an orphan completion (ignored);
a lost ``complete`` re-enqueues an already-finished request, and
compiling twice is safe — the journal guarantees **at-least-once**
completion, with the content-addressed cache absorbing the duplicates.

The journal stays bounded by **checkpointing**: every
``checkpoint_every`` appends the owner writes a checkpoint record
(breaker snapshot, counters, the full in-flight request bodies) into a
fresh file and atomically rotates it into place (write, fsync, rename,
fsync dir — the same durable-publication sequence as the cache shard).
History before the checkpoint is gone; state is not.

All disk access goes through the ``fs`` interface so the chaos harness
(:mod:`repro.robustness.chaosfs`) can inject ENOSPC/EIO/torn
writes/power loss; an append that fails with an ``OSError`` is counted
(``journal.append_errors``) and serving continues — availability wins
over durability for a cache-backed compile service, and the counter
keeps the loss honest.
"""

import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.robustness.chaosfs import REAL_FS

#: Journal file name under ``--state-dir``.
JOURNAL_NAME = "journal.wal"

_CHECKSUM_SIZE = 12


def _checksum(body: bytes) -> str:
    return hashlib.blake2b(body, digest_size=_CHECKSUM_SIZE).hexdigest()


def encode_record(record: Dict) -> bytes:
    """One journal line: checksum, space, canonical JSON, newline."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    return _checksum(body).encode() + b" " + body + b"\n"


def decode_record(line: bytes) -> Optional[Dict]:
    """The record on this line, or ``None`` if torn/corrupt."""
    parts = line.rstrip(b"\n").split(b" ", 1)
    if len(parts) != 2:
        return None
    checksum, body = parts
    if checksum.decode("ascii", "replace") != _checksum(body):
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


@dataclass
class JournalState:
    """What replay recovered."""

    #: Accepted-but-never-completed request wire dicts, oldest first.
    inflight: List[Dict] = field(default_factory=list)
    #: Circuit-breaker snapshot (see ``CircuitBreaker.snapshot``).
    breaker: Dict = field(default_factory=dict)
    #: Pass-quarantine snapshot (see ``PassQuarantine.snapshot``) —
    #: empty for journals written before the triage stack existed.
    quarantine: Dict = field(default_factory=dict)
    #: Service counter snapshot at the last checkpoint + replay deltas.
    counters: Dict = field(default_factory=dict)
    #: Per-attempt (fingerprint, level, ok?) outcomes since the last
    #: checkpoint, in order — replayed into the breaker.
    attempts: List = field(default_factory=list)
    #: Completions seen during replay (accepted requests that finished).
    completed: int = 0
    #: Records whose checksum failed and were skipped.
    corrupt_skipped: int = 0
    #: Total records replayed (valid ones).
    replayed: int = 0
    last_seq: int = 0


class WriteAheadJournal:
    """Append-only, checksummed, checkpoint-truncated journal.

    Thread-safe: the service appends from many request threads. Each
    append is fsynced by default (``sync=True``) — a compile is slow
    next to an fsync, and an un-synced WAL is a diary, not a journal.
    """

    def __init__(
        self,
        state_dir,
        fs=None,
        checkpoint_every: int = 512,
        sync: bool = True,
    ):
        self.state_dir = Path(state_dir)
        self.fs = fs if fs is not None else REAL_FS
        self.checkpoint_every = checkpoint_every
        self.sync = sync
        self.path = self.state_dir / JOURNAL_NAME
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._seq = 0
        self._since_checkpoint = 0
        self.appends = 0
        self.append_errors = 0
        self.checkpoints = 0
        self.last_replay: Optional[JournalState] = None

    # -- appends -------------------------------------------------------------

    def append(self, record: Dict) -> int:
        """Append one record (a ``seq`` field is added); returns its seq.

        OSError from the filesystem is contained and counted; a
        :class:`~repro.robustness.chaosfs.SimulatedCrash` propagates —
        power loss is not containable, only recoverable.
        """
        with self._lock:
            self._seq += 1
            seq = self._seq
            record = dict(record, seq=seq)
            line = encode_record(record)
            try:
                self.fs.append_bytes(self.path, line)
                if self.sync:
                    self.fs.fsync(self.path)
            except OSError:
                self.append_errors += 1
            else:
                self.appends += 1
            self._since_checkpoint += 1
            return seq

    def append_accept(self, request_wire: Dict) -> int:
        return self.append({"t": "accept", "req": request_wire})

    def append_complete(
        self,
        accept_seq: int,
        status: str,
        fingerprint: str = "",
        level_served: Optional[str] = None,
        attempts: Optional[List] = None,
    ) -> int:
        return self.append({
            "t": "complete",
            "accept": accept_seq,
            "status": status,
            "fp": fingerprint,
            "level_served": level_served,
            "attempts": attempts or [],
        })

    @property
    def should_checkpoint(self) -> bool:
        return self._since_checkpoint >= self.checkpoint_every

    # -- checkpoint / truncation ---------------------------------------------

    def checkpoint(
        self,
        breaker: Dict,
        counters: Dict,
        inflight: List[Dict],
        quarantine: Optional[Dict] = None,
    ) -> None:
        """Write a checkpoint and truncate history before it.

        The new journal file holds exactly one record — the checkpoint,
        carrying everything replay needs (breaker snapshot, counters,
        in-flight request bodies) — and is published durable-atomically,
        so a crash during checkpointing leaves either the old journal or
        the new one, both complete.
        """
        with self._lock:
            self._seq += 1
            record = {
                "t": "checkpoint",
                "seq": self._seq,
                "breaker": breaker,
                "counters": counters,
                "inflight": list(inflight),
                "quarantine": quarantine or {},
            }
            tmp = self.path.with_name(self.path.name + ".new")
            try:
                self.fs.write_bytes(tmp, encode_record(record))
                self.fs.fsync(tmp)
                self.fs.replace(tmp, self.path)
                self.fs.fsync_dir(self.path.parent)
            except OSError:
                # Failed checkpoint: the old journal is still intact and
                # still authoritative; try again after more appends.
                self.append_errors += 1
                self._since_checkpoint = max(0, self.checkpoint_every // 2)
                return
            self.checkpoints += 1
            self._since_checkpoint = 0

    # -- replay --------------------------------------------------------------

    def replay(self) -> JournalState:
        """Reconstruct state from disk; tolerant of torn/corrupt records."""
        state = JournalState()
        inflight: Dict[int, Dict] = {}
        try:
            raw = self.fs.read_bytes(self.path)
        except OSError:
            self.last_replay = state
            return state
        for line in raw.split(b"\n"):
            if not line:
                continue
            record = decode_record(line)
            if record is None:
                state.corrupt_skipped += 1
                continue
            state.replayed += 1
            seq = int(record.get("seq", 0))
            state.last_seq = max(state.last_seq, seq)
            kind = record.get("t")
            if kind == "checkpoint":
                # Checkpoints reset everything before them.
                inflight = {
                    int(req.get("_seq", -index)): req
                    for index, req in enumerate(record.get("inflight", []))
                }
                state.breaker = record.get("breaker", {})
                state.quarantine = record.get("quarantine", {})
                state.counters = record.get("counters", {})
                state.attempts = []
            elif kind == "accept":
                req = record.get("req")
                if isinstance(req, dict):
                    inflight[seq] = req
            elif kind == "complete":
                inflight.pop(int(record.get("accept", -1)), None)
                state.completed += 1
                fp = record.get("fp", "")
                for attempt in record.get("attempts", []):
                    if isinstance(attempt, (list, tuple)) and len(attempt) == 2:
                        state.attempts.append((fp, attempt[0], attempt[1]))
        state.inflight = [req for _seq, req in sorted(inflight.items())]
        with self._lock:
            self._seq = max(self._seq, state.last_seq)
        self.last_replay = state
        return state

    # -- introspection -------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        out = {
            "journal.appends": self.appends,
            "journal.append_errors": self.append_errors,
            "journal.checkpoints": self.checkpoints,
            "journal.seq": self._seq,
        }
        if self.last_replay is not None:
            out["journal.replayed"] = self.last_replay.replayed
            out["journal.corrupt_skipped"] = self.last_replay.corrupt_skipped
            out["journal.recovered_inflight"] = len(self.last_replay.inflight)
        fs_counters = getattr(self.fs, "counters", None)
        if isinstance(fs_counters, dict):
            out.update(fs_counters)
        return out
