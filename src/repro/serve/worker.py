"""The compile worker process: one request in, one response out.

Each worker is a separate OS process running :func:`worker_main` — a
loop that receives request dicts over a pipe, compiles, and sends
response dicts back. Process isolation is the containment boundary: a
pass that segfaults the interpreter, leaks without bound or wedges the
GIL takes out *its* process, and the supervising
:class:`~repro.serve.pool.WorkerPool` respawns it.

Deadlines are enforced in two layers:

1. **soft** — the worker arms ``SIGALRM`` (``setitimer``, fractional
   seconds) around the compile; an over-deadline pure-Python compile is
   interrupted and reported as a ``timeout`` response with the worker
   still healthy;
2. **hard** — if the worker does not answer within deadline + grace
   (hung in C, spinning with signals blocked, or simply dead), the
   supervisor kills the process. That path is the pool's, not ours.

Memory is a third containment layer: the pool can cap each worker's
address space (``resource.setrlimit(RLIMIT_AS)``, sized as the worker's
startup footprint plus a headroom budget). A compile that allocates
past the cap gets ``MemoryError`` *inside* the worker, which answers
``status: "oom"`` and stays alive — the service degrades the request
(a lower level allocates less) and feeds the breaker, and the kernel's
OOM killer never enters the picture. If the platform cannot express
the limit (no ``/proc``, no ``resource``), the cap is skipped and OOM
falls back to the crash-containment path.

Requests may carry an ``inject`` dict for fault drills (the soak
benchmark and the serve tests): ``worker-crash`` exits the process
mid-request, ``hang`` sleeps unresponsively so the supervisor must
hard-kill, ``soft-hang`` stalls under the armed alarm so the worker
itself answers ``timeout``, ``memory-hog`` allocates until the rlimit
bites (bounded by ``mb`` so an uncapped platform is not eaten).
Injections fire only on the listed request ``attempt`` numbers, so a
retry of the same request can succeed.
"""

import os
import signal
import time
from typing import Dict, Optional

from repro.ir.parser import parse_module
from repro.ir.printer import format_module
from repro.ir.verifier import verify_module
from repro.pipeline import compile_module
from repro.robustness.faults import FaultPlan
from repro.robustness.guard import ContainmentViolationError


class DeadlineExceeded(Exception):
    """Raised by the worker's own SIGALRM when the compile overruns."""


def _alarm_handler(signum, frame):
    raise DeadlineExceeded()


class _deadline:
    """Arm SIGALRM for ``seconds``; no-op where unavailable.

    Fully save/restore semantics: both the pre-existing SIGALRM
    *handler* and any pre-armed *itimer* are captured on entry and
    reinstated on exit (the outer timer's remaining time is reduced by
    the time spent inside; an outer deadline that expired while we ran
    is re-armed at epsilon so its handler still fires). Without this, a
    host embedding ``handle_request`` under its own alarm would come
    back with its handler intact but its timer silently cancelled.
    """

    _EPSILON = 1e-6

    def __init__(self, seconds: Optional[float]):
        self.seconds = seconds
        self.armed = False

    def __enter__(self):
        if self.seconds and hasattr(signal, "SIGALRM"):
            self._previous = signal.signal(signal.SIGALRM, _alarm_handler)
            self._entered = time.monotonic()
            self._previous_timer = signal.setitimer(
                signal.ITIMER_REAL, self.seconds
            )
            self.armed = True
        return self

    def __exit__(self, *exc_info):
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
            outer_remaining, outer_interval = self._previous_timer
            if outer_remaining:
                elapsed = time.monotonic() - self._entered
                signal.setitimer(
                    signal.ITIMER_REAL,
                    max(outer_remaining - elapsed, self._EPSILON),
                    outer_interval,
                )
        return False


def apply_memory_limit(headroom_bytes: Optional[int]) -> Optional[int]:
    """Cap this process's address space at current usage + headroom.

    Returns the limit installed, or ``None`` where the platform cannot
    express it (no ``resource`` module, no ``/proc/self/statm``) — the
    worker then runs uncapped and real memory exhaustion surfaces as a
    crash instead of a contained ``oom``.
    """
    if not headroom_bytes:
        return None
    try:
        import resource

        with open("/proc/self/statm") as handle:
            vsize_pages = int(handle.read().split()[0])
        vsize = vsize_pages * os.sysconf("SC_PAGE_SIZE")
        limit = vsize + int(headroom_bytes)
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        return limit
    except (ImportError, OSError, ValueError):
        return None


def _hog_memory(inject: Dict) -> None:
    """Allocate until the rlimit bites (or the ``mb`` bound is reached)."""
    bound_mb = int(inject.get("mb", 4096))
    hoard = []
    for _ in range(bound_mb):
        hoard.append(bytearray(1024 * 1024))
    # Rlimit generous enough that the bound won, or no limit installed:
    # report as if the allocation had failed so the drill still answers
    # deterministically.
    del hoard
    raise MemoryError(f"memory-hog drill exhausted its {bound_mb} MiB bound")


def _inject_spec(request: Dict) -> Optional[Dict]:
    """The request's fault drill, if it applies to this attempt."""
    inject = request.get("inject")
    if not inject:
        return None
    attempts = inject.get("attempts")
    if attempts is not None and request.get("attempt", 0) not in attempts:
        return None
    return inject


def _maybe_inject(request: Dict) -> None:
    """Apply a pre-deadline fault drill.

    ``worker-crash`` dies abruptly (the supervisor sees EOF on the
    pipe); ``hang`` sleeps with no alarm armed, forcing the
    supervisor's hard-kill path. (``soft-hang`` sleeps *inside* the
    armed deadline instead — see :func:`handle_request`.)
    """
    inject = _inject_spec(request)
    if not inject:
        return
    kind = inject.get("kind")
    if kind == "worker-crash":
        os._exit(13)
    if kind == "hang":
        time.sleep(float(inject.get("seconds", 3600.0)))


def handle_request(request: Dict, worker_id: int) -> Dict:
    """Compile one request dict into a response dict (never raises)."""
    _maybe_inject(request)
    try:
        module = parse_module(request["ir"])
        verify_module(module)
    except Exception as exc:
        return {
            "status": "reject",
            "detail": f"{type(exc).__name__}: {exc}",
            "worker": worker_id,
        }

    level = request.get("level", "vliw")
    options = request.get("options") or {}
    fault_plan = None
    if options.get("fault_plan"):
        fault_plan = FaultPlan.parse(options["fault_plan"])
        # One request-level plan must apply at every ladder level, even
        # where a targeted pass does not exist.
        fault_plan.lenient = True
    resilience = options.get("resilience")
    sanitize = bool(options.get("sanitize", False))
    if sanitize and resilience is None:
        # Sanitizing demands a guarded pipeline; strict makes a
        # containment escape a hard failure the ladder can degrade on.
        resilience = "strict"

    try:
        with _deadline(request.get("deadline")):
            inject = _inject_spec(request)
            if inject and inject.get("kind") == "soft-hang":
                # Interruptible stall under the armed alarm: exercises
                # the worker-survives soft-timeout path.
                time.sleep(float(inject.get("seconds", 3600.0)))
            if inject and inject.get("kind") == "memory-hog":
                _hog_memory(inject)
            result = compile_module(
                module,
                level=level,
                unroll_factor=int(options.get("unroll_factor", 2)),
                software_pipelining=bool(
                    options.get("software_pipelining", True)
                ),
                disable=list(options["disable"])
                if options.get("disable") else None,
                pipeliner=options.get("pipeliner", "swp"),
                resilience=resilience,
                sanitize=sanitize,
                diff_seed=int(options.get("diff_seed", 0)),
                engine=options.get("engine", "tree"),
                fault_plan=fault_plan,
                pass_budget_seconds=options.get("pass_budget"),
            )
    except DeadlineExceeded:
        return {
            "status": "timeout",
            "detail": f"compile exceeded {request.get('deadline'):.2f}s deadline",
            "level": level,
            "worker": worker_id,
        }
    except MemoryError:
        # The rlimit bit mid-compile. The failed allocation's frames are
        # gone with the exception, so the worker itself is healthy —
        # answer and keep serving.
        return {
            "status": "oom",
            "detail": "compile exceeded the worker memory limit",
            "level": level,
            "worker": worker_id,
        }
    except ContainmentViolationError as exc:
        return {
            "status": "sanitizer-violation",
            "detail": str(exc),
            "level": level,
            "worker": worker_id,
        }
    except Exception as exc:
        return {
            "status": "error",
            "detail": f"{type(exc).__name__}: {exc}",
            "level": level,
            "worker": worker_id,
        }

    response = {
        "status": "ok",
        "ir": format_module(result.module),
        "level": level,
        "static_instructions": result.static_instructions,
        "compile_seconds": result.compile_seconds,
        "worker": worker_id,
    }
    if result.resilience is not None:
        response["rollbacks"] = result.resilience.rollbacks
    return response


def worker_main(conn, worker_id: int, mem_headroom_bytes: Optional[int] = None) -> None:
    """The worker process entry point: serve requests until EOF/None."""
    # The supervisor owns lifecycle; a Ctrl-C at the front end must not
    # race the supervisor's orderly shutdown of this process.
    if hasattr(signal, "SIGINT"):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    apply_memory_limit(mem_headroom_bytes)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request is None:
            break
        response = handle_request(request, worker_id)
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            break
    conn.close()
