"""Compilation pipelines: the baseline "-O" and the "-O3 VLIW" levels.

The baseline corresponds to the paper's measurement columns labelled
``xlc`` ("with VLIW optimizations disabled"): classical cleanups, local
instruction scheduling and the untailored linkage. The VLIW level adds
every technique the paper contributes: speculative load/store motion out
of loops, unspeculation, unrolling + renaming + global scheduling +
enhanced pipeline scheduling, limited combining, basic block expansion
and prolog tailoring — "aggressive compiler techniques ... appropriate
for the -O3 option of the XLC compiler".

With a :class:`~repro.pdf.profile.ProfileData` supplied, the VLIW level
additionally applies the PDF optimisations (scheduling heuristics, basic
block re-ordering, branch reversal), on the edge-split flow graph the
profile refers to.
"""

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.module import Module
from repro.machine.model import MachineModel, RS6000
from repro.pdf.instrument import InstrumentationPlan, apply_edge_splits
from repro.pdf.profile import ProfileData
from repro.pdf.reorder import ProfileGuidedReorder
from repro.pdf.reversal import BranchReversal
from repro.robustness.diffcheck import DifferentialChecker
from repro.robustness.faults import FaultPlan
from repro.robustness.guard import GuardedPassManager
from repro.robustness.report import ResilienceReport
from repro.robustness.sanitizer import SpeculationSanitizer
from repro.scheduling import LocalScheduling, VLIWScheduling
from repro.transforms import (
    BasicBlockExpansion,
    CopyPropagation,
    DeadCodeElimination,
    LimitedCombining,
    LinkageLowering,
    LoopMemoryMotion,
    PrologTailoring,
    Straighten,
    Unspeculation,
)
from repro.transforms.pass_manager import Pass, PassContext, PassManager

#: Every compilation level, worst to best. ``none`` runs no passes at
#: all — the paper's "unoptimized" column — and exists precisely so a
#: degrading service always has a level that cannot fail.
LEVELS = ("none", "base", "vliw")

#: The quality ladder the compile service degrades along when an
#: aggressive compile crashes, times out or trips the sanitizer: the
#: paper's own measurement columns, best first.
DEGRADATION_LADDER = ("vliw", "base", "none")


#: Passes the serving stack may ablate when production triage implicates
#: them (see :mod:`repro.serve.quarantine`): every optional rewrite of
#: the vliw pipeline. ``linkage-lowering`` stays out — it is the one
#: mandatory lowering, and a pipeline without it emits functions whose
#: callee-saved contract nobody honoured.
QUARANTINABLE_PASSES = frozenset({
    "straighten",
    "copy-propagation",
    "dce",
    "loop-memory-motion",
    "unspeculation",
    "vliw-scheduling",
    "limited-combining",
    "bb-expansion",
    "prolog-tailoring",
})


def degradation_ladder(level: str) -> List[str]:
    """The levels to attempt for a request at ``level``, best first.

    ``degradation_ladder("vliw")`` is ``["vliw", "base", "none"]``; a
    request already at ``none`` has nowhere left to fall.
    """
    if level not in DEGRADATION_LADDER:
        raise ValueError(f"unknown level {level!r} (want one of {LEVELS})")
    index = DEGRADATION_LADDER.index(level)
    return list(DEGRADATION_LADDER[index:])


@dataclass
class CompileResult:
    """A compiled module plus cost accounting."""

    module: Module
    ctx: PassContext
    compile_seconds: float
    static_instructions: int
    pass_timings: Dict[str, float] = field(default_factory=dict)
    #: Pass name -> True if any invocation of that pass reported a change
    #: (ablation benchmarks use this to see which passes actually fired).
    pass_changes: Dict[str, bool] = field(default_factory=dict)
    #: True if any pass changed the module at all.
    module_changed: bool = False
    #: Per-pass diagnostics when compiled with ``resilience=``; else None.
    resilience: Optional[ResilienceReport] = None


def baseline_passes() -> List[Pass]:
    """The ``xlc``-equivalent pipeline (VLIW optimisations disabled)."""
    return [
        Straighten(),
        CopyPropagation(),
        DeadCodeElimination(),
        LocalScheduling(),
        LinkageLowering(),
    ]


def vliw_passes(
    use_pdf: bool = False,
    software_pipelining: bool = True,
    unroll_factor: int = 2,
    disable: Optional[List[str]] = None,
    pipeliner: str = "swp",
) -> List[Pass]:
    """The full VLIW pipeline; ``disable`` names passes to skip (for the
    ablation experiments). ``pipeliner`` selects the software-pipelining
    backend (``"swp"``, ``"modulo"`` or ``"modulo-opt"``)."""
    skip = set(disable or ())
    passes: List[Pass] = [
        Straighten(),
        CopyPropagation(),
        DeadCodeElimination(),
        LoopMemoryMotion(),
        Unspeculation(),
        VLIWScheduling(
            unroll_factor=unroll_factor,
            software_pipelining=software_pipelining,
            pipeliner=pipeliner,
        ),
        LimitedCombining(),
        CopyPropagation(),
        DeadCodeElimination(),
    ]
    if use_pdf:
        passes.append(ProfileGuidedReorder())
        passes.append(BranchReversal())
    passes.append(BasicBlockExpansion())
    passes.append(Straighten())
    passes.append(PrologTailoring())
    # Prolog tailoring declines functions it cannot improve (e.g. nothing
    # killed); linkage lowering then provides the untailored fallback.
    passes.append(LinkageLowering())
    return [p for p in passes if p.name not in skip]


def compile_module(
    module: Module,
    level: str = "vliw",
    model: MachineModel = RS6000,
    profile: Optional[ProfileData] = None,
    plan: Optional[InstrumentationPlan] = None,
    software_pipelining: bool = True,
    unroll_factor: int = 2,
    disable: Optional[List[str]] = None,
    pipeliner: str = "swp",
    verify: bool = True,
    resilience: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    diff_check: bool = True,
    pass_budget_seconds: Optional[float] = None,
    diff_checker: Optional[DifferentialChecker] = None,
    sanitize: bool = False,
    diff_seed: int = 0,
    mem_model: str = "flat",
    engine: str = "tree",
    jobs: int = 1,
    trace=None,
    cow_snapshots: bool = True,
    memoize: bool = True,
) -> CompileResult:
    """Clone and compile ``module`` at the given level.

    ``profile``/``plan`` enable PDF: the plan's edge splits are re-applied
    first (the profile refers to the split flow graph), then the edge and
    block counts guide the PDF passes and the scheduler.

    ``pipeliner`` selects the software-pipelining backend of the VLIW
    level: ``"swp"`` (legacy greedy rotations), ``"modulo"`` (true
    modulo scheduling with reservation tables) or ``"modulo-opt"``
    (modulo scheduling plus the bounded-exhaustive slot search).

    ``resilience`` selects the guarded pipeline (``"strict"``,
    ``"rollback"`` or ``"retry"``, see :mod:`repro.robustness`); the
    per-pass diagnostics land on ``CompileResult.resilience``. With the
    default ``resilience=None`` the plain manager runs and the first
    failure raises, exactly as before. ``fault_plan`` injects
    deterministic faults (testing / demos); ``diff_check`` toggles the
    seeded differential checker under resilience;
    ``pass_budget_seconds`` bounds each pass's wall-clock time.

    ``sanitize`` (requires ``resilience``) additionally runs the
    :class:`~repro.robustness.sanitizer.SpeculationSanitizer` after every
    pass: seeded entries are re-executed on the paged (faulting) memory
    model and an optimized-only fault is a ``containment`` failure that
    rolls the pass back. ``diff_seed`` seeds the input sampling of both
    the checker and the sanitizer (echoed in the resilience report);
    ``mem_model`` selects the differential checker's execution substrate;
    ``engine`` selects the executor (``"tree"`` or ``"closure"``, see
    :mod:`repro.machine.engine`) both guards run entries under.

    Compile-performance knobs (see :mod:`repro.perf` and
    ``docs/PERFORMANCE.md``): ``jobs`` partitions per-function pass work
    across worker threads (module passes stay serial barriers; output is
    bit-identical to ``jobs=1``); ``trace`` is a
    :class:`~repro.perf.trace.TraceRecorder` collecting per-(pass,
    function) spans in Chrome trace-event form; ``cow_snapshots`` and
    ``memoize`` control the guarded pipeline's copy-on-write snapshots
    and fingerprint-keyed re-validation skipping (both on by default;
    disabling restores the PR-1 whole-clone, re-check-everything cost
    model for comparison benchmarks).
    """
    # Timing starts before the clone and the edge-split application:
    # setup is real compile cost and the E2 benchmark must see it.
    start = time.perf_counter()
    work = module.clone()
    ctx = PassContext(work, model=model)
    if profile is not None:
        if plan is not None:
            apply_edge_splits(work, plan)
        ctx.edge_profile = dict(profile.edge_counts)
        ctx.block_profile = dict(profile.block_counts)

    if level == "base":
        passes = baseline_passes()
    elif level == "vliw":
        passes = vliw_passes(
            use_pdf=profile is not None,
            software_pipelining=software_pipelining,
            unroll_factor=unroll_factor,
            disable=disable,
            pipeliner=pipeliner,
        )
    elif level == "none":
        passes = []
    else:
        raise ValueError(f"unknown level {level!r}")

    if fault_plan is not None:
        passes = fault_plan.apply(passes)

    if resilience is None:
        manager: PassManager = PassManager(
            passes, verify=verify, jobs=jobs, trace=trace
        )
    else:
        checker = diff_checker
        if checker is None and diff_check:
            checker = DifferentialChecker(
                seed=diff_seed, mem_model=mem_model, engine=engine
            )
        sanitizer = (
            SpeculationSanitizer(seed=diff_seed, engine=engine)
            if sanitize
            else None
        )
        manager = GuardedPassManager(
            passes,
            policy=resilience,
            verify=verify,
            budget_seconds=pass_budget_seconds,
            checker=checker,
            sanitizer=sanitizer,
            jobs=jobs,
            trace=trace,
            cow_snapshots=cow_snapshots,
            memoize=memoize,
        )
    manager.run(work, ctx)
    elapsed = time.perf_counter() - start
    return CompileResult(
        module=work,
        ctx=ctx,
        compile_seconds=elapsed,
        static_instructions=work.total_instruction_count(),
        pass_timings=dict(manager.timings),
        pass_changes=dict(manager.pass_changes),
        module_changed=manager.module_changed,
        resilience=getattr(manager, "report", None),
    )
