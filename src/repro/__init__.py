"""repro — a reproduction of "VLIW Compilation Techniques in a
Superscalar Environment" (Ebcioglu, Groves, Kim, Silberman, Ziv;
PLDI 1994).

The package implements, from scratch:

- a POWER-flavoured register IR with parser/printer (:mod:`repro.ir`),
- the dataflow/structural analyses the paper's passes need
  (:mod:`repro.analysis`),
- a functional interpreter and a calibrated in-order superscalar timing
  model standing in for RS/6000-class hardware (:mod:`repro.machine`),
- the paper's transformations: speculative load/store motion out of
  loops, unspeculation, limited combining, basic block expansion,
  prolog tailoring (:mod:`repro.transforms`); unrolling, live-range
  renaming, local/global scheduling and enhanced pipeline scheduling
  (:mod:`repro.scheduling`),
- low-overhead profiling directed feedback (:mod:`repro.pdf`),
- SPECint92-like synthetic workloads (:mod:`repro.workloads`), and the
  baseline/VLIW compilation pipelines plus measurement harness
  (:mod:`repro.pipeline`, :mod:`repro.evaluate`),
- a resilience layer: per-pass sandboxing with snapshot/rollback,
  differential semantic checking and fault injection
  (:mod:`repro.robustness`).

Quickstart::

    from repro.workloads import workload_by_name
    from repro.evaluate import measure, reference_value

    wl = workload_by_name("li")
    ref = reference_value(wl)
    base = measure(wl, "base", check_against=ref)
    vliw = measure(wl, "vliw", check_against=ref)
    print(base.cycles, "->", vliw.cycles)
"""

__version__ = "1.0.0"

from repro.pipeline import CompileResult, compile_module
from repro.evaluate import (
    Measurement,
    SpecRow,
    format_spec_table,
    geomean_speedup,
    measure,
    reference_value,
    specint_table,
    train_profile,
)
from repro.robustness import (
    DifferentialChecker,
    FaultPlan,
    GuardedPassManager,
    ResilienceReport,
)

__all__ = [
    "CompileResult",
    "DifferentialChecker",
    "FaultPlan",
    "GuardedPassManager",
    "Measurement",
    "ResilienceReport",
    "SpecRow",
    "__version__",
    "compile_module",
    "format_spec_table",
    "geomean_speedup",
    "measure",
    "reference_value",
    "specint_table",
    "train_profile",
]
