"""Basic blocks: a label plus a straight-line instruction sequence.

A block contains at most one control-transfer instruction and, when present,
it is the last instruction. A block whose last instruction is not an
unconditional transfer (``B``, ``RET``) falls through to the next block in
the function's layout order — layout is meaningful, exactly as in the
paper's discussion of basic block re-ordering and branch reversal.
"""

from typing import Iterable, List, Optional

from repro.ir.instructions import Instr


class BasicBlock:
    """A labelled basic block."""

    def __init__(self, label: str, instrs: Optional[Iterable[Instr]] = None):
        self.label = label
        self.instrs: List[Instr] = list(instrs) if instrs is not None else []

    @property
    def terminator(self) -> Optional[Instr]:
        """The trailing control-transfer instruction, if any."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    @property
    def body(self) -> List[Instr]:
        """The instructions excluding a trailing terminator."""
        if self.terminator is not None:
            return self.instrs[:-1]
        return list(self.instrs)

    @property
    def falls_through(self) -> bool:
        """True if control can reach the next block in layout order."""
        term = self.terminator
        if term is None:
            return True
        # BT/BF fall through when untaken; BCT falls through when the count
        # register reaches zero; B and RET never fall through.
        return term.opcode in ("BT", "BF", "BCT")

    def branch_targets(self) -> List[str]:
        """Labels this block may branch to (not counting fallthrough)."""
        term = self.terminator
        if term is not None and term.target is not None:
            return [term.target]
        return []

    def append(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def insert(self, index: int, instr: Instr) -> None:
        self.instrs.insert(index, instr)

    def remove(self, instr: Instr) -> None:
        self.instrs.remove(instr)

    def index_of(self, instr: Instr) -> int:
        """Position of ``instr`` in this block, matched by identity."""
        for i, candidate in enumerate(self.instrs):
            if candidate is instr:
                return i
        raise ValueError(f"instruction not in block {self.label}: {instr}")

    def clone(self, new_label: str) -> "BasicBlock":
        """A deep copy of this block under a new label."""
        return BasicBlock(new_label, [i.clone() for i in self.instrs])

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self):
        return iter(self.instrs)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label}: {len(self.instrs)} instrs>"
