"""POWER-flavoured register IR.

The IR mirrors the RS/6000 assembly listings used throughout the paper:
general-purpose registers ``r0..r31``, condition registers ``cr0..cr7``, a
count register ``ctr``, and the instruction classes the paper's passes
manipulate (loads/stores with base+displacement addressing, register copies,
ALU operations, compares, conditional/unconditional branches, branch on
count, calls and returns).

Public surface:

- :class:`~repro.ir.operands.Reg` and the ``gpr``/``cr`` helpers
- :class:`~repro.ir.instructions.Instr` plus the ``make_*`` constructors
- :class:`~repro.ir.basicblock.BasicBlock`
- :class:`~repro.ir.function.Function`
- :class:`~repro.ir.module.Module` and :class:`~repro.ir.module.DataObject`
- :func:`~repro.ir.parser.parse_module` / :func:`~repro.ir.parser.parse_function`
- :func:`~repro.ir.printer.format_module` / :func:`~repro.ir.printer.format_function`
- :func:`~repro.ir.verifier.verify_function` / :func:`~repro.ir.verifier.verify_module`
"""

from repro.ir.operands import CTR, Reg, cr, gpr
from repro.ir.instructions import (
    ALU_OPS,
    ALU_RI_OPS,
    COND_CODES,
    Instr,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import DataObject, Module
from repro.ir.parser import ParseError, parse_function, parse_module
from repro.ir.printer import format_function, format_instr, format_module
from repro.ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "ALU_OPS",
    "ALU_RI_OPS",
    "BasicBlock",
    "COND_CODES",
    "CTR",
    "DataObject",
    "Function",
    "Instr",
    "Module",
    "ParseError",
    "Reg",
    "VerificationError",
    "cr",
    "format_function",
    "format_instr",
    "format_module",
    "gpr",
    "parse_function",
    "parse_module",
    "verify_function",
    "verify_module",
]
