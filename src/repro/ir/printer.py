"""Textual form of the IR, matching the parser's input syntax."""

from typing import List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    ALU_OPS,
    ALU_RI_OPS,
    Instr,
    UNARY_OPS,
)
from repro.ir.module import Module


#: Attr keys with a short printed spelling (kept for backwards
#: compatibility — ``!spec`` predates the general attr syntax).
_ATTR_SHORT = {"speculative": "spec"}


def format_instr(instr: Instr) -> str:
    """One-line assembly form of an instruction.

    Instruction attrs are printed as trailing ``!key`` (boolean) /
    ``!key=value`` tokens in sorted key order so that *every* attr —
    not just ``speculative`` (``!spec``) — survives a print/parse round
    trip. Pinning attrs like ``save``/``restore``/``counter`` and the
    scheduler's ``spec_depth`` budget change how later passes may treat
    an instruction, so dropping them on reparse would silently alter
    semantics. Falsy attrs are elided: an attr a pass set to ``False``
    is indistinguishable from one never set.
    """
    text = _format_instr_body(instr)
    parts = []
    for key in sorted(instr.attrs):
        value = instr.attrs[key]
        if not value:
            continue  # False/None/0 read the same as "never set"
        name = _ATTR_SHORT.get(key, key)
        if value is True:
            parts.append(f"!{name}")
        else:
            parts.append(f"!{name}={value}")
    if parts:
        return f"{text} " + " ".join(parts)
    return text


def _format_instr_body(instr: Instr) -> str:
    op = instr.opcode
    if op == "LI":
        return f"LI {instr.rd}, {instr.imm}"
    if op == "LA":
        return f"LA {instr.rd}, {instr.symbol}"
    if op in UNARY_OPS:
        return f"{op} {instr.rd}, {instr.ra}"
    if op in ALU_OPS:
        return f"{op} {instr.rd}, {instr.ra}, {instr.rb}"
    if op in ALU_RI_OPS:
        return f"{op} {instr.rd}, {instr.ra}, {instr.imm}"
    if op in ("L", "LU"):
        return f"{op} {instr.rd}, {instr.disp}({instr.base})"
    if op in ("ST", "STU"):
        return f"{op} {instr.disp}({instr.base}), {instr.ra}"
    if op == "C":
        return f"C {instr.crf}, {instr.ra}, {instr.rb}"
    if op == "CI":
        return f"CI {instr.crf}, {instr.ra}, {instr.imm}"
    if op == "B":
        return f"B {instr.target}"
    if op in ("BT", "BF"):
        return f"{op} {instr.target}, {instr.crf}.{instr.cond}"
    if op == "BCT":
        return f"BCT {instr.target}"
    if op == "MTCTR":
        return f"MTCTR {instr.ra}"
    if op == "MFCTR":
        return f"MFCTR {instr.rd}"
    if op == "CALL":
        return f"CALL {instr.symbol}, {instr.nargs}"
    if op == "RET":
        return "RET"
    if op == "NOP":
        return "NOP"
    raise ValueError(f"cannot format opcode {op!r}")


def format_block(block: BasicBlock) -> str:
    lines: List[str] = [f"{block.label}:"]
    for instr in block.instrs:
        lines.append(f"    {format_instr(instr)}")
    return "\n".join(lines)


def format_function(fn: Function) -> str:
    params = ", ".join(str(p) for p in fn.params)
    lines = [f"func {fn.name}({params}):"]
    for block in fn.blocks:
        lines.append(format_block(block))
    return "\n".join(lines)


def format_module(module: Module) -> str:
    lines: List[str] = []
    for name in sorted(module.data):
        obj = module.data[name]
        parts = [f"data {obj.name}: size={obj.size}"]
        if obj.init:
            parts.append("init=[" + ", ".join(str(v) for v in obj.init) + "]")
        if obj.volatile:
            parts.append("volatile")
        lines.append(" ".join(parts))
    if lines:
        lines.append("")
    for fn in module.functions.values():
        lines.append(format_function(fn))
        lines.append("")
    return "\n".join(lines)
