"""Parser for the textual IR.

The accepted syntax mirrors the paper's RS/6000 listings closely enough
that the paper's own examples can be transcribed as test inputs::

    data a: size=16 init=[1, 2, 3, 4]
    data dev: size=4 volatile

    func xlygetvalue(r3, r8):
    loop:
        L r4, 4(r8)
        L r5, 4(r4)
        C cr0, r5, r3
        BT found, cr0.eq
        L r8, 8(r8)
        CI cr1, r8, 0
        BF loop, cr1.ne
    endofchain:
        LI r3, 0
        RET
    found:
        LR r3, r4
        RET

Comments start with ``#`` or ``//`` and run to end of line. Labels start a
new basic block; an instruction before any label goes into an implicit
``entry`` block. Blocks are laid out in source order, so fallthrough works
as written.
"""

import re
from typing import List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    ALU_OPS,
    ALU_RI_OPS,
    COND_CODES,
    Instr,
    UNARY_OPS,
    wrap32,
)
from repro.ir.module import Module
from repro.ir.operands import Reg, parse_reg


class ParseError(ValueError):
    """Raised on malformed IR text; carries the line number."""

    def __init__(self, message: str, lineno: int):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_MEM_RE = re.compile(r"^(-?\d+)\((\w+)\)$")
_CRCOND_RE = re.compile(r"^(cr\d+)\.(\w+)$")
_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*):$")
_FUNC_RE = re.compile(r"^func\s+([A-Za-z_][\w.]*)\s*\(([^)]*)\)\s*:$")
_DATA_RE = re.compile(r"^data\s+([A-Za-z_][\w.]*)\s*:\s*(.*)$")


def _strip_comment(line: str) -> str:
    for marker in ("#", "//"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",")] if text.strip() else []


def _parse_int(text: str, lineno: int) -> int:
    try:
        return wrap32(int(text, 0))
    except ValueError:
        raise ParseError(f"expected integer, got {text!r}", lineno)


def _parse_mem(text: str, lineno: int) -> Tuple[int, Reg]:
    match = _MEM_RE.match(text.replace(" ", ""))
    if not match:
        raise ParseError(f"expected disp(base), got {text!r}", lineno)
    return int(match.group(1)), parse_reg(match.group(2))


def _parse_crcond(text: str, lineno: int) -> Tuple[Reg, str]:
    match = _CRCOND_RE.match(text.replace(" ", ""))
    if not match:
        raise ParseError(f"expected crN.cond, got {text!r}", lineno)
    cond = match.group(2)
    if cond not in COND_CODES:
        raise ParseError(f"bad condition code {cond!r}", lineno)
    return parse_reg(match.group(1)), cond


_ATTR_RE = re.compile(r"!([A-Za-z_][\w]*)(?:=(-?\w+))?\s*$")

#: Short printed spellings back to canonical attr keys (``!spec``).
_ATTR_LONG = {"spec": "speculative"}


def parse_instr(line: str, lineno: int = 0) -> Instr:
    """Parse a single instruction line.

    Trailing ``!key`` / ``!key=value`` tokens populate the instruction's
    ``attrs`` dict — ``!spec`` is the short form of
    ``attrs["speculative"]``, and linkage/scheduler bookkeeping like
    ``!save`` or ``!spec_depth=2`` round-trips the same way. Bare keys
    parse as ``True``; values parse as integers when they look like one,
    and are kept as strings otherwise.
    """
    attrs = {}
    text = line.rstrip()
    while True:
        match = _ATTR_RE.search(text)
        if not match:
            break
        key = _ATTR_LONG.get(match.group(1), match.group(1))
        raw = match.group(2)
        if raw is None:
            attrs[key] = True
        else:
            try:
                attrs[key] = int(raw, 0)
            except ValueError:
                attrs[key] = raw
        text = text[: match.start()].rstrip()
    instr = _parse_instr_body(text, lineno)
    instr.attrs.update(attrs)
    return instr


def _parse_instr_body(line: str, lineno: int = 0) -> Instr:
    parts = line.split(None, 1)
    op = parts[0].upper()
    operands = _split_operands(parts[1]) if len(parts) > 1 else []

    def need(n: int) -> None:
        if len(operands) != n:
            raise ParseError(f"{op} expects {n} operands, got {len(operands)}", lineno)

    try:
        if op == "LI":
            need(2)
            return Instr("LI", rd=parse_reg(operands[0]), imm=_parse_int(operands[1], lineno))
        if op == "LA":
            need(2)
            return Instr("LA", rd=parse_reg(operands[0]), symbol=operands[1])
        if op in UNARY_OPS:
            need(2)
            return Instr(op, rd=parse_reg(operands[0]), ra=parse_reg(operands[1]))
        if op in ALU_OPS:
            need(3)
            return Instr(
                op,
                rd=parse_reg(operands[0]),
                ra=parse_reg(operands[1]),
                rb=parse_reg(operands[2]),
            )
        if op in ALU_RI_OPS:
            need(3)
            return Instr(
                op,
                rd=parse_reg(operands[0]),
                ra=parse_reg(operands[1]),
                imm=_parse_int(operands[2], lineno),
            )
        if op in ("L", "LU"):
            need(2)
            disp, base = _parse_mem(operands[1], lineno)
            return Instr(op, rd=parse_reg(operands[0]), base=base, disp=disp)
        if op in ("ST", "STU"):
            need(2)
            disp, base = _parse_mem(operands[0], lineno)
            return Instr(op, ra=parse_reg(operands[1]), base=base, disp=disp)
        if op == "C":
            need(3)
            return Instr(
                "C",
                crf=parse_reg(operands[0]),
                ra=parse_reg(operands[1]),
                rb=parse_reg(operands[2]),
            )
        if op == "CI":
            need(3)
            return Instr(
                "CI",
                crf=parse_reg(operands[0]),
                ra=parse_reg(operands[1]),
                imm=_parse_int(operands[2], lineno),
            )
        if op == "B":
            need(1)
            return Instr("B", target=operands[0])
        if op in ("BT", "BF"):
            need(2)
            crf, cond = _parse_crcond(operands[1], lineno)
            return Instr(op, target=operands[0], crf=crf, cond=cond)
        if op == "BCT":
            need(1)
            return Instr("BCT", target=operands[0])
        if op == "MTCTR":
            need(1)
            return Instr("MTCTR", ra=parse_reg(operands[0]))
        if op == "MFCTR":
            need(1)
            return Instr("MFCTR", rd=parse_reg(operands[0]))
        if op == "CALL":
            if len(operands) == 1:
                return Instr("CALL", symbol=operands[0], nargs=0)
            need(2)
            return Instr("CALL", symbol=operands[0], nargs=_parse_int(operands[1], lineno))
        if op == "RET":
            need(0)
            return Instr("RET")
        if op == "NOP":
            need(0)
            return Instr("NOP")
    except ValueError as exc:
        if isinstance(exc, ParseError):
            raise
        raise ParseError(str(exc), lineno)
    raise ParseError(f"unknown opcode {op!r}", lineno)


def _parse_data_line(module: Module, name: str, rest: str, lineno: int) -> None:
    size: Optional[int] = None
    init: List[int] = []
    volatile = False
    # Tokens: size=N, init=[...], volatile.
    init_match = re.search(r"init=\[([^\]]*)\]", rest)
    if init_match:
        body = init_match.group(1).strip()
        if body:
            init = [_parse_int(v.strip(), lineno) for v in body.split(",")]
        rest = rest[: init_match.start()] + rest[init_match.end() :]
    for token in rest.replace(",", " ").split():
        if token.startswith("size="):
            size = _parse_int(token[5:], lineno)
        elif token == "volatile":
            volatile = True
        else:
            raise ParseError(f"bad data attribute {token!r}", lineno)
    if size is None:
        size = max(len(init) * 4, 4)
    module.add_data(name, size, init, volatile)


def parse_module(text: str, name: str = "module") -> Module:
    """Parse a full module (data declarations and functions)."""
    module = Module(name)
    fn: Optional[Function] = None
    block: Optional[BasicBlock] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue

        func_match = _FUNC_RE.match(line)
        if func_match:
            params = [
                parse_reg(p.strip())
                for p in func_match.group(2).split(",")
                if p.strip()
            ]
            fn = Function(func_match.group(1), params)
            module.add_function(fn)
            block = None
            continue

        data_match = _DATA_RE.match(line)
        if data_match and fn is None:
            _parse_data_line(module, data_match.group(1), data_match.group(2), lineno)
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            if fn is None:
                raise ParseError("label outside a function", lineno)
            block = BasicBlock(label_match.group(1))
            fn.add_block(block)
            continue

        if fn is None:
            raise ParseError(f"instruction outside a function: {line!r}", lineno)
        if block is None:
            block = BasicBlock("entry")
            fn.add_block(block)
        if block.terminator is not None:
            # An instruction after a terminator without a label starts an
            # anonymous fallthrough block (should not normally happen in
            # hand-written inputs, but keeps round-tripping robust).
            block = BasicBlock(fn.new_label("anon"))
            fn.add_block(block)
        block.append(parse_instr(line, lineno))

    return module


def parse_function(text: str) -> Function:
    """Parse text containing exactly one function."""
    module = parse_module(text)
    if len(module.functions) != 1:
        raise ParseError(
            f"expected exactly one function, found {len(module.functions)}", 0
        )
    return next(iter(module.functions.values()))
