"""Modules: a set of functions plus global data objects.

Data objects model the paper's TOC-addressed globals: each object has a
name, a size in bytes, optional initial word values, and a ``volatile``
flag (shared variables / memory-mapped I/O that the load/store motion pass
must never touch). A simple loader assigns each object a base address; the
``LA`` instruction materialises that address, standing in for the paper's
``L r4=.a(r2,0)`` load-from-TOC idiom.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.function import Function

#: Base address of the first data object; objects are padded apart so that
#: distinct symbols can never overlap.
DATA_BASE = 0x10000
DATA_ALIGN = 0x100

#: Base of the downward-growing stack.
STACK_BASE = 0x7FFF0000


@dataclass
class DataObject:
    """A global data object."""

    name: str
    size: int
    init: List[int] = field(default_factory=list)
    volatile: bool = False

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"data object {self.name} must have positive size")
        if len(self.init) * 4 > self.size:
            raise ValueError(f"init data larger than object {self.name}")


class Module:
    """A translation unit: functions plus global data."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.data: Dict[str, DataObject] = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def add_data(
        self,
        name: str,
        size: int,
        init: Optional[List[int]] = None,
        volatile: bool = False,
    ) -> DataObject:
        if name in self.data:
            raise ValueError(f"duplicate data object {name!r}")
        obj = DataObject(name, size, list(init) if init else [], volatile)
        self.data[name] = obj
        return obj

    def function(self, name: str) -> Function:
        return self.functions[name]

    def layout(self) -> Dict[str, int]:
        """Assign a base address to every data object (stable order)."""
        addresses: Dict[str, int] = {}
        addr = DATA_BASE
        for name in sorted(self.data):
            obj = self.data[name]
            addresses[name] = addr
            padded = ((obj.size + DATA_ALIGN - 1) // DATA_ALIGN + 1) * DATA_ALIGN
            addr += padded
        return addresses

    def symbol_spans(self) -> Dict[str, range]:
        """Address range occupied by each data object."""
        addresses = self.layout()
        return {
            name: range(addresses[name], addresses[name] + self.data[name].size)
            for name in self.data
        }

    def total_instruction_count(self) -> int:
        return sum(fn.instruction_count() for fn in self.functions.values())

    def clone(self) -> "Module":
        copy = Module(self.name)
        for fn in self.functions.values():
            copy.add_function(fn.clone())
        for obj in self.data.values():
            copy.add_data(obj.name, obj.size, list(obj.init), obj.volatile)
        return copy

    def restore_from(self, snapshot: "Module") -> None:
        """Become ``snapshot``, in place and exhaustively.

        Every instance attribute is taken from ``snapshot`` — including
        attributes a (faulty) pass may have *added* to this module, which
        are dropped. The snapshot's own functions/data objects are
        adopted rather than copied, so the snapshot must not be reused
        afterwards (clone it first if it must stay pristine). Callers
        holding a reference to this module see the restored state; that
        is the rollback contract of the guarded pass manager.
        """
        for key in list(self.__dict__):
            if key not in snapshot.__dict__:
                del self.__dict__[key]
        self.__dict__.update(snapshot.__dict__)

    def __repr__(self) -> str:
        return f"<Module {self.name}: {len(self.functions)} functions, {len(self.data)} data>"
