"""Instruction record and opcode metadata for the POWER-flavoured IR.

The opcode set follows the paper's RS/6000 listings:

========  =======================================  =========================
opcode    meaning                                  example
========  =======================================  =========================
``LI``    load immediate                           ``LI r4, 0``
``LA``    load address of a data symbol (TOC)      ``LA r4, a``
``LR``    register copy                            ``LR r4, r5``
``L``     load word                                ``L r4, 4(r8)``
``LU``    load word with update (base := EA)       ``LU r4, 2(r3)``
``ST``    store word                               ``ST 12(r4), r3``
``STU``   store word with update                   ``STU -4(r1), r3``
``A`` ..  three-register ALU ops                   ``A r6, r4, r7``
``AI`` .. register-immediate ALU ops               ``AI r3, r3, 1``
``NEG``   negate                                   ``NEG r4, r5``
``NOT``   bitwise complement                       ``NOT r4, r5``
``C``     compare two registers into a cr          ``C cr0, r5, r3``
``CI``    compare register with immediate          ``CI cr1, r8, 0``
``B``     unconditional branch                     ``B loop``
``BT``    branch if condition true                 ``BT found, cr0.eq``
``BF``    branch if condition false                ``BF loop, cr1.eq``
``BCT``   decrement ctr, branch if nonzero         ``BCT loop``
``MTCTR`` move to count register                   ``MTCTR r5``
``MFCTR`` move from count register                 ``MFCTR r5``
``CALL``  procedure call (args in r3..)            ``CALL strlen, 1``
``RET``   return (value in r3)                     ``RET``
``NOP``   no operation                             ``NOP``
========  =======================================  =========================

Each compare leaves a three-valued result (``lt``/``eq``/``gt``) in its
condition register; ``BT``/``BF`` test one of the condition codes ``eq``,
``ne``, ``lt``, ``le``, ``gt``, ``ge`` against it.
"""

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.ir.operands import (
    ARG_REGS,
    CALL_CLOBBERED,
    CTR,
    RETVAL,
    SP,
    TOC,
    Reg,
)

# --------------------------------------------------------------------------
# Opcode sets
# --------------------------------------------------------------------------

ALU_OPS = ("A", "S", "MUL", "DIV", "AND", "OR", "XOR", "SL", "SR", "SRA")
ALU_RI_OPS = ("AI", "SI", "MULI", "ANDI", "ORI", "XORI", "SLI", "SRI", "SRAI")
UNARY_OPS = ("LR", "NEG", "NOT")
LOAD_OPS = ("L", "LU")
STORE_OPS = ("ST", "STU")
CMP_OPS = ("C", "CI")
COND_BRANCH_OPS = ("BT", "BF", "BCT")
BRANCH_OPS = ("B",) + COND_BRANCH_OPS
TERMINATOR_OPS = BRANCH_OPS + ("RET",)
COND_CODES = ("eq", "ne", "lt", "le", "gt", "ge")

ALL_OPCODES = frozenset(
    ALU_OPS
    + ALU_RI_OPS
    + UNARY_OPS
    + LOAD_OPS
    + STORE_OPS
    + CMP_OPS
    + TERMINATOR_OPS
    + ("LI", "LA", "MTCTR", "MFCTR", "CALL", "NOP")
)

_MASK32 = 0xFFFFFFFF

# Names of the interpreter's library routines, fetched lazily so the IR
# layer never imports repro.machine at module-import time (the machine
# package imports the IR right back).
_LIBRARY_SYMBOL_CACHE = None


def _library_symbols():
    global _LIBRARY_SYMBOL_CACHE
    if _LIBRARY_SYMBOL_CACHE is None:
        from repro.machine.libcalls import LIBRARY_FUNCTIONS

        _LIBRARY_SYMBOL_CACHE = frozenset(LIBRARY_FUNCTIONS)
    return _LIBRARY_SYMBOL_CACHE


def wrap32(value: int) -> int:
    """Wrap an integer to signed 32-bit two's-complement."""
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def _shift_amount(value: int) -> int:
    return value & 31


def _sl(a: int, b: int) -> int:
    return wrap32(a << _shift_amount(b))


def _sr(a: int, b: int) -> int:
    return wrap32((a & _MASK32) >> _shift_amount(b))


def _sra(a: int, b: int) -> int:
    return wrap32(a >> _shift_amount(b))


def _div(a: int, b: int) -> int:
    # Total division: divide-by-zero yields 0 so random programs never trap,
    # and quotients truncate toward zero as on POWER.
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    return wrap32(-quotient if (a < 0) != (b < 0) else quotient)


#: Arithmetic semantics shared by the interpreter and constant folding.
ALU_FUNCS = {
    "A": lambda a, b: wrap32(a + b),
    "S": lambda a, b: wrap32(a - b),
    "MUL": lambda a, b: wrap32(a * b),
    "DIV": _div,
    "AND": lambda a, b: wrap32(a & b),
    "OR": lambda a, b: wrap32(a | b),
    "XOR": lambda a, b: wrap32(a ^ b),
    "SL": _sl,
    "SR": _sr,
    "SRA": _sra,
}

#: Immediate-form opcode -> register-form semantics.
ALU_RI_TO_RR = {
    "AI": "A",
    "SI": "S",
    "MULI": "MUL",
    "ANDI": "AND",
    "ORI": "OR",
    "XORI": "XOR",
    "SLI": "SL",
    "SRI": "SR",
    "SRAI": "SRA",
}

#: Condition-code predicates over a compare result in {-1, 0, 1}.
COND_FUNCS = {
    "eq": lambda v: v == 0,
    "ne": lambda v: v != 0,
    "lt": lambda v: v < 0,
    "le": lambda v: v <= 0,
    "gt": lambda v: v > 0,
    "ge": lambda v: v >= 0,
}

_instr_ids = itertools.count(1)


@dataclass
class Instr:
    """One IR instruction.

    Operand fields are populated according to the opcode; the ``make_*``
    constructors below are the intended way to build instructions. ``attrs``
    carries pass-private metadata (e.g. ``volatile`` on memory operations,
    ``counter`` on profiling code, ``save``/``restore`` on linkage code).

    Every instruction has a process-unique ``uid`` so passes can track
    identity across clones and code motion.
    """

    opcode: str
    rd: Optional[Reg] = None
    ra: Optional[Reg] = None
    rb: Optional[Reg] = None
    imm: Optional[int] = None
    base: Optional[Reg] = None
    disp: int = 0
    crf: Optional[Reg] = None
    cond: Optional[str] = None
    target: Optional[str] = None
    symbol: Optional[str] = None
    nargs: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_instr_ids))

    # -- classification ----------------------------------------------------

    @property
    def is_load(self) -> bool:
        return self.opcode in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.opcode in STORE_OPS

    @property
    def is_memory(self) -> bool:
        return self.opcode in LOAD_OPS or self.opcode in STORE_OPS

    @property
    def is_call(self) -> bool:
        return self.opcode == "CALL"

    @property
    def is_branch(self) -> bool:
        return self.opcode in BRANCH_OPS

    @property
    def is_cond_branch(self) -> bool:
        return self.opcode in COND_BRANCH_OPS

    @property
    def is_uncond_branch(self) -> bool:
        return self.opcode == "B"

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPS

    @property
    def is_return(self) -> bool:
        return self.opcode == "RET"

    @property
    def is_copy(self) -> bool:
        return self.opcode == "LR"

    @property
    def is_compare(self) -> bool:
        return self.opcode in CMP_OPS

    @property
    def is_volatile(self) -> bool:
        return bool(self.attrs.get("volatile"))

    @property
    def is_speculative(self) -> bool:
        """True if a pass moved this instruction above its guard.

        Under the paged memory model a speculative load that faults
        poisons its destination instead of trapping; unspeculation clears
        the tag when it pushes the instruction back below a branch.
        """
        return bool(self.attrs.get("speculative"))

    @property
    def has_side_effects(self) -> bool:
        """True if the instruction's effect is not captured by its defs.

        Stores write memory, calls may do anything, and volatile accesses
        must not be duplicated, reordered or removed.
        """
        return self.is_store or self.is_call or self.is_volatile

    # -- operands ----------------------------------------------------------

    def uses(self) -> Tuple[Reg, ...]:
        """Registers this instruction reads."""
        op = self.opcode
        if op in ALU_OPS or op == "C":
            return (self.ra, self.rb)
        if op in ALU_RI_OPS or op in UNARY_OPS or op == "CI":
            return (self.ra,)
        if op == "L" or op == "LU":
            return (self.base,)
        if op == "ST" or op == "STU":
            return (self.ra, self.base)
        if op == "BT" or op == "BF":
            return (self.crf,)
        if op == "BCT":
            return (CTR,)
        if op == "MTCTR":
            return (self.ra,)
        if op == "MFCTR":
            return (CTR,)
        if op == "CALL":
            return ARG_REGS[: self.nargs] + (SP, TOC)
        if op == "RET":
            # Callee-saved discipline is enforced by the linkage passes
            # (save/restore instructions carry pinning attrs), not by
            # implicit uses here, so pre-linkage code can treat r13..r31
            # as ordinary registers.
            return (RETVAL, SP)
        return ()

    def defs(self) -> Tuple[Reg, ...]:
        """Registers this instruction writes."""
        op = self.opcode
        if (
            op in ALU_OPS
            or op in ALU_RI_OPS
            or op in UNARY_OPS
            or op in ("LI", "LA", "MFCTR")
        ):
            return (self.rd,)
        if op == "L":
            return (self.rd,)
        if op == "LU":
            return (self.rd, self.base)
        if op == "STU":
            return (self.base,)
        if op == "C" or op == "CI":
            return (self.crf,)
        if op == "MTCTR" or op == "BCT":
            return (CTR,)
        if op == "CALL":
            # Library routines have *known* properties (the paper's
            # special case): their implementations touch the return
            # value and nothing else, so claiming the full volatile set
            # would let liveness kill definitions the interpreter in
            # fact preserves across the call (found by fuzzing: DCE
            # deleted a store operand defined before a memset_words
            # call). Calls to IR functions keep the full ABI clobber
            # set — the callee really may leave anything in them.
            if self.symbol in _library_symbols():
                return (RETVAL,)
            return CALL_CLOBBERED
        return ()

    # -- misc ----------------------------------------------------------------

    def clone(self) -> "Instr":
        """A copy with a fresh ``uid`` and an independent ``attrs`` dict."""
        return Instr(
            opcode=self.opcode,
            rd=self.rd,
            ra=self.ra,
            rb=self.rb,
            imm=self.imm,
            base=self.base,
            disp=self.disp,
            crf=self.crf,
            cond=self.cond,
            target=self.target,
            symbol=self.symbol,
            nargs=self.nargs,
            attrs=dict(self.attrs),
        )

    def rename_uses(self, mapping: Dict[Reg, Reg]) -> None:
        """Replace source registers in place according to ``mapping``."""
        op = self.opcode
        if self.ra is not None and self.ra in mapping:
            self.ra = mapping[self.ra]
        if self.rb is not None and self.rb in mapping:
            self.rb = mapping[self.rb]
        if self.base is not None and self.base in mapping:
            # The base is read by every memory op; for LU/STU it is also
            # written, so renaming it changes the def too -- callers that
            # only want use-renaming must not remap LU/STU bases.
            self.base = mapping[self.base]
        if op in ("BT", "BF") and self.crf in mapping:
            self.crf = mapping[self.crf]

    def rename_defs(self, mapping: Dict[Reg, Reg]) -> None:
        """Replace destination registers in place according to ``mapping``."""
        if self.rd is not None and self.rd in mapping:
            self.rd = mapping[self.rd]
        if self.is_compare and self.crf in mapping:
            self.crf = mapping[self.crf]

    def __str__(self) -> str:  # pragma: no cover - delegated to printer
        from repro.ir.printer import format_instr

        return format_instr(self)

    def __repr__(self) -> str:
        return f"<Instr {self}>"


# --------------------------------------------------------------------------
# Constructors
# --------------------------------------------------------------------------


def make_li(rd: Reg, imm: int) -> Instr:
    return Instr("LI", rd=rd, imm=wrap32(imm))


def make_la(rd: Reg, symbol: str) -> Instr:
    return Instr("LA", rd=rd, symbol=symbol)


def make_lr(rd: Reg, ra: Reg) -> Instr:
    return Instr("LR", rd=rd, ra=ra)


def make_unary(opcode: str, rd: Reg, ra: Reg) -> Instr:
    if opcode not in UNARY_OPS:
        raise ValueError(f"not a unary opcode: {opcode}")
    return Instr(opcode, rd=rd, ra=ra)


def make_alu(opcode: str, rd: Reg, ra: Reg, rb: Reg) -> Instr:
    if opcode not in ALU_OPS:
        raise ValueError(f"not an ALU opcode: {opcode}")
    return Instr(opcode, rd=rd, ra=ra, rb=rb)


def make_alui(opcode: str, rd: Reg, ra: Reg, imm: int) -> Instr:
    if opcode not in ALU_RI_OPS:
        raise ValueError(f"not an ALU-immediate opcode: {opcode}")
    return Instr(opcode, rd=rd, ra=ra, imm=wrap32(imm))


def make_load(rd: Reg, disp: int, base: Reg, update: bool = False) -> Instr:
    return Instr("LU" if update else "L", rd=rd, base=base, disp=disp)


def make_store(disp: int, base: Reg, value: Reg, update: bool = False) -> Instr:
    return Instr("STU" if update else "ST", ra=value, base=base, disp=disp)


def make_cmp(crf: Reg, ra: Reg, rb: Reg) -> Instr:
    return Instr("C", crf=crf, ra=ra, rb=rb)


def make_cmpi(crf: Reg, ra: Reg, imm: int) -> Instr:
    return Instr("CI", crf=crf, ra=ra, imm=wrap32(imm))

def make_b(target: str) -> Instr:
    return Instr("B", target=target)


def make_bt(target: str, crf: Reg, cond: str) -> Instr:
    if cond not in COND_CODES:
        raise ValueError(f"bad condition code: {cond}")
    return Instr("BT", target=target, crf=crf, cond=cond)


def make_bf(target: str, crf: Reg, cond: str) -> Instr:
    if cond not in COND_CODES:
        raise ValueError(f"bad condition code: {cond}")
    return Instr("BF", target=target, crf=crf, cond=cond)


def make_bct(target: str) -> Instr:
    return Instr("BCT", target=target)


def make_mtctr(ra: Reg) -> Instr:
    return Instr("MTCTR", ra=ra)


def make_mfctr(rd: Reg) -> Instr:
    return Instr("MFCTR", rd=rd)


def make_call(symbol: str, nargs: int = 0) -> Instr:
    return Instr("CALL", symbol=symbol, nargs=nargs)


def make_ret() -> Instr:
    return Instr("RET")


def make_nop() -> Instr:
    return Instr("NOP")
