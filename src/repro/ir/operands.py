"""Register operands for the POWER-flavoured IR.

Three register files exist, mirroring the paper's RS/6000 listings:

- 32 general purpose registers ``r0..r31`` (kind ``gpr``),
- 8 condition registers ``cr0..cr7`` (kind ``cr``), each holding the
  three-valued result of a compare,
- the count register ``ctr`` (kind ``ctr``) used by ``BCT`` loops.
"""

from dataclasses import dataclass

GPR_COUNT = 32
CR_COUNT = 8

# RS/6000-style linkage: r1 is the stack pointer, r2 the TOC anchor,
# r3..r10 carry arguments (r3 also carries the return value), and
# r13..r31 are callee-saved ("nonvolatile").
STACK_POINTER_INDEX = 1
TOC_INDEX = 2
FIRST_ARG_INDEX = 3
LAST_ARG_INDEX = 10
RETURN_VALUE_INDEX = 3
FIRST_NONVOLATILE_INDEX = 13


@dataclass(frozen=True, order=True)
class Reg:
    """A register operand: ``kind`` is ``gpr``, ``cr`` or ``ctr``."""

    kind: str
    index: int

    def __post_init__(self):
        if self.kind == "gpr":
            if not 0 <= self.index < GPR_COUNT:
                raise ValueError(f"gpr index out of range: {self.index}")
        elif self.kind == "cr":
            if not 0 <= self.index < CR_COUNT:
                raise ValueError(f"cr index out of range: {self.index}")
        elif self.kind == "ctr":
            if self.index != 0:
                raise ValueError("ctr has a single register")
        else:
            raise ValueError(f"unknown register kind: {self.kind}")

    @property
    def name(self) -> str:
        if self.kind == "gpr":
            return f"r{self.index}"
        if self.kind == "cr":
            return f"cr{self.index}"
        return "ctr"

    @property
    def is_callee_saved(self) -> bool:
        """True for the registers a procedure must preserve (r13..r31)."""
        return self.kind == "gpr" and self.index >= FIRST_NONVOLATILE_INDEX

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Reg({self.name})"


def gpr(index: int) -> Reg:
    """The general purpose register ``r<index>``."""
    return Reg("gpr", index)


def cr(index: int) -> Reg:
    """The condition register ``cr<index>``."""
    return Reg("cr", index)


CTR = Reg("ctr", 0)

SP = gpr(STACK_POINTER_INDEX)
TOC = gpr(TOC_INDEX)
RETVAL = gpr(RETURN_VALUE_INDEX)

ARG_REGS = tuple(gpr(i) for i in range(FIRST_ARG_INDEX, LAST_ARG_INDEX + 1))
CALLEE_SAVED = tuple(gpr(i) for i in range(FIRST_NONVOLATILE_INDEX, GPR_COUNT))
# Registers a call may clobber: the non-saved GPRs except the stack pointer
# and TOC anchor, plus every condition register and the count register.
CALL_CLOBBERED = (
    tuple(
        gpr(i)
        for i in range(0, FIRST_NONVOLATILE_INDEX)
        if i not in (STACK_POINTER_INDEX, TOC_INDEX)
    )
    + tuple(cr(i) for i in range(CR_COUNT))
    + (CTR,)
)


def parse_reg(text: str) -> Reg:
    """Parse a register name (``r5``, ``cr0``, ``ctr``)."""
    text = text.strip()
    if text == "ctr":
        return CTR
    if text.startswith("cr") and text[2:].isdigit():
        return cr(int(text[2:]))
    if text.startswith("r") and text[1:].isdigit():
        return gpr(int(text[1:]))
    raise ValueError(f"not a register: {text!r}")
