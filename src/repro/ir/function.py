"""Functions: an ordered list of basic blocks with CFG queries.

Block order is the *layout* order; fallthrough edges connect adjacent
blocks. The entry block is the first block. CFG successor/predecessor
queries are computed on demand so passes may freely restructure the block
list without cache invalidation concerns (functions in this system are
small enough that recomputation is cheap, and correctness of the many
CFG-restructuring passes matters far more than constant factors).
"""

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instr
from repro.ir.operands import Reg


class Function:
    """A procedure in the IR."""

    def __init__(self, name: str, params: Optional[Iterable[Reg]] = None):
        self.name = name
        self.params: Tuple[Reg, ...] = tuple(params) if params else ()
        self.blocks: List[BasicBlock] = []
        self._label_counter = itertools.count()
        # Registers handed out by new_vreg but possibly not yet referenced by
        # any instruction; kept so back-to-back allocations stay distinct.
        self._reserved_regs = set()

    # -- block management ---------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        for bb in self.blocks:
            if bb.label == label:
                return bb
        raise KeyError(f"no block labelled {label!r} in {self.name}")

    def has_block(self, label: str) -> bool:
        return any(bb.label == label for bb in self.blocks)

    def label_map(self) -> Dict[str, BasicBlock]:
        return {bb.label: bb for bb in self.blocks}

    def add_block(self, block: BasicBlock, after: Optional[BasicBlock] = None) -> BasicBlock:
        """Append ``block``, or insert it immediately after ``after``."""
        if self.has_block(block.label):
            raise ValueError(f"duplicate block label {block.label!r}")
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.block_index(after) + 1, block)
        return block

    def new_block(self, hint: str = "bb", after: Optional[BasicBlock] = None) -> BasicBlock:
        return self.add_block(BasicBlock(self.new_label(hint)), after=after)

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)

    def block_index(self, block: BasicBlock) -> int:
        for i, bb in enumerate(self.blocks):
            if bb is block:
                return i
        raise ValueError(f"block {block.label} not in function {self.name}")

    def new_label(self, hint: str = "bb") -> str:
        existing = {bb.label for bb in self.blocks}
        while True:
            label = f"{hint}.{next(self._label_counter)}"
            if label not in existing:
                return label

    # -- CFG ------------------------------------------------------------------

    def layout_successor(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The next block in layout order, or None for the last block."""
        idx = self.block_index(block)
        if idx + 1 < len(self.blocks):
            return self.blocks[idx + 1]
        return None

    def successors(self, block: BasicBlock) -> List[BasicBlock]:
        """CFG successors; for two-way branches the taken target is first.

        A branch to a label with no block (a dangling target — invalid
        IR that the verifier reports) contributes no edge rather than
        raising: CFG queries stay total on broken functions so cleanup
        passes can delete the offending unreachable code instead of
        crashing before they get the chance.
        """
        labels = self.label_map()
        result: List[BasicBlock] = []
        term = block.terminator
        if term is not None and term.target is not None:
            target = labels.get(term.target)
            if target is not None:
                result.append(target)
        if block.falls_through:
            nxt = self.layout_successor(block)
            if nxt is not None and all(s is not nxt for s in result):
                result.append(nxt)
        return result

    def predecessors(self, block: BasicBlock) -> List[BasicBlock]:
        return [bb for bb in self.blocks if any(s is block for s in self.successors(bb))]

    def predecessor_map(self) -> Dict[str, List[BasicBlock]]:
        preds: Dict[str, List[BasicBlock]] = {bb.label: [] for bb in self.blocks}
        for bb in self.blocks:
            for succ in self.successors(bb):
                preds[succ.label].append(bb)
        return preds

    def edges(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        return [(bb, succ) for bb in self.blocks for succ in self.successors(bb)]

    # -- instructions ---------------------------------------------------------

    def instructions(self) -> Iterable[Instr]:
        for bb in self.blocks:
            yield from bb.instrs

    def instruction_count(self) -> int:
        return sum(len(bb.instrs) for bb in self.blocks)

    def find_block_of(self, instr: Instr) -> BasicBlock:
        for bb in self.blocks:
            if any(i is instr for i in bb.instrs):
                return bb
        raise ValueError(f"instruction not found in {self.name}: {instr}")

    def new_vreg(
        self,
        kind: str = "gpr",
        available: Optional[Iterable[Reg]] = None,
        include_callee_saved: bool = False,
    ):
        """Pick an unused register of ``kind`` for renaming.

        The IR is register-allocated (it models post-RA assembly, as in the
        paper), so "new" registers come from the pool of registers the
        function never touches. Raises ``RuntimeError`` when the pool is
        exhausted; callers treat that as "renaming not possible here".
        """
        from repro.ir.operands import CR_COUNT, FIRST_NONVOLATILE_INDEX, GPR_COUNT, cr, gpr

        # Collect explicitly-referenced registers only: the implicit use/def
        # sets of CALL and RET (clobbers, callee-saved discipline) would
        # otherwise mark every register used.
        used = set(self._reserved_regs)
        has_call = False
        for instr in self.instructions():
            has_call = has_call or instr.is_call
            for reg in (instr.rd, instr.ra, instr.rb, instr.base, instr.crf):
                if reg is not None:
                    used.add(reg)
        used.update(self.params)
        if available is None:
            if kind == "gpr":
                # Avoid the linkage registers r0..r2. In a function with
                # calls, only callee-saved registers survive a call, so new
                # values come from that pool (the prolog cost is already
                # being paid). In a leaf function the pool stops at the
                # volatile registers: allocating r13..r31 would force a
                # save/restore pair per call of this function, which on a
                # machine with one fixed-point unit costs more than any
                # scheduling freedom the extra register buys.
                if has_call:
                    available = [gpr(i) for i in range(FIRST_NONVOLATILE_INDEX, GPR_COUNT)]
                elif include_callee_saved:
                    available = [gpr(i) for i in range(3, GPR_COUNT)]
                else:
                    available = [gpr(i) for i in range(3, FIRST_NONVOLATILE_INDEX)]
            elif kind == "cr":
                # cr0/cr1 are conventionally clobber-prone; prefer high crs.
                available = [cr(i) for i in range(CR_COUNT - 1, -1, -1)]
                if has_call:
                    available = []
            else:
                raise ValueError(f"cannot allocate register of kind {kind}")
        for reg in available:
            if reg not in used:
                self._reserved_regs.add(reg)
                return reg
        raise RuntimeError(f"out of {kind} registers in {self.name}")

    def clone(self) -> "Function":
        """A deep copy of this function."""
        copy = Function(self.name, self.params)
        for bb in self.blocks:
            copy.add_block(bb.clone(bb.label))
        return copy

    def restore_from(self, snapshot: "Function") -> None:
        """Become ``snapshot``, in place and exhaustively.

        Mirror of :meth:`Module.restore_from` at function granularity:
        adopts every attribute of ``snapshot`` (blocks, params, label
        counter, reserved registers, anything a pass added) while keeping
        this object's identity, so references held by the enclosing
        module or by analyses stay valid.
        """
        for key in list(self.__dict__):
            if key not in snapshot.__dict__:
                del self.__dict__[key]
        self.__dict__.update(snapshot.__dict__)

    def __repr__(self) -> str:
        return f"<Function {self.name}: {len(self.blocks)} blocks>"
