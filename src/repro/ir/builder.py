"""Fluent construction API for IR functions.

Used by the synthetic workload generators; hand-written examples usually go
through the parser instead. Example::

    b = FunctionBuilder("count", params=[gpr(3)])
    b.label("loop")
    b.load(gpr(4), 0, gpr(3))
    b.cmpi(cr(0), gpr(4), 0)
    b.bt("done", cr(0), "eq")
    b.addi(gpr(3), gpr(3), 4)
    b.b("loop")
    b.label("done")
    b.ret()
    fn = b.build()
"""

from typing import Iterable, Optional

from repro.ir import instructions as ins
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.operands import Reg


class FunctionBuilder:
    """Builds a :class:`Function` block by block."""

    def __init__(self, name: str, params: Optional[Iterable[Reg]] = None):
        self.fn = Function(name, params)
        self._current: Optional[BasicBlock] = None

    def label(self, name: str) -> "FunctionBuilder":
        """Start a new basic block labelled ``name``."""
        self._current = BasicBlock(name)
        self.fn.add_block(self._current)
        return self

    def emit(self, instr: ins.Instr) -> "FunctionBuilder":
        if self._current is None:
            self.label("entry")
        if self._current.terminator is not None:
            self.label(self.fn.new_label("anon"))
        self._current.append(instr)
        return self

    # -- convenience emitters ------------------------------------------------

    def li(self, rd: Reg, imm: int):
        return self.emit(ins.make_li(rd, imm))

    def la(self, rd: Reg, symbol: str):
        return self.emit(ins.make_la(rd, symbol))

    def lr(self, rd: Reg, ra: Reg):
        return self.emit(ins.make_lr(rd, ra))

    def load(self, rd: Reg, disp: int, base: Reg, update: bool = False):
        return self.emit(ins.make_load(rd, disp, base, update))

    def store(self, disp: int, base: Reg, value: Reg, update: bool = False):
        return self.emit(ins.make_store(disp, base, value, update))

    def alu(self, opcode: str, rd: Reg, ra: Reg, rb: Reg):
        return self.emit(ins.make_alu(opcode, rd, ra, rb))

    def alui(self, opcode: str, rd: Reg, ra: Reg, imm: int):
        return self.emit(ins.make_alui(opcode, rd, ra, imm))

    def add(self, rd: Reg, ra: Reg, rb: Reg):
        return self.alu("A", rd, ra, rb)

    def addi(self, rd: Reg, ra: Reg, imm: int):
        return self.alui("AI", rd, ra, imm)

    def sub(self, rd: Reg, ra: Reg, rb: Reg):
        return self.alu("S", rd, ra, rb)

    def mul(self, rd: Reg, ra: Reg, rb: Reg):
        return self.alu("MUL", rd, ra, rb)

    def and_(self, rd: Reg, ra: Reg, rb: Reg):
        return self.alu("AND", rd, ra, rb)

    def or_(self, rd: Reg, ra: Reg, rb: Reg):
        return self.alu("OR", rd, ra, rb)

    def xor(self, rd: Reg, ra: Reg, rb: Reg):
        return self.alu("XOR", rd, ra, rb)

    def andi(self, rd: Reg, ra: Reg, imm: int):
        return self.alui("ANDI", rd, ra, imm)

    def cmp(self, crf: Reg, ra: Reg, rb: Reg):
        return self.emit(ins.make_cmp(crf, ra, rb))

    def cmpi(self, crf: Reg, ra: Reg, imm: int):
        return self.emit(ins.make_cmpi(crf, ra, imm))

    def b(self, target: str):
        return self.emit(ins.make_b(target))

    def bt(self, target: str, crf: Reg, cond: str):
        return self.emit(ins.make_bt(target, crf, cond))

    def bf(self, target: str, crf: Reg, cond: str):
        return self.emit(ins.make_bf(target, crf, cond))

    def bct(self, target: str):
        return self.emit(ins.make_bct(target))

    def mtctr(self, ra: Reg):
        return self.emit(ins.make_mtctr(ra))

    def call(self, symbol: str, nargs: int = 0):
        return self.emit(ins.make_call(symbol, nargs))

    def ret(self):
        return self.emit(ins.make_ret())

    def nop(self):
        return self.emit(ins.make_nop())

    def build(self) -> Function:
        """Finish and return the function."""
        return self.fn
