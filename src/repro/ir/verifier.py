"""Structural verification of IR invariants.

Run after every pass in checked mode. Catches the classic transformation
bugs early: dangling branch targets, misplaced terminators, falling off the
end of a function, wrong operand register kinds.
"""

from typing import List, Optional

from repro.ir.function import Function
from repro.ir.instructions import ALL_OPCODES, ALU_OPS, ALU_RI_OPS, UNARY_OPS
from repro.ir.module import Module
from repro.ir.operands import SP, TOC, gpr


class VerificationError(ValueError):
    """Raised when a function violates an IR structural invariant."""


def _check(condition: bool, message: str, errors: List[str]) -> None:
    if not condition:
        errors.append(message)


def verify_function(
    fn: Function,
    known_symbols=None,
    check_defs: bool = False,
    check_speculation: bool = False,
) -> None:
    """Raise :class:`VerificationError` if ``fn`` is malformed.

    ``check_defs`` additionally runs a conservative definite-assignment
    analysis and rejects registers read before any definition reaches
    them. It is opt-in: the machine defines every register as 0, so
    use-before-def is *legal* at runtime and plenty of pre-linkage code
    relies on it — but for hand-written IR it almost always flags a typo.

    ``check_speculation`` (also opt-in) rejects an
    ``attrs["speculative"]`` tag on any instruction with a non-speculative
    side effect — a store, a call, a volatile access, or a terminator.
    The paged memory model's poison discipline only defers faults of
    side-effect-free operations; a "speculative" store is a contradiction
    no pass should ever produce.
    """
    errors: List[str] = []
    _check(bool(fn.blocks), f"{fn.name}: function has no blocks", errors)

    seen_labels = set()
    for bb in fn.blocks:
        _check(
            bb.label not in seen_labels,
            f"{fn.name}: duplicate label {bb.label}",
            errors,
        )
        seen_labels.add(bb.label)

    labels = {bb.label for bb in fn.blocks}
    for bb in fn.blocks:
        for i, instr in enumerate(bb.instrs):
            _check(
                instr.opcode in ALL_OPCODES,
                f"{fn.name}/{bb.label}: unknown opcode {instr.opcode}",
                errors,
            )
            if instr.is_terminator:
                _check(
                    i == len(bb.instrs) - 1,
                    f"{fn.name}/{bb.label}: terminator {instr} not last",
                    errors,
                )
            if instr.target is not None:
                _check(
                    instr.target in labels,
                    f"{fn.name}/{bb.label}: dangling target {instr.target}",
                    errors,
                )
            _verify_operand_kinds(fn, bb.label, instr, errors)
            if check_speculation and instr.attrs.get("speculative"):
                _check(
                    not (
                        instr.has_side_effects
                        or instr.is_store
                        or instr.is_call
                        or instr.is_terminator
                    ),
                    f"{fn.name}/{bb.label}: speculative tag on {instr.opcode}, "
                    f"which has a non-speculative side effect",
                    errors,
                )
            if known_symbols is not None and instr.opcode == "LA":
                _check(
                    instr.symbol in known_symbols,
                    f"{fn.name}/{bb.label}: unknown data symbol {instr.symbol}",
                    errors,
                )

    # Control must not fall off the end of the function.
    if fn.blocks:
        last = fn.blocks[-1]
        _check(
            last.terminator is not None and not last.falls_through,
            f"{fn.name}: control may fall off the end (block {last.label})",
            errors,
        )

    if check_defs and fn.blocks:
        _check_use_before_def(fn, errors)

    if errors:
        raise VerificationError("\n".join(errors))


def _check_use_before_def(fn: Function, errors: List[str]) -> None:
    """Definite-assignment dataflow: flag uses no definition reaches.

    Entry starts with the declared parameters plus the ABI registers the
    caller always provides (SP, TOC); functions without a declared
    parameter list fall back to the r3.. argument convention. The meet is
    set intersection over predecessors, so a register defined on only one
    arm of a diamond is (correctly) not definitely assigned at the join.
    """
    initial = set(fn.params) | {SP, TOC}
    if not fn.params:
        initial |= {gpr(3 + i) for i in range(8)}

    n = len(fn.blocks)
    label_index = {bb.label: i for i, bb in enumerate(fn.blocks)}
    succs: List[List[int]] = [[] for _ in range(n)]
    for i, bb in enumerate(fn.blocks):
        term = bb.terminator
        if term is not None and term.target is not None:
            target = label_index.get(term.target)
            if target is not None:
                succs[i].append(target)
        if bb.falls_through and i + 1 < n:
            succs[i].append(i + 1)

    # ins[b] is the definitely-assigned set at block entry; None means
    # "not yet reached" (top), which also leaves unreachable blocks alone.
    ins: List[Optional[set]] = [None] * n
    ins[0] = set(initial)
    changed = True
    while changed:
        changed = False
        for i, bb in enumerate(fn.blocks):
            if ins[i] is None:
                continue
            out = set(ins[i])
            for instr in bb.instrs:
                out.update(d for d in instr.defs() if d is not None)
            for s in succs[i]:
                new = set(out) if ins[s] is None else ins[s] & out
                if new != ins[s]:
                    ins[s] = new
                    changed = True

    for i, bb in enumerate(fn.blocks):
        if ins[i] is None:
            continue
        defined = set(ins[i])
        for instr in bb.instrs:
            for reg in instr.uses():
                if reg is not None and reg not in defined:
                    errors.append(
                        f"{fn.name}/{bb.label}: {instr.opcode} uses {reg} "
                        f"before definition"
                    )
            defined.update(d for d in instr.defs() if d is not None)


def _verify_operand_kinds(fn: Function, label: str, instr, errors: List[str]) -> None:
    op = instr.opcode
    where = f"{fn.name}/{label}: {op}"

    def gpr_ok(reg) -> bool:
        return reg is not None and reg.kind == "gpr"

    def cr_ok(reg) -> bool:
        return reg is not None and reg.kind == "cr"

    if op in ALU_OPS:
        _check(
            gpr_ok(instr.rd) and gpr_ok(instr.ra) and gpr_ok(instr.rb),
            f"{where}: needs three gprs",
            errors,
        )
    elif op in ALU_RI_OPS:
        _check(
            gpr_ok(instr.rd) and gpr_ok(instr.ra) and instr.imm is not None,
            f"{where}: needs two gprs and an immediate",
            errors,
        )
    elif op in UNARY_OPS:
        _check(gpr_ok(instr.rd) and gpr_ok(instr.ra), f"{where}: needs two gprs", errors)
    elif op == "LI":
        _check(gpr_ok(instr.rd) and instr.imm is not None, f"{where}: bad operands", errors)
    elif op == "LA":
        _check(gpr_ok(instr.rd) and instr.symbol, f"{where}: bad operands", errors)
    elif op in ("L", "LU"):
        _check(gpr_ok(instr.rd) and gpr_ok(instr.base), f"{where}: bad operands", errors)
    elif op in ("ST", "STU"):
        _check(gpr_ok(instr.ra) and gpr_ok(instr.base), f"{where}: bad operands", errors)
    elif op == "C":
        _check(
            cr_ok(instr.crf) and gpr_ok(instr.ra) and gpr_ok(instr.rb),
            f"{where}: bad operands",
            errors,
        )
    elif op == "CI":
        _check(
            cr_ok(instr.crf) and gpr_ok(instr.ra) and instr.imm is not None,
            f"{where}: bad operands",
            errors,
        )
    elif op in ("BT", "BF"):
        _check(cr_ok(instr.crf) and instr.cond is not None, f"{where}: bad operands", errors)
    elif op == "MTCTR":
        _check(gpr_ok(instr.ra), f"{where}: bad operands", errors)
    elif op == "MFCTR":
        _check(gpr_ok(instr.rd), f"{where}: bad operands", errors)


def verify_module(
    module: Module, check_defs: bool = False, check_speculation: bool = False
) -> None:
    """Verify every function in ``module`` (symbols checked against data)."""
    symbols = set(module.data)
    for fn in module.functions.values():
        verify_function(
            fn,
            known_symbols=symbols,
            check_defs=check_defs,
            check_speculation=check_speculation,
        )
        for bb in fn.blocks:
            for instr in bb.instrs:
                if instr.is_call and not instr.attrs.get("library"):
                    if instr.symbol not in module.functions and not _is_known_library(
                        instr.symbol
                    ):
                        raise VerificationError(
                            f"{fn.name}/{bb.label}: call to unknown function "
                            f"{instr.symbol}"
                        )


def _is_known_library(name: str) -> bool:
    from repro.machine.libcalls import LIBRARY_FUNCTIONS

    return name in LIBRARY_FUNCTIONS
