"""Instruction scheduling: local list scheduling, global scheduling with
bookkeeping copies, and enhanced pipeline scheduling (software pipelining).

The paper's scheduling framework compacts regions innermost-outward by
combining global scheduling [Ebcioglu & Nicolau] with enhanced pipeline
scheduling [Ebcioglu; Ebcioglu & Nakatani]. Operations move up along CFG
paths whenever data dependences allow, with *bookkeeping copies* placed
on join edges that are not on the motion path. When motion is allowed
across loop back edges, the same mechanism performs software pipelining:
an operation hoisted from the loop header into the latch (above the
back-edge branch) belongs to the *next* iteration, and the bookkeeping
copy that lands on the loop entry edge is exactly the pipeline prolog.
"""

from repro.scheduling.list_scheduler import LocalScheduling, schedule_block
from repro.scheduling.global_scheduler import GlobalScheduling
from repro.scheduling.modulo import ModuloScheduling, ReservationTable
from repro.scheduling.pipeline import PIPELINERS, VLIWScheduling

__all__ = [
    "GlobalScheduling",
    "LocalScheduling",
    "ModuloScheduling",
    "PIPELINERS",
    "ReservationTable",
    "VLIWScheduling",
    "schedule_block",
]
