"""Global scheduling with bookkeeping copies; software pipelining when
motion across loop back edges is enabled.

The driver repeatedly hoists a *ready* operation of a successor block
into a predecessor's idle issue slots:

- an operation is ready when it can move to the top of its block: no
  data/memory dependence on the instructions before it;
- hoisting above a conditional branch makes the operation *speculative*:
  it must have no side effects and its destinations must be dead on the
  branch's other target (live-range renaming has already split webs so
  this is usually satisfiable). Speculative loads are permitted — the
  paper assumes the zero-page trick ("the first few bytes of page zero
  contain zeros"), and our machine substrate never faults;
- when the source block has several predecessors (a join), the operation
  moves along the chosen edge and *bookkeeping copies* land on every
  other incoming edge, so all paths still execute it exactly once;
- a hoist is accepted only if the predecessor's list-schedule length
  does not grow — the operation fills an otherwise idle slot;
- with ``across_back_edges=True`` the same machinery hoists the loop
  header's ready operations into the latch above the back-edge branch:
  the operation then computes the *next* iteration's value (the state at
  the bottom of the latch equals the state at the top of the header
  along the back edge), and the bookkeeping copy on the loop entry edge
  is the pipeline prolog. This is enhanced pipeline scheduling's code
  motion step; because loop exits stay in place, the schedule keeps the
  variable iteration issue rate the paper highlights. Rotations per
  operation are bounded to keep the kernel finite.

Operations never move into a loop from outside, and pinned instructions
(profiling counters, linkage saves/restores, volatile accesses) never
move at all.
"""

from typing import List, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.analysis.alias import MemoryModel
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import Loop, find_natural_loops, split_edge
from repro.scheduling.list_scheduler import _length_of_order, schedule_block
from repro.transforms.pass_manager import Pass, PassContext

_PINNED = ("save", "restore", "counter", "pinned", "frame")


def _is_pinned(instr: Instr) -> bool:
    return any(instr.attrs.get(a) for a in _PINNED) or bool(
        instr.attrs.get("noncoalesce")
    )


class GlobalScheduling(Pass):
    """Cross-block upward code motion into idle issue slots."""

    name = "global-scheduling"

    def __init__(
        self,
        rounds: int = 6,
        max_hoists_per_block: int = 12,
        across_back_edges: bool = True,
        max_rotations: int = 2,
        candidate_depth: int = 4,
        strict_rotation_gain: bool = False,
        max_speculation_depth: Optional[int] = None,
        allow_bookkeeping: bool = True,
    ):
        self.rounds = rounds
        self.max_hoists_per_block = max_hoists_per_block
        self.across_back_edges = across_back_edges
        self.max_rotations = max_rotations
        self.candidate_depth = candidate_depth
        self.strict_rotation_gain = strict_rotation_gain
        # Constraints for modelling weaker published schedulers: a cap on
        # how many conditional branches one operation may move above, and
        # whether join crossings (bookkeeping copies) are allowed at all.
        self.max_speculation_depth = max_speculation_depth
        self.allow_bookkeeping = allow_bookkeeping

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed = False
        for _ in range(self.rounds):
            if not self._one_round(fn, ctx):
                break
            changed = True
        return changed

    def _one_round(self, fn: Function, ctx: PassContext) -> bool:
        changed = False
        labels = [bb.label for bb in fn.blocks]
        for label in labels:
            if not fn.has_block(label):
                continue
            block = fn.block(label)
            hoists = 0
            while hoists < self.max_hoists_per_block:
                if not self._hoist_into(fn, block, ctx):
                    break
                hoists += 1
                changed = True
        return changed

    # -- candidates -----------------------------------------------------------

    def _ready_candidates(
        self, succ: BasicBlock, memory: MemoryModel
    ) -> List[Instr]:
        """Instructions of ``succ`` movable to the top of the block.

        An instruction at position k is ready when it has no register or
        memory dependence on instructions 0..k-1 and no barrier (call,
        volatile access, pinned code) precedes it.
        """
        out: List[Instr] = []
        defs_before = set()
        uses_before = set()
        mem_before: List[Instr] = []
        for k, instr in enumerate(succ.instrs):
            if k >= self.candidate_depth:
                break
            if instr.is_terminator:
                break
            blocked = (
                instr.is_call
                or _is_pinned(instr)
                or (instr.is_memory and memory.is_volatile_ref(instr))
            )
            if not blocked:
                defs = set(instr.defs())
                uses = set(instr.uses())
                if (
                    not (uses & defs_before)  # RAW
                    and not (defs & defs_before)  # WAW
                    and not (defs & uses_before)  # WAR
                    and not self._memory_conflict(instr, mem_before, memory)
                ):
                    out.append(instr)
            # Barriers stop the scan entirely.
            if instr.is_call or (instr.is_memory and memory.is_volatile_ref(instr)):
                break
            defs_before.update(instr.defs())
            uses_before.update(instr.uses())
            if instr.is_memory:
                mem_before.append(instr)
        return out

    def _memory_conflict(
        self, instr: Instr, mem_before: List[Instr], memory: MemoryModel
    ) -> bool:
        if not instr.is_memory:
            return False
        for other in mem_before:
            if instr.is_store or other.is_store:
                if memory.may_alias(memory.memref(instr), memory.memref(other)):
                    return True
        return False

    # -- one hoist attempt -------------------------------------------------------

    def _hoist_into(self, fn: Function, block: BasicBlock, ctx: PassContext) -> bool:
        memory = MemoryModel(fn, ctx.module)
        liveness = compute_liveness(fn)
        loops = find_natural_loops(fn)
        succs = fn.successors(block)
        if not succs:
            return False
        term = block.terminator
        is_cond = term is not None and term.is_cond_branch

        _, base_len = schedule_block(block.instrs, ctx.model, memory)

        # PDF scheduling heuristic: prefer hoisting from the most
        # frequently executed successor — operations on the frequent path
        # are effectively non-speculative, and "non-speculative operations
        # are preferred over speculative ones".
        if ctx.edge_profile is not None and len(succs) > 1:
            succs = sorted(
                succs,
                key=lambda s: -(ctx.edge_count(fn.name, block.label, s.label) or 0),
            )

        for succ in succs:
            back_edge = succ is block or self._is_back_edge(block, succ, loops)
            if back_edge and not self.across_back_edges:
                continue
            for instr in self._ready_candidates(succ, memory):
                if not self._legal(
                    fn, block, succ, instr, term, is_cond, liveness, loops, back_edge
                ):
                    continue

                # Tentative placement before the terminator; for a
                # self-loop the instruction leaves its old slot too.
                trial = [x for x in block.instrs if x is not instr]
                insert_at = len(trial) - 1 if term is not None else len(trial)
                trial.insert(insert_at, instr)

                other_preds = [p for p in fn.predecessors(succ) if p is not block]
                if other_preds and not self.allow_bookkeeping:
                    continue  # constrained scheduler: no join duplication
                if back_edge:
                    # Rotations are judged on the loop's steady state: two
                    # concatenated kernel copies expose the wrap-around
                    # overlap a rotation is meant to create.
                    loop = self._loop_of_edge(block, succ, loops)
                    acceptable = loop is not None and self._rotation_improves(
                        fn, loop, block, succ, instr, ctx, memory
                    )
                else:
                    # Forward hoists are judged on both outgoing paths:
                    # block-local schedule length misses cross-block unit
                    # contention (an op squeezed "for free" into the tail
                    # of a block still occupies the FXU slot the next
                    # block's first op wanted). The motion path must get
                    # strictly faster; the other path must not get slower.
                    acceptable = self._forward_hoist_improves(
                        fn, block, succ, instr, trial, ctx, memory
                    )
                if not acceptable:
                    continue

                self._apply_hoist(fn, block, succ, instr, other_preds, back_edge, ctx)
                return True
        return False

    def _loop_of_edge(
        self, src: BasicBlock, dst: BasicBlock, loops: List[Loop]
    ) -> Optional[Loop]:
        """The innermost loop whose back edge (or header entry) this is."""
        best: Optional[Loop] = None
        for loop in loops:
            if (src.label, dst.label) in loop.back_edges or (
                dst.label == loop.header and src.label in loop.body
            ):
                if best is None or len(loop.body) < len(best.body):
                    best = loop
        return best

    def _kernel_sequence(
        self, fn: Function, loop: Loop, moved: Optional[Instr], dest_block: Optional[BasicBlock]
    ) -> List[Instr]:
        """The loop body as one instruction sequence in layout order.

        With ``moved`` given, the sequence reflects the candidate rotation:
        ``moved`` is omitted from its current position and re-inserted
        before ``dest_block``'s terminator.
        """
        seq: List[Instr] = []
        for bb in loop.blocks(fn):
            for x in bb.instrs:
                if moved is not None and x is moved:
                    continue
                if (
                    moved is not None
                    and dest_block is not None
                    and bb is dest_block
                    and x is dest_block.terminator
                ):
                    seq.append(moved)
                seq.append(x)
            if moved is not None and bb is dest_block and dest_block.terminator is None:
                seq.append(moved)
        return seq

    def _forward_hoist_improves(
        self,
        fn: Function,
        block: BasicBlock,
        succ: BasicBlock,
        instr: Instr,
        trial: List[Instr],
        ctx: PassContext,
        memory: MemoryModel,
    ) -> bool:
        succ_after = [x for x in succ.instrs if x is not instr]
        path_before = _length_of_order(
            list(block.instrs) + list(succ.instrs), ctx.model, memory
        )
        path_after = _length_of_order(trial + succ_after, ctx.model, memory)
        other_preds = [p for p in fn.predecessors(succ) if p is not block]
        term = block.terminator
        speculative = term is not None and term.is_cond_branch
        if other_preds or speculative:
            # Join crossings duplicate code and speculation occupies the
            # other path's issue slots: require a strict win.
            if path_after >= path_before:
                return False
        else:
            # A neutral non-speculative move up a linear edge is free and
            # can enable a profitable hoist one level higher (upward
            # motion is monotone, so this cannot cycle).
            if path_after > path_before:
                return False
        for other in fn.successors(block):
            if other is succ:
                continue
            other_before = _length_of_order(
                list(block.instrs) + list(other.instrs), ctx.model, memory
            )
            other_after = _length_of_order(
                trial + list(other.instrs), ctx.model, memory
            )
            if other_after > other_before:
                return False
        return True

    def _rotation_improves(
        self,
        fn: Function,
        loop: Loop,
        block: BasicBlock,
        succ: BasicBlock,
        instr: Instr,
        ctx: PassContext,
        memory: MemoryModel,
    ) -> bool:
        before = self._kernel_sequence(fn, loop, None, None)
        after = self._kernel_sequence(fn, loop, instr, block)
        len_before = _length_of_order(before + before, ctx.model, memory)
        len_after = _length_of_order(after + after, ctx.model, memory)
        if self.strict_rotation_gain:
            return len_after < len_before
        return len_after <= len_before

    def _is_back_edge(self, src: BasicBlock, dst: BasicBlock, loops: List[Loop]) -> bool:
        for loop in loops:
            if (src.label, dst.label) in loop.back_edges:
                return True
            if dst.label == loop.header and src.label in loop.body:
                return True
        return False

    def _legal(
        self,
        fn: Function,
        block: BasicBlock,
        succ: BasicBlock,
        instr: Instr,
        term: Optional[Instr],
        is_cond: bool,
        liveness,
        loops: List[Loop],
        back_edge: bool,
    ) -> bool:
        defs = set(instr.defs())
        uses = set(instr.uses())

        # The function entry has an implicit incoming path that can carry
        # no bookkeeping copy: nothing may be hoisted out of it.
        if succ is fn.entry:
            return False

        # Rotation bound for software pipelining.
        if back_edge and instr.attrs.get("rotations", 0) >= self.max_rotations:
            return False

        # Never move an operation into a loop from outside: `instr` lives
        # in `succ`; it would move into every loop containing `block` but
        # not `succ`.
        for loop in loops:
            if loop.contains(block.label) and not loop.contains(succ.label):
                return False

        # The terminator must not interact with the moved op.
        if term is not None:
            if defs & set(term.uses()) or set(term.defs()) & (defs | uses):
                return False

        if is_cond:
            # Speculative motion: no side effects, dests dead on every
            # other path out of the branch.
            if instr.has_side_effects or instr.is_store or instr.is_call:
                return False
            if (
                self.max_speculation_depth is not None
                and instr.attrs.get("spec_depth", 0) >= self.max_speculation_depth
            ):
                return False
            for other in fn.successors(block):
                if other is succ:
                    continue
                live = liveness.live_at_block_entry(other.label)
                if defs & live:
                    return False
        return True

    def _apply_hoist(
        self,
        fn: Function,
        block: BasicBlock,
        succ: BasicBlock,
        instr: Instr,
        other_preds: List[BasicBlock],
        back_edge: bool,
        ctx: PassContext,
    ) -> None:
        # Bookkeeping copies on the other incoming edges. For a hoist
        # across a loop back edge the copy on the entry edge is the
        # software pipeline's prolog.
        for pred in other_preds:
            edge_bb = split_edge(fn, pred, succ)
            edge_bb.insert(0, instr.clone())
            ctx.bump("global-sched.bookkeeping-copies")

        succ.instrs.remove(instr)
        term = block.terminator
        insert_at = len(block.instrs) - 1 if term is not None else len(block.instrs)
        if term is not None and term.is_cond_branch:
            instr.attrs["spec_depth"] = instr.attrs.get("spec_depth", 0) + 1
            # The operation now executes on paths where its block never
            # ran: under the paged memory model a faulting speculative
            # load poisons its destination instead of trapping.
            instr.attrs["speculative"] = True
        if back_edge:
            instr.attrs["rotations"] = instr.attrs.get("rotations", 0) + 1
            ctx.bump("global-sched.pipelined-ops")
        else:
            ctx.bump("global-sched.hoisted-ops")
        block.instrs.insert(insert_at, instr)
