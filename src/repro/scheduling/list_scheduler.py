"""Cycle-by-cycle list scheduling of basic blocks.

Reorders each block's instructions to honour the machine's latencies
(load-use delay, compare-to-branch distance) and unit/width limits —
"scheduling per se improves performance of a superscalar by removing
idle slots in the pipeline". The dependence DAG guarantees semantic
preservation; the block terminator keeps its position at the end.

``schedule_block`` also returns the schedule length in cycles, which the
global scheduler uses as its acceptance criterion for cross-block code
motion ("is there an otherwise idle resource to execute this operation").
"""

from typing import List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.analysis.alias import MemoryModel
from repro.analysis.dependence import build_dag
from repro.machine.model import MachineModel, RS6000
from repro.transforms.pass_manager import Pass, PassContext


def _unit_class(instr: Instr) -> str:
    if instr.is_memory:
        return "mem"
    if instr.is_branch or instr.is_call or instr.is_return:
        return "branch"
    return "int"


def schedule_block(
    instrs: List[Instr],
    model: MachineModel = RS6000,
    memory: Optional[MemoryModel] = None,
    reorder: bool = True,
) -> Tuple[List[Instr], int]:
    """List-schedule ``instrs``; returns (new order, length in cycles).

    With ``reorder=False`` only the schedule length of the *given* order
    is computed (used to evaluate candidate code motions cheaply).
    """
    n = len(instrs)
    if n == 0:
        return [], 0
    dag = build_dag(instrs, memory=memory, model=model)
    heights = dag.critical_heights()

    if not reorder:
        return list(instrs), _length_of_order(instrs, model, memory)

    indegree = [len(dag.preds[i]) for i in range(n)]
    earliest = [0] * n
    scheduled: List[Tuple[int, int, int]] = []  # (cycle, order key, index)
    placed = [False] * n
    ready = [i for i in range(n) if indegree[i] == 0]

    cycle = 0
    width_left = model.issue_width
    units_left = {
        "fxu": model.fxu_units,
        "int": model.int_units,
        "mem": model.mem_units,
        "branch": model.branch_units,
    }
    remaining = n

    def unit_key(klass: str) -> str:
        if klass == "branch":
            return "branch"
        return "fxu" if model.shared_fxu else klass

    while remaining:
        # Issue as much as possible this cycle; ops that become ready via
        # zero-latency edges (e.g. the branch behind its last body op) may
        # still issue in the same cycle, as on the real machine.
        while True:
            candidates = [
                i for i in ready if not placed[i] and earliest[i] <= cycle
            ]
            # Highest critical path first, program order on ties (the
            # classic list-scheduling heuristic), instruction uid last so
            # the key is a total order over instruction identity — never
            # dict/set iteration order, never anything a ``--jobs``
            # parallel compile could reorder. Serial and parallel
            # compiles must stay bit-identical.
            candidates.sort(key=lambda i: (-heights[i], i, dag.instrs[i].uid))
            issued_any = False
            for i in candidates:
                if width_left <= 0:
                    break
                klass = _unit_class(dag.instrs[i])
                key = unit_key(klass)
                if units_left[key] <= 0:
                    continue
                if dag.instrs[i].is_terminator and remaining > 1:
                    # Hold the terminator back until it is the last
                    # unplaced instruction so the emitted order keeps it
                    # at the end of the block.
                    continue
                units_left[key] -= 1
                width_left -= 1
                placed[i] = True
                scheduled.append((cycle, len(scheduled), i))
                remaining -= 1
                issued_any = True
                for j, lat in dag.succs[i].items():
                    earliest[j] = max(earliest[j], cycle + lat)
                    indegree[j] -= 1
                    if indegree[j] == 0:
                        ready.append(j)
            if not issued_any or width_left <= 0 or not remaining:
                break
        cycle += 1
        width_left = model.issue_width
        units_left = {
            "fxu": model.fxu_units,
            "int": model.int_units,
            "mem": model.mem_units,
            "branch": model.branch_units,
        }
        if not issued_any and not any(
            not placed[i] and earliest[i] < cycle for i in ready
        ):
            # Nothing became ready: jump ahead to the next earliest time.
            pending = [earliest[i] for i in ready if not placed[i]]
            if pending:
                cycle = max(cycle, min(pending))

    order = [dag.instrs[i] for _, _, i in sorted(scheduled)]
    length = max(c for c, _, _ in scheduled) + 1
    return order, length


def _length_of_order(
    instrs: List[Instr], model: MachineModel, memory: Optional[MemoryModel]
) -> int:
    """Cycles needed to issue ``instrs`` in the given order, in-order."""
    dag = build_dag(instrs, memory=memory, model=model)
    issue = [0] * len(instrs)
    width_used = {}
    units_used = {}

    def unit_key(instr: Instr) -> str:
        klass = _unit_class(instr)
        if klass == "branch":
            return "branch"
        return "fxu" if model.shared_fxu else klass

    def unit_limit(instr: Instr) -> int:
        klass = _unit_class(instr)
        if klass == "branch":
            return model.branch_units
        if model.shared_fxu:
            return model.fxu_units
        return model.mem_units if klass == "mem" else model.int_units

    floor = 0
    for i, instr in enumerate(instrs):
        earliest = floor
        for p in dag.preds[i]:
            lat = dag.succs[p].get(i, 0)
            earliest = max(earliest, issue[p] + lat)
        key = unit_key(instr)
        limit = unit_limit(instr)
        c = earliest
        while (
            width_used.get(c, 0) >= model.issue_width
            or units_used.get((c, key), 0) >= limit
        ):
            c += 1
        width_used[c] = width_used.get(c, 0) + 1
        units_used[(c, key)] = units_used.get((c, key), 0) + 1
        issue[i] = c
        floor = c  # in-order issue
    return max(issue) + 1 if instrs else 0


class LocalScheduling(Pass):
    """List-schedule every basic block."""

    name = "local-scheduling"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        memory = MemoryModel(fn, ctx.module)
        changed = False
        for bb in fn.blocks:
            if len(bb.instrs) < 2:
                continue
            new_order, _ = schedule_block(bb.instrs, ctx.model, memory)
            if [i.uid for i in new_order] != [i.uid for i in bb.instrs]:
                bb.instrs[:] = new_order
                changed = True
                ctx.bump("local-sched.blocks-reordered")
        return changed
