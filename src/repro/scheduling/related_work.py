"""Published comparison schedulers the paper discusses.

The paper positions its techniques against prior inter-basic-block
schedulers:

- **Bernstein & Rodeh** [SIGPLAN'91]: program-dependence-graph based
  scheduling with "a limited speculative code motion technique that
  allows an instruction to be moved above one conditional branch" —
  no code duplication at joins, no motion across loop iterations.
- The paper's own framework moves operations along arbitrary paths with
  bookkeeping copies and pipelines across back edges.

:class:`BernsteinRodehScheduling` models the former inside our
framework: the same legality machinery with speculation capped at one
conditional branch, join duplication disabled and back-edge motion
disabled. The benchmark ``benchmarks/test_e10_scheduler_comparison.py``
quantifies the headroom the paper's generality buys.
"""

from repro.ir.function import Function
from repro.scheduling.global_scheduler import GlobalScheduling
from repro.scheduling.list_scheduler import LocalScheduling
from repro.transforms.pass_manager import Pass, PassContext


class BernsteinRodehScheduling(Pass):
    """One-branch speculation, no duplication, no pipelining."""

    name = "bernstein-rodeh-scheduling"

    def __init__(self, rounds: int = 6):
        self.local = LocalScheduling()
        self.global_sched = GlobalScheduling(
            rounds=rounds,
            across_back_edges=False,
            max_speculation_depth=1,
            allow_bookkeeping=False,
        )

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed = bool(self.local.run_on_function(fn, ctx))
        changed |= bool(self.global_sched.run_on_function(fn, ctx))
        changed |= bool(self.local.run_on_function(fn, ctx))
        return changed
