"""True modulo scheduling with resource reservation tables.

The legacy software-pipelining path approximates the paper's enhanced
pipeline scheduling by letting :class:`GlobalScheduling` greedily rotate
operations across loop back edges. This module adds the classical modulo
scheduler on top of that machinery:

- **II lower bounds.** The resource-constrained bound *ResMII* comes
  from the :class:`~repro.machine.model.MachineModel` unit pools (the
  shared FXU, the branch unit) and the issue width; the recurrence bound
  *RecMII* comes from loop-carried dependence cycles: the smallest II
  for which no cycle has positive weight under edge weights
  ``latency - II * distance`` (checked with Bellman-Ford longest-path
  relaxation).
- **Reservation tables.** A :class:`ReservationTable` tracks, per kernel
  slot ``cycle % II``, how many operations occupy each functional-unit
  class and how much issue width is left. ``reserve`` refuses to
  oversubscribe a slot; the scheduler backtracks instead.
- **Iterative modulo scheduling.** Rau's IMS: operations are placed in
  priority order (critical height at the candidate II, ties broken on
  instruction ``uid`` so parallel compiles stay bit-identical to
  serial); when no slot in ``[estart, estart + II)`` has a free unit the
  operation is *forced* and conflicting operations are evicted and
  rescheduled. A budget bounds the eviction churn; on exhaustion the II
  is bumped and the search restarts.
- **Optimal backend.** ``optimal_modulo_schedule`` runs a bounded
  exhaustive search over slot assignments starting at MII; the result
  never exceeds the heuristic II (the heuristic schedule itself is the
  fallback candidate), which :class:`ModuloScheduling` asserts.

Materialization reuses the enhanced-pipeline-scheduling rotation
machinery rather than inventing a second code generator: an operation
scheduled in stage *s* of an *S*-stage kernel must execute
``stage(branch) - s`` iterations ahead of the loop-closing branch, which
is exactly that many back-edge rotations. Each rotation's bookkeeping
copy on the loop entry edge is one prologue stage; loop exits stay in
place (the kernel drains naturally, so no explicit epilogue is needed
and the variable iteration issue rate the paper highlights is
preserved), and the existing loop-exit ``LR`` copies keep exit values
correct. Modulo variable expansion reuses
:class:`~repro.transforms.renaming.LiveRangeRenaming`: unrolling already
expanded the kernel, and a post-rotation renaming pass splits any webs
the rotation separated. A per-loop snapshot guard measures the
steady-state II (two concatenated kernel copies minus one) before and
after and rolls the loop back if pipelining did not pay, so the modulo
backend is never worse than the legacy path it starts from.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.alias import MemoryModel
from repro.analysis.dependence import build_dag
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import Loop, find_natural_loops
from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.machine.model import MachineModel, RS6000
from repro.machine.timer import time_trace
from repro.scheduling.global_scheduler import GlobalScheduling
from repro.scheduling.list_scheduler import _unit_class, schedule_block
from repro.transforms.pass_manager import Pass, PassContext
from repro.transforms.renaming import LiveRangeRenaming

__all__ = [
    "KernelDep",
    "ModuloSchedule",
    "ModuloScheduling",
    "ReservationTable",
    "iterative_modulo_schedule",
    "kernel_dependences",
    "modulo_schedule",
    "optimal_modulo_schedule",
    "rec_mii",
    "res_mii",
    "unit_key",
    "unit_limit",
]


# -- functional units ---------------------------------------------------------


def unit_key(instr: Instr, model: MachineModel) -> str:
    """The unit pool ``instr`` draws from (mirrors the list scheduler)."""
    klass = _unit_class(instr)
    if klass == "branch":
        return "branch"
    return "fxu" if model.shared_fxu else klass


def unit_limit(key: str, model: MachineModel) -> int:
    """How many operations of unit class ``key`` may issue per cycle."""
    if key == "branch":
        return model.branch_units
    if key == "fxu":
        return model.fxu_units
    return model.mem_units if key == "mem" else model.int_units


class ReservationTable:
    """Per-slot unit bookkeeping for a kernel of ``ii`` cycles.

    Cycle ``c`` lands in slot ``c % ii``; every slot holds at most
    ``issue_width`` operations overall and at most ``unit_limit(key)``
    operations of each unit class. ``reserve`` raises instead of
    oversubscribing — callers must check :meth:`fits` and backtrack.
    """

    def __init__(self, ii: int, model: MachineModel = RS6000):
        if ii < 1:
            raise ValueError(f"initiation interval must be >= 1, got {ii}")
        self.ii = ii
        self.model = model
        self._width = [0] * ii
        self._units: List[Dict[str, int]] = [dict() for _ in range(ii)]

    def fits(self, cycle: int, key: str) -> bool:
        slot = cycle % self.ii
        if self._width[slot] >= self.model.issue_width:
            return False
        return self._units[slot].get(key, 0) < unit_limit(key, self.model)

    def reserve(self, cycle: int, key: str) -> None:
        if not self.fits(cycle, key):
            raise ValueError(
                f"slot {cycle % self.ii} of II={self.ii} oversubscribed "
                f"for unit {key!r}"
            )
        slot = cycle % self.ii
        self._width[slot] += 1
        self._units[slot][key] = self._units[slot].get(key, 0) + 1

    def release(self, cycle: int, key: str) -> None:
        slot = cycle % self.ii
        if self._units[slot].get(key, 0) <= 0:
            raise ValueError(f"release of empty reservation {key!r}@{slot}")
        self._width[slot] -= 1
        self._units[slot][key] -= 1

    def occupancy(self) -> List[Dict[str, int]]:
        """Per-slot unit usage (a copy; for tests and reporting)."""
        return [dict(units) for units in self._units]

    def oversubscribed(self) -> bool:
        """True if any slot exceeds a unit pool or the issue width."""
        for slot in range(self.ii):
            if self._width[slot] > self.model.issue_width:
                return True
            for key, count in self._units[slot].items():
                if count > unit_limit(key, self.model):
                    return True
        return False


# -- the kernel dependence graph ----------------------------------------------


@dataclass(frozen=True)
class KernelDep:
    """One dependence edge of the kernel graph.

    ``distance`` counts iterations: 0 for intra-iteration edges, 1 for
    loop-carried edges. The constraint is
    ``time[dst] >= time[src] + latency - II * distance``.
    """

    src: int
    dst: int
    latency: int
    distance: int


def kernel_dependences(
    seq: Sequence[Instr],
    memory: Optional[MemoryModel] = None,
    model: MachineModel = RS6000,
) -> List[KernelDep]:
    """Dependences of the linearised kernel, including loop-carried ones.

    Intra-iteration edges come from the ordinary block DAG over ``seq``;
    loop-carried (distance-1) edges are read off a DAG over two
    concatenated kernel copies: an edge from the first copy into the
    second is a dependence that wraps around the back edge. (Distances
    beyond 1 impose strictly weaker constraints and are dropped.)
    """
    n = len(seq)
    edges: List[KernelDep] = []
    dag0 = build_dag(list(seq), memory=memory, model=model)
    for i in range(n):
        for j, lat in dag0.succs[i].items():
            edges.append(KernelDep(i, j, lat, 0))
    dag2 = build_dag(list(seq) + list(seq), memory=memory, model=model)
    for i in range(n):
        for j, lat in dag2.succs[i].items():
            if j >= n:
                edges.append(KernelDep(i, j - n, lat, 1))
    return edges


def res_mii(seq: Sequence[Instr], model: MachineModel = RS6000) -> int:
    """Resource-constrained lower bound on the initiation interval."""
    if not seq:
        return 1
    counts: Dict[str, int] = {}
    for instr in seq:
        key = unit_key(instr, model)
        counts[key] = counts.get(key, 0) + 1
    mii = -(-len(seq) // model.issue_width)  # ceil
    for key, count in counts.items():
        mii = max(mii, -(-count // unit_limit(key, model)))
    return max(1, mii)


def rec_mii(n: int, edges: Sequence[KernelDep]) -> int:
    """Recurrence-constrained lower bound on the initiation interval.

    The smallest II such that no dependence cycle has positive weight
    under ``latency - II * distance``. Feasibility is monotone in II
    (every cycle crosses the back edge at least once), so binary search
    over [1, sum of latencies] with Bellman-Ford positive-cycle
    detection finds it.
    """
    if n == 0:
        return 1
    carried = [e for e in edges if e.distance > 0]
    if not carried:
        return 1

    def has_positive_cycle(ii: int) -> bool:
        dist = [0] * n
        for _ in range(n):
            changed = False
            for e in edges:
                weight = e.latency - ii * e.distance
                if dist[e.src] + weight > dist[e.dst]:
                    dist[e.dst] = dist[e.src] + weight
                    changed = True
            if not changed:
                return False
        return True  # still relaxing after n rounds

    lo, hi = 1, max(1, sum(e.latency for e in edges))
    while lo < hi:
        mid = (lo + hi) // 2
        if has_positive_cycle(mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


# -- the schedule -------------------------------------------------------------


@dataclass
class ModuloSchedule:
    """A resource- and dependence-feasible modulo schedule of a kernel."""

    ii: int
    times: List[int]
    table: ReservationTable
    optimal: bool = False

    def stage(self, i: int) -> int:
        return self.times[i] // self.ii

    @property
    def stages(self) -> int:
        return max(self.stage(i) for i in range(len(self.times))) + 1

    def rotations(self, anchor: int) -> Dict[int, int]:
        """Back-edge rotations per node, relative to ``anchor``.

        An operation in stage *s* executes ``stage(anchor) - s``
        iterations ahead of the anchor (the loop-closing branch); ops at
        or past the anchor's stage keep rotation 0.
        """
        base = self.stage(anchor)
        return {
            i: max(0, base - self.stage(i)) for i in range(len(self.times))
        }

    def verify(self, edges: Sequence[KernelDep]) -> bool:
        """Every dependence honoured and no slot oversubscribed."""
        for e in edges:
            if self.times[e.dst] < self.times[e.src] + e.latency - self.ii * e.distance:
                return False
        return not self.table.oversubscribed()


def _priority_heights(
    n: int, edges: Sequence[KernelDep], ii: int
) -> List[int]:
    """Critical height of each node at the candidate II.

    Longest-path-to-sink under ``latency - II * distance`` weights,
    computed by bounded relaxation (converges when II >= RecMII).
    """
    heights = [0] * n
    for _ in range(n + 1):
        changed = False
        for e in edges:
            cand = heights[e.dst] + e.latency - ii * e.distance
            if cand > heights[e.src]:
                heights[e.src] = cand
                changed = True
        if not changed:
            break
    return heights


def iterative_modulo_schedule(
    seq: Sequence[Instr],
    edges: Sequence[KernelDep],
    model: MachineModel,
    ii: int,
    budget_ratio: int = 8,
) -> Optional[ModuloSchedule]:
    """Rau's iterative modulo scheduling at a fixed II.

    Returns ``None`` when the eviction budget runs out (the caller bumps
    the II and retries). Deterministic: the worklist is ordered on
    (height desc, uid asc) and evictions pick the lowest-priority
    conflictor, so two runs — serial or under ``--jobs`` — produce the
    same schedule.
    """
    n = len(seq)
    if n == 0:
        return ModuloSchedule(ii, [], ReservationTable(ii, model))
    heights = _priority_heights(n, edges, ii)
    in_edges: List[List[KernelDep]] = [[] for _ in range(n)]
    out_edges: List[List[KernelDep]] = [[] for _ in range(n)]
    for e in edges:
        out_edges[e.src].append(e)
        in_edges[e.dst].append(e)

    table = ReservationTable(ii, model)
    times: List[Optional[int]] = [None] * n
    keys = [unit_key(instr, model) for instr in seq]
    last_forced = [-1] * n
    unscheduled: Set[int] = set(range(n))
    budget = max(64, budget_ratio * n)

    def evict(j: int) -> None:
        table.release(times[j], keys[j])
        times[j] = None
        unscheduled.add(j)

    while unscheduled:
        if budget <= 0:
            return None
        budget -= 1
        i = min(unscheduled, key=lambda k: (-heights[k], seq[k].uid))
        estart = 0
        for e in in_edges[i]:
            if times[e.src] is not None:
                estart = max(
                    estart, times[e.src] + e.latency - ii * e.distance
                )
        slot = None
        for c in range(estart, estart + ii):
            if table.fits(c, keys[i]):
                slot = c
                break
        if slot is None:
            slot = max(estart, last_forced[i] + 1)
        last_forced[i] = slot
        # Evict (lowest height first) until the forced slot fits: ops of
        # the same unit class when the unit pool is the binding limit,
        # any slot occupant when the issue width is.
        while not table.fits(slot, keys[i]):
            mates = [
                j
                for j in range(n)
                if times[j] is not None and times[j] % ii == slot % ii
            ]
            unit_bound = table._units[slot % ii].get(keys[i], 0) >= unit_limit(
                keys[i], model
            )
            pool = [j for j in mates if keys[j] == keys[i]] if unit_bound else mates
            if not pool:
                return None  # zero-capacity unit pool: no schedule at any II
            evict(min(pool, key=lambda j: (heights[j], seq[j].uid)))
        table.reserve(slot, keys[i])
        times[i] = slot
        unscheduled.discard(i)
        # Displace neighbours whose constraints the placement violated.
        for e in out_edges[i]:
            j = e.dst
            if j != i and times[j] is not None:
                if times[j] < slot + e.latency - ii * e.distance:
                    evict(j)
        for e in in_edges[i]:
            j = e.src
            if j != i and times[j] is not None:
                if slot < times[j] + e.latency - ii * e.distance:
                    evict(j)
    return ModuloSchedule(ii, [t for t in times], table)


def modulo_schedule(
    seq: Sequence[Instr],
    edges: Sequence[KernelDep],
    model: MachineModel = RS6000,
    mii: Optional[int] = None,
    ii_window: int = 8,
) -> Optional[ModuloSchedule]:
    """The heuristic schedule: IMS at MII, MII+1, ... until one fits."""
    if mii is None:
        mii = max(res_mii(seq, model), rec_mii(len(seq), edges))
    for ii in range(mii, mii + ii_window):
        sched = iterative_modulo_schedule(seq, edges, model, ii)
        if sched is not None:
            return sched
    return None


def optimal_modulo_schedule(
    seq: Sequence[Instr],
    edges: Sequence[KernelDep],
    model: MachineModel = RS6000,
    mii: Optional[int] = None,
    ii_limit: Optional[int] = None,
    max_nodes: int = 16,
    step_budget: int = 200_000,
) -> Optional[ModuloSchedule]:
    """Bounded exhaustive search over slot assignments at low II.

    Nodes are assigned absolute times in (intra-iteration topological,
    uid) order; each node explores the II consecutive start cycles from
    its earliest feasible time — every distinct kernel slot relative to
    the partial schedule. The first feasible II in [MII, ii_limit] wins.
    ``None`` when the kernel is too large or the budget runs out; the
    caller then keeps the heuristic schedule, so the optimal backend
    never returns a worse II than the heuristic one.
    """
    n = len(seq)
    if n == 0 or n > max_nodes:
        return None
    if mii is None:
        mii = max(res_mii(seq, model), rec_mii(len(seq), edges))
    if ii_limit is None:
        ii_limit = mii + 8
    keys = [unit_key(instr, model) for instr in seq]
    # Distance-0 edges always point forward in the linearised kernel, so
    # index order is a topological order (and deterministic).
    order = list(range(n))
    by_node: List[List[KernelDep]] = [[] for _ in range(n)]
    for e in edges:
        by_node[e.src].append(e)
        by_node[e.dst].append(e)

    steps = [0]

    def search(ii: int) -> Optional[List[int]]:
        times: List[Optional[int]] = [None] * n
        table = ReservationTable(ii, model)

        def violated(i: int, t: int) -> bool:
            for e in by_node[i]:
                src_t = t if e.src == i else times[e.src]
                dst_t = t if e.dst == i else times[e.dst]
                if e.src == i and e.dst == i:
                    src_t = dst_t = t
                if src_t is None or dst_t is None:
                    continue
                if dst_t < src_t + e.latency - ii * e.distance:
                    return True
            return False

        def assign(pos: int) -> bool:
            if steps[0] >= step_budget:
                return False
            if pos == n:
                return True
            i = order[pos]
            estart = 0
            for e in by_node[i]:
                if e.dst == i and e.src != i and times[e.src] is not None:
                    estart = max(
                        estart, times[e.src] + e.latency - ii * e.distance
                    )
            for t in range(estart, estart + ii):
                steps[0] += 1
                if not table.fits(t, keys[i]):
                    continue
                if violated(i, t):
                    continue
                times[i] = t
                table.reserve(t, keys[i])
                if assign(pos + 1):
                    return True
                table.release(t, keys[i])
                times[i] = None
            return False

        if assign(0):
            return [t for t in times]
        return None

    for ii in range(mii, ii_limit + 1):
        found = search(ii)
        if found is not None:
            table = ReservationTable(ii, model)
            for i, t in enumerate(found):
                table.reserve(t, keys[i])
            return ModuloSchedule(ii, found, table, optimal=True)
        if steps[0] >= step_budget:
            return None
    return None


# -- the pass -----------------------------------------------------------------


class ModuloScheduling(Pass):
    """Pipeline innermost loops to their modulo-scheduled II.

    Runs after the legacy global scheduler: computes the modulo schedule
    of each innermost loop kernel, derives per-operation rotation counts
    from the schedule's stages, and applies them through the
    enhanced-pipeline-scheduling rotation machinery (bookkeeping copies
    on entry edges become the prologue; exits stay in place). A per-loop
    snapshot rolls back any loop whose steady-state II did not improve.
    """

    name = "modulo-scheduling"

    def __init__(
        self,
        optimal: bool = False,
        max_kernel: int = 48,
        ii_window: int = 8,
        candidate_depth: int = 32,
        max_rounds: int = 64,
        trip_weight: int = 16,
    ):
        self.optimal = optimal
        self.max_kernel = max_kernel
        self.ii_window = ii_window
        self.candidate_depth = candidate_depth
        self.max_rounds = max_rounds
        self.trip_weight = trip_weight

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        loops = find_natural_loops(fn)
        parents = {id(lp.parent) for lp in loops if lp.parent is not None}
        headers = [lp.header for lp in loops if id(lp) not in parents]
        headers.sort(key=lambda label: fn.block_index(fn.block(label)))
        changed = False
        for header in headers:
            changed |= self._pipeline_loop(fn, header, ctx)
        return changed

    # -- one loop -------------------------------------------------------------

    def _find_loop(self, fn: Function, header: str) -> Optional[Loop]:
        for lp in find_natural_loops(fn):
            if lp.header == header:
                return lp
        return None

    def _kernel(self, fn: Function, loop: Loop) -> List[Instr]:
        return [x for bb in loop.blocks(fn) for x in bb.instrs]

    def _exit_branch_uids(self, fn: Function, loop: Loop) -> Set[int]:
        """Terminators whose taken path leaves the loop.

        In the steady state these branches are untaken (correctly
        predicted, hence free on the machine); only branches that stay
        in the kernel pay the compare-to-branch distance.
        """
        out: Set[int] = set()
        for bb in loop.blocks(fn):
            term = bb.terminator
            if term is not None and term.is_cond_branch:
                if term.target not in loop.body:
                    out.add(term.uid)
        return out

    def _steady_ii(
        self,
        seq: List[Instr],
        model: MachineModel,
        memory: MemoryModel,
        exit_uids: Set[int],
    ) -> int:
        """Steady-state cycles per iteration of the kernel as laid out.

        Measured with the real trace timer on a synthetic steady-state
        trace — loop-exit branches untaken (correctly predicted, free),
        every other conditional branch taken — so every machine rule
        (compare-to-branch distance, branch folding, the unconditional-
        branch issue window, in-order floors) is priced exactly as the
        benchmarks will price it. Two concatenated kernel copies expose
        the wrap-around overlap; their cycles minus one copy's is the
        initiation interval actually achieved.
        """

        def cycles(s: List[Instr]) -> int:
            trace = [
                (x, x.is_cond_branch and x.uid not in exit_uids) for x in s
            ]
            return time_trace(trace, model).cycles

        one = cycles(list(seq))
        two = cycles(list(seq) + list(seq))
        return max(1, two - one)

    def _anchor_index(self, fn: Function, loop: Loop, seq: List[Instr]) -> Optional[int]:
        """Index in ``seq`` of the loop-closing branch (the latch's)."""
        tails = sorted(
            (tail for tail, _ in loop.back_edges),
            key=lambda label: fn.block_index(fn.block(label)),
        )
        if not tails:
            return None
        term = fn.block(tails[-1]).terminator
        if term is None:
            return None
        for i, instr in enumerate(seq):
            if instr is term:
                return i
        return None

    def _pipeline_loop(self, fn: Function, header: str, ctx: PassContext) -> bool:
        loop = self._find_loop(fn, header)
        if loop is None:
            return False
        memory = MemoryModel(fn, ctx.module)
        seq = self._kernel(fn, loop)
        if len(seq) < 2 or len(seq) > self.max_kernel:
            return False
        anchor = self._anchor_index(fn, loop, seq)
        if anchor is None:
            return False

        edges = kernel_dependences(seq, memory, ctx.model)
        mii = max(res_mii(seq, ctx.model), rec_mii(len(seq), edges))
        exit_uids = self._exit_branch_uids(fn, loop)
        before = self._steady_ii(seq, ctx.model, memory, exit_uids)
        before_outside = fn.instruction_count() - len(seq)

        sched = modulo_schedule(
            seq, edges, ctx.model, mii=mii, ii_window=self.ii_window
        )
        if sched is None:
            return False
        if self.optimal:
            opt = optimal_modulo_schedule(
                seq, edges, ctx.model, mii=mii, ii_limit=sched.ii
            )
            if opt is not None:
                assert opt.ii <= sched.ii, (
                    f"optimal II {opt.ii} exceeds heuristic II {sched.ii}"
                )
                if opt.ii < sched.ii or opt.stages > sched.stages:
                    sched = opt
                ctx.bump("modulo-sched.optimal-schedules")

        plan = self._placement_plan(fn, loop, seq, sched, anchor)
        if not plan:
            ctx.bump("modulo-sched.loops-already-at-mii")
            return False

        # Two materialization strategies compete: the full placement
        # plan (slot positions + rotations from the modulo schedule) and
        # window-filling alone (rebalance the unconditional-branch
        # windows without disturbing the rest of the legacy schedule).
        # Each is measured with the steady-state estimator; the best
        # strictly-improving variant wins, else the loop is rolled back.
        snapshot = fn.clone()
        best: Optional[Tuple[int, int]] = None
        best_clone = None
        for strategy in ("plan", "fill"):
            moved = (
                self._apply_schedule(fn, header, plan, ctx)
                if strategy == "plan"
                else False
            )
            moved |= self._fill_uncond_windows(fn, header, ctx)
            measured = self._finish_and_measure(fn, header, ctx) if moved else None
            if measured is not None:
                after, after_outside = measured
                if best is None or (after, after_outside) < best:
                    best = (after, after_outside)
                    best_clone = fn.clone()
            # restore_from adopts the snapshot's blocks by reference, so
            # hand it a private clone: the next strategy mutates ``fn``
            # and must not corrupt the snapshot through the alias.
            fn.restore_from(snapshot.clone())
        if best is None:
            return False
        after, after_outside = best
        # Accept only on a strict steady-state win whose trip-weighted
        # cost improves: the steady II amortised over ``trip_weight``
        # iterations plus the per-entry cost of everything outside the
        # kernel (the prologue copies a rotation leaves on the entry
        # edge). Low-trip loops must not pay an ever-growing prologue
        # for a kernel they barely spin, and a reordering that does not
        # shrink the II is not worth disturbing the legacy schedule.
        cost_before = self.trip_weight * before + before_outside
        cost_after = self.trip_weight * after + after_outside
        if after >= before or cost_after > cost_before:
            ctx.bump("modulo-sched.rollbacks")
            return False
        fn.restore_from(best_clone)
        ctx.bump("modulo-sched.loops-pipelined")
        ctx.bump("modulo-sched.cycles-saved", before - after)
        return True

    def _finish_and_measure(
        self, fn: Function, header: str, ctx: PassContext
    ) -> Optional[Tuple[int, int]]:
        """Run MVE + local rescheduling, then measure the steady state.

        Returns ``(steady II, instructions outside the kernel)`` for the
        loop as now materialised, or ``None`` if the loop dissolved.
        """
        # Modulo variable expansion: renaming splits any webs the
        # rotations separated (unrolling expanded the kernel already).
        LiveRangeRenaming(insert_exit_copies=False).run_on_function(fn, ctx)
        loop = self._find_loop(fn, header)
        if loop is None:
            return None
        memory = MemoryModel(fn, ctx.module)
        for bb in loop.blocks(fn):
            if len(bb.instrs) >= 2:
                new_order, _ = schedule_block(bb.instrs, ctx.model, memory)
                bb.instrs[:] = new_order
        seq_after = self._kernel(fn, loop)
        after = self._steady_ii(
            seq_after, ctx.model, memory, self._exit_branch_uids(fn, loop)
        )
        return after, fn.instruction_count() - len(seq_after)

    # -- turning the schedule into code motion --------------------------------

    def _placement_plan(
        self,
        fn: Function,
        loop: Loop,
        seq: List[Instr],
        sched: ModuloSchedule,
        anchor: int,
    ) -> Dict[int, Tuple[int, int]]:
        """Per-uid ``(extra rotations, destination block index)`` targets.

        The schedule assigns every operation a kernel slot
        ``(time - time(anchor) - 1) mod II`` — its issue position within
        one steady-state window, with the loop-closing branch last — and
        a stage. An operation in an earlier stage than the anchor must
        rotate across the back edge once per stage of separation; its
        destination block is the first kernel block whose (unmoving)
        branch is scheduled at or after the operation's slot. Only
        upward motion is planned: an operation already at or above its
        slot stays put.
        """
        ii = sched.ii
        blocks = loop.blocks(fn)
        index_of = {bb.label: bi for bi, bb in enumerate(blocks)}

        def pos(i: int) -> int:
            return (sched.times[i] - sched.times[anchor] - 1) % ii

        boundaries: List[Tuple[int, int]] = []
        for bi, bb in enumerate(blocks):
            term = bb.terminator
            if term is None:
                continue
            for i, instr in enumerate(seq):
                if instr is term:
                    boundaries.append((bi, pos(i)))
                    break

        block_of: Dict[int, int] = {}
        for bb in blocks:
            for instr in bb.instrs:
                block_of[instr.uid] = index_of[bb.label]

        anchor_stage = sched.stage(anchor)
        plan: Dict[int, Tuple[int, int]] = {}
        for i, instr in enumerate(seq):
            if instr.is_terminator:
                continue
            extra = max(0, anchor_stage - sched.stage(i))
            dest = len(blocks) - 1
            for bi, bpos in boundaries:
                if bpos >= pos(i):
                    dest = bi
                    break
            current = block_of.get(instr.uid, 0)
            if extra == 0 and dest >= current:
                continue
            plan[instr.uid] = (extra, dest)
        return plan

    def _apply_schedule(
        self,
        fn: Function,
        header: str,
        plan: Dict[int, Tuple[int, int]],
        ctx: PassContext,
    ) -> bool:
        """Hoist operations toward their planned kernel positions.

        A fresh :class:`GlobalScheduling` instance supplies the legality
        check, the ready-candidate scan and the hoist applicator (with
        its bookkeeping-copy prologue); this driver replaces the greedy
        acceptance test with the modulo schedule's placement plan. An
        operation still owing rotations climbs to the header and crosses
        the back edge into the latch; one at its rotation count climbs
        only while it sits below its destination block.
        """
        start_rot = {
            instr.uid: instr.attrs.get("rotations", 0)
            for bb in fn.blocks
            for instr in bb.instrs
            if instr.uid in plan
        }
        gs = GlobalScheduling(
            across_back_edges=True,
            max_rotations=max(
                start_rot.get(uid, 0) + extra for uid, (extra, _) in plan.items()
            ) + 1,
            candidate_depth=self.candidate_depth,
        )
        changed = False
        for _ in range(self.max_rounds):
            if self._one_placement_step(fn, header, plan, start_rot, gs, ctx):
                changed = True
            else:
                break
        return changed

    def _one_placement_step(
        self,
        fn: Function,
        header: str,
        plan: Dict[int, Tuple[int, int]],
        start_rot: Dict[int, int],
        gs: GlobalScheduling,
        ctx: PassContext,
    ) -> bool:
        loop = self._find_loop(fn, header)
        if loop is None:
            return False
        memory = MemoryModel(fn, ctx.module)
        liveness = compute_liveness(fn)
        loops = find_natural_loops(fn)
        blocks = loop.blocks(fn)
        tails = sorted(
            (tail for tail, _ in loop.back_edges),
            key=lambda label: fn.block_index(fn.block(label)),
        )
        if not tails:
            return False
        latch = fn.block(tails[-1])
        for bi, bb in enumerate(blocks):
            if bb.label == header:
                pred, back_edge = latch, True
            else:
                in_preds = [
                    p
                    for p in fn.predecessors(bb)
                    if p.label in loop.body and index_of_block(blocks, p) < bi
                ]
                if not in_preds:
                    continue
                pred = max(in_preds, key=lambda p: index_of_block(blocks, p))
                back_edge = False
            term = pred.terminator
            is_cond = term is not None and term.is_cond_branch
            for instr in gs._ready_candidates(bb, memory):
                target = plan.get(instr.uid)
                if target is None:
                    continue
                extra, dest = target
                done_rot = instr.attrs.get("rotations", 0) - start_rot.get(
                    instr.uid, 0
                )
                if bb.label == header:
                    if done_rot >= extra:
                        continue  # rotation complete; header is home
                else:
                    if done_rot >= extra and bi <= dest:
                        continue  # in place
                if not gs._legal(
                    fn, pred, bb, instr, term, is_cond, liveness, loops,
                    back_edge,
                ):
                    continue
                other_preds = [p for p in fn.predecessors(bb) if p is not pred]
                gs._apply_hoist(fn, pred, bb, instr, other_preds, back_edge, ctx)
                ctx.bump(
                    "modulo-sched.rotations"
                    if back_edge
                    else "modulo-sched.placements"
                )
                return True
        return False


    # -- filling unconditional-branch windows ---------------------------------

    def _fill_uncond_windows(self, fn: Function, header: str, ctx: PassContext) -> bool:
        """Pull operations into blocks whose ``B`` stalls the issue unit.

        The machine stalls an unconditional branch that issues within
        ``cond_uncond_window`` non-branch operations of a conditional
        branch — a per-iteration cost the reservation-table model cannot
        see. This driver rebalances the kernel: a block ending in ``B``
        with too few non-branch operations pulls ready operations up the
        successor chain (crossing the back edge when the deficit block
        is the latch, which is one more pipeline rotation). The caller's
        snapshot guard arbitrates whether the rebalance actually paid.
        """
        loop = self._find_loop(fn, header)
        if loop is None:
            return False
        max_rot = max(
            (x.attrs.get("rotations", 0)
             for bb in loop.blocks(fn) for x in bb.instrs),
            default=0,
        )
        gs = GlobalScheduling(
            across_back_edges=True,
            max_rotations=max_rot + 2,
            candidate_depth=self.candidate_depth,
        )
        changed = False
        for _ in range(self.max_rounds):
            if self._one_window_step(fn, header, gs, ctx):
                changed = True
            else:
                break
        return changed

    def _one_window_step(
        self, fn: Function, header: str, gs: GlobalScheduling, ctx: PassContext
    ) -> bool:
        loop = self._find_loop(fn, header)
        if loop is None:
            return False
        memory = MemoryModel(fn, ctx.module)
        liveness = compute_liveness(fn)
        loops = find_natural_loops(fn)
        window = ctx.model.cond_uncond_window
        for bb in loop.blocks(fn):
            term = bb.terminator
            if term is None or term.opcode != "B":
                continue
            filler = sum(
                1 for x in bb.instrs if unit_key(x, ctx.model) != "branch"
            )
            if filler >= window:
                continue
            if self._pull_into(
                fn, loop, header, bb, gs, memory, liveness, loops, ctx
            ):
                return True
        return False

    def _pull_into(
        self, fn, loop, header, start, gs, memory, liveness, loops, ctx
    ) -> bool:
        """Hoist one ready non-branch op into ``start`` from down the
        chain of in-loop successors (nearest source first; a pull from
        the header across the back edge is a rotation)."""
        pred = start
        for _ in range(len(loop.body)):
            term = pred.terminator
            if term is None:
                return False
            if term.opcode == "B":
                succ_label = term.target
            else:
                inside = [
                    s.label
                    for s in fn.successors(pred)
                    if s.label in loop.body
                ]
                if not inside:
                    return False
                succ_label = inside[-1]
            if succ_label not in loop.body:
                return False
            back_edge = succ_label == header and pred.label in {
                tail for tail, _ in loop.back_edges
            }
            succ = fn.block(succ_label)
            is_cond = term.is_cond_branch
            for instr in gs._ready_candidates(succ, memory):
                if unit_key(instr, ctx.model) == "branch":
                    continue
                if not gs._legal(
                    fn, pred, succ, instr, term, is_cond, liveness, loops,
                    back_edge,
                ):
                    continue
                other_preds = [
                    p for p in fn.predecessors(succ) if p is not pred
                ]
                gs._apply_hoist(fn, pred, succ, instr, other_preds, back_edge, ctx)
                ctx.bump("modulo-sched.window-fills")
                return True
            if back_edge:
                return False  # one rotation per pull; stop past the header
            pred = succ
        return False


def index_of_block(blocks: List, block) -> int:
    """Index of ``block`` in the kernel's layout-ordered block list."""
    for i, bb in enumerate(blocks):
        if bb is block:
            return i
    return -1
