"""The combined VLIW scheduling stage.

"The regions of the program are compacted through the combination of
global scheduling and enhanced pipeline scheduling, starting from the
innermost regions (loops) and ending with the outermost region (the
whole procedure). ... The loops are unrolled prior to scheduling and
live range renaming is performed, to increase scheduling opportunities."

This composite pass runs, in order: loop unrolling, loop-exit copies +
live-range renaming, local list scheduling, global scheduling (with
pipelining across back edges), and a final local scheduling cleanup.
"""

from repro.ir.function import Function
from repro.scheduling.global_scheduler import GlobalScheduling
from repro.scheduling.list_scheduler import LocalScheduling
from repro.transforms.pass_manager import Pass, PassContext
from repro.transforms.renaming import LiveRangeRenaming
from repro.transforms.unroll import LoopUnroll


class VLIWScheduling(Pass):
    """Unroll + rename + global schedule + pipeline + local schedule."""

    name = "vliw-scheduling"

    def __init__(
        self,
        unroll_factor: int = 2,
        software_pipelining: bool = True,
        rounds: int = 6,
    ):
        self.unroll = LoopUnroll(factor=unroll_factor) if unroll_factor >= 2 else None
        self.rename = LiveRangeRenaming()
        self.local = LocalScheduling()
        self.global_sched = GlobalScheduling(
            rounds=rounds, across_back_edges=software_pipelining
        )

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed = False
        if self.unroll is not None:
            changed |= bool(self.unroll.run_on_function(fn, ctx))
        changed |= bool(self.rename.run_on_function(fn, ctx))
        changed |= bool(self.local.run_on_function(fn, ctx))
        changed |= bool(self.global_sched.run_on_function(fn, ctx))
        changed |= bool(self.local.run_on_function(fn, ctx))
        return changed
