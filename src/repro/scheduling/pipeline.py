"""The combined VLIW scheduling stage.

"The regions of the program are compacted through the combination of
global scheduling and enhanced pipeline scheduling, starting from the
innermost regions (loops) and ending with the outermost region (the
whole procedure). ... The loops are unrolled prior to scheduling and
live range renaming is performed, to increase scheduling opportunities."

This composite pass runs, in order: loop unrolling, loop-exit copies +
live-range renaming, local list scheduling, global scheduling (with
pipelining across back edges), and a final local scheduling cleanup.

The ``pipeliner`` knob selects the software-pipelining backend:

- ``"swp"`` — the legacy path: greedy rotations inside
  :class:`~repro.scheduling.global_scheduler.GlobalScheduling`;
- ``"modulo"`` — the legacy path followed by
  :class:`~repro.scheduling.modulo.ModuloScheduling`, which drives
  further rotations from a true modulo schedule (ResMII/RecMII,
  reservation tables, iterative modulo scheduling);
- ``"modulo-opt"`` — same, with the bounded exhaustive slot search that
  asserts ``II_opt <= II_heuristic``.
"""

from repro.ir.function import Function
from repro.perf.fingerprint import fingerprint_function
from repro.scheduling.global_scheduler import GlobalScheduling
from repro.scheduling.list_scheduler import LocalScheduling
from repro.scheduling.modulo import ModuloScheduling
from repro.transforms.pass_manager import Pass, PassContext
from repro.transforms.renaming import LiveRangeRenaming
from repro.transforms.unroll import LoopUnroll

#: The selectable software-pipelining backends.
PIPELINERS = ("swp", "modulo", "modulo-opt")


class VLIWScheduling(Pass):
    """Unroll + rename + global schedule + pipeline + local schedule."""

    name = "vliw-scheduling"

    def __init__(
        self,
        unroll_factor: int = 2,
        software_pipelining: bool = True,
        rounds: int = 6,
        pipeliner: str = "swp",
    ):
        if pipeliner not in PIPELINERS:
            raise ValueError(
                f"unknown pipeliner {pipeliner!r} (want one of {PIPELINERS})"
            )
        self.pipeliner = pipeliner
        self.unroll = LoopUnroll(factor=unroll_factor) if unroll_factor >= 2 else None
        self.rename = LiveRangeRenaming()
        self.local = LocalScheduling()
        self.global_sched = GlobalScheduling(
            rounds=rounds, across_back_edges=software_pipelining
        )
        self.modulo = None
        if software_pipelining and pipeliner != "swp":
            self.modulo = ModuloScheduling(optimal=(pipeliner == "modulo-opt"))

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        # ``changed`` is judged on content, not on sub-pass reports: a
        # sub-pass may mutate and a later one revert (the local scheduler
        # undoing a motion, say), and a stale True here would make the
        # pass manager re-verify — and the guarded manager re-validate —
        # functions that did not actually change.
        before = fingerprint_function(fn)
        if self.unroll is not None:
            self.unroll.run_on_function(fn, ctx)
        self.rename.run_on_function(fn, ctx)
        self.local.run_on_function(fn, ctx)
        self.global_sched.run_on_function(fn, ctx)
        if self.modulo is not None:
            self.modulo.run_on_function(fn, ctx)
        self.local.run_on_function(fn, ctx)
        return fingerprint_function(fn) != before
