"""Delta-debugging reducer: shrink a failing module, keep the failure.

Given a module and a predicate ("does this candidate still exhibit the
failure signature?"), the reducer repeatedly tries structural
simplifications and keeps every candidate the predicate accepts:

1. **Drop functions** — a candidate that still calls a dropped function
   fails verification and is rejected by the predicate wrapper, so no
   call-graph bookkeeping is needed.
2. **Drop blocks** (greedy ddmin over shrinking chunk sizes); branches
   targeting a dropped block are deleted with it, so control falls
   through — any candidate that still reproduces is valid.
3. **Drop instructions** within each block (ddmin, halves down to
   singles, terminators last).
4. **Simplify operands** — ALU ops become copies, loads become ``LI 0``,
   immediates and displacements become 0.
5. **Re-straighten** — run the Straighten cleanup to merge what the
   deletions left behind.

Rounds repeat to a fixpoint. The predicate is always wrapped so that a
candidate must parse-and-verify cleanly before the signature test runs:
the output of reduction is a *valid* program, printable via
:func:`~repro.ir.printer.format_module` and parseable right back.
"""

from typing import Callable, List, Optional, Tuple

from repro.ir.instructions import ALU_OPS, ALU_RI_OPS, Instr
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.transforms.pass_manager import PassContext
from repro.transforms.straighten import Straighten

Predicate = Callable[[Module], bool]


def _is_valid(module: Module) -> bool:
    try:
        verify_module(module)
        return True
    except Exception:
        return False


def _guarded(predicate: Predicate) -> Predicate:
    def check(candidate: Module) -> bool:
        if not _is_valid(candidate):
            return False
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    return check


def instruction_count(module: Module) -> int:
    return sum(
        len(block.instrs)
        for fn in module.functions.values()
        for block in fn.blocks
    )


# -- candidate builders -----------------------------------------------------


def _drop_function(module: Module, name: str) -> Module:
    candidate = module.clone()
    del candidate.functions[name]
    return candidate


def _drop_blocks(module: Module, fn_name: str, indices: List[int]) -> Module:
    """Remove blocks and every branch that targets them."""
    candidate = module.clone()
    fn = candidate.functions[fn_name]
    doomed = {fn.blocks[i].label for i in indices}
    kept = [b for i, b in enumerate(fn.blocks) if i not in set(indices)]
    for block in kept:
        block.instrs = [
            ins
            for ins in block.instrs
            if not (ins.target is not None and ins.target in doomed)
        ]
    fn.blocks = kept
    return candidate


def _drop_instrs(
    module: Module, fn_name: str, block_idx: int, indices: List[int]
) -> Module:
    candidate = module.clone()
    block = candidate.functions[fn_name].blocks[block_idx]
    drop = set(indices)
    block.instrs = [ins for i, ins in enumerate(block.instrs) if i not in drop]
    return candidate


def _simplify_instr(ins: Instr) -> Optional[Instr]:
    """A strictly simpler replacement for ``ins``, or None."""
    op = ins.opcode
    if op in ALU_OPS and op != "DIV":
        return Instr("LR", rd=ins.rd, ra=ins.ra, attrs=dict(ins.attrs))
    if op == "DIV":
        return Instr("LI", rd=ins.rd, imm=0, attrs=dict(ins.attrs))
    if op in ALU_RI_OPS and ins.imm != 0:
        return Instr(op, rd=ins.rd, ra=ins.ra, imm=0, attrs=dict(ins.attrs))
    if op == "L":
        return Instr("LI", rd=ins.rd, imm=0, attrs=dict(ins.attrs))
    if op in ("L", "LU", "ST", "STU") and ins.disp:
        clone = ins.clone()
        clone.disp = 0
        return clone
    if op == "LI" and ins.imm != 0:
        return Instr("LI", rd=ins.rd, imm=0, attrs=dict(ins.attrs))
    return None


# -- reduction phases -------------------------------------------------------


def _phase_functions(module: Module, check: Predicate) -> Tuple[Module, bool]:
    changed = False
    for name in sorted(module.functions):
        if len(module.functions) <= 1:
            break
        candidate = _drop_function(module, name)
        if check(candidate):
            module = candidate
            changed = True
    return module, changed


def _ddmin_indices(n: int):
    """Chunks of shrinking size over ``range(n)``, halves to singles."""
    size = max(1, n // 2)
    while size >= 1:
        for start in range(0, n, size):
            yield list(range(start, min(start + size, n)))
        if size == 1:
            return
        size //= 2


def _phase_blocks(module: Module, check: Predicate) -> Tuple[Module, bool]:
    changed = False
    for fn_name in sorted(module.functions):
        progress = True
        while progress:
            progress = False
            n = len(module.functions[fn_name].blocks)
            if n <= 1:
                break
            for chunk in _ddmin_indices(n):
                if len(chunk) >= n:
                    continue
                candidate = _drop_blocks(module, fn_name, chunk)
                if check(candidate):
                    module = candidate
                    changed = progress = True
                    break
    return module, changed


def _phase_instrs(module: Module, check: Predicate) -> Tuple[Module, bool]:
    changed = False
    for fn_name in sorted(module.functions):
        for block_idx in range(len(module.functions[fn_name].blocks)):
            progress = True
            while progress:
                progress = False
                blocks = module.functions[fn_name].blocks
                if block_idx >= len(blocks):
                    break
                n = len(blocks[block_idx].instrs)
                if n == 0:
                    break
                for chunk in _ddmin_indices(n):
                    candidate = _drop_instrs(module, fn_name, block_idx, chunk)
                    if check(candidate):
                        module = candidate
                        changed = progress = True
                        break
    return module, changed


def _phase_operands(module: Module, check: Predicate) -> Tuple[Module, bool]:
    changed = False
    for fn_name in sorted(module.functions):
        for block_idx in range(len(module.functions[fn_name].blocks)):
            i = 0
            while True:
                blocks = module.functions[fn_name].blocks
                if block_idx >= len(blocks) or i >= len(blocks[block_idx].instrs):
                    break
                simpler = _simplify_instr(blocks[block_idx].instrs[i])
                if simpler is not None:
                    candidate = module.clone()
                    candidate.functions[fn_name].blocks[block_idx].instrs[i] = (
                        simpler
                    )
                    if check(candidate):
                        module = candidate
                        changed = True
                i += 1
    return module, changed


def _phase_straighten(module: Module, check: Predicate) -> Tuple[Module, bool]:
    candidate = module.clone()
    try:
        Straighten().run_on_module(candidate, PassContext(candidate))
    except Exception:
        return module, False
    if instruction_count(candidate) < instruction_count(module) and check(
        candidate
    ):
        return candidate, True
    return module, False


def reduce_module(
    module: Module,
    predicate: Predicate,
    max_rounds: int = 10,
    log: Optional[Callable[[str], None]] = None,
) -> Module:
    """Shrink ``module`` while ``predicate`` keeps holding.

    ``predicate`` receives a candidate module and returns True when the
    failure signature is still present; it never sees an invalid module
    (verification is checked first) and its exceptions count as "no".
    The original module is returned unchanged if the predicate does not
    hold on it (nothing to reduce), and is never mutated.
    """
    check = _guarded(predicate)
    if not check(module):
        return module
    module = module.clone()
    say = log or (lambda _msg: None)
    for round_no in range(1, max_rounds + 1):
        before = instruction_count(module)
        round_changed = False
        for phase in (
            _phase_functions,
            _phase_blocks,
            _phase_instrs,
            _phase_operands,
            _phase_straighten,
        ):
            module, changed = phase(module, check)
            round_changed |= changed
        say(
            f"round {round_no}: {before} -> {instruction_count(module)} instrs"
        )
        if not round_changed:
            break
    return module
