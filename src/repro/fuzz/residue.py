"""Call-residue contract checking for fuzzed programs.

The differential oracle's reference is the *unoptimized* interpretation,
which executes no linkage code — so the semantic contract around calls
is narrower than the ABI's. After a call to a generated (non-library)
function, the call-clobbered registers hold whatever the callee happened
to leave in them, and an *optimized* callee leaves different residue
(DCE deletes the dead writes that used to populate them). A program
that reads such a register before re-defining it has no single defined
behaviour across optimization levels: any "divergence" the oracle sees
on it is the program's fault, not the compiler's.

``call_residue_violations`` decides membership in the defined-behaviour
contract with a forward may-dataflow over each function's CFG:

- at function entry every call-clobbered register that is not a
  declared parameter is *hazardous*: its value is whatever the caller
  left there, and the caller's optimizer is free to delete or repurpose
  those leftovers (a callee-side read of an undeclared register is the
  dual of the caller-side post-call read — seed 186's reducer walked
  through this gap, morphing a real containment bug into a "dce
  miscompile" on a candidate whose callee read the caller's ``r10``);
- a call to another generated function makes every call-clobbered
  register except the return value *hazardous*;
- calls to library routines with known properties (``print_int`` & co)
  are not hazard sources — their interpreter implementations write the
  return value and nothing else;
- defining a register clears its hazard; reading a hazardous one is a
  violation;
- block-entry hazard sets meet by union, so a hazard reaching a use
  along *any* path (in particular a loop backedge that crosses a call)
  convicts.

The fuzz driver uses this both as a generator invariant (the generator
repairs its output until clean — see ``generate.repair_call_residue``)
and as a reduction-predicate guard: a shrinking candidate that drifts
outside the contract must read as "not reproducing", or the reducer
happily morphs a real compiler bug into a defined-behaviour violation
(found the hard way: seed 254's "dce miscompile" was a generated read
of ``r9`` across a call on a loop-carried path).
"""

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.ir.function import Function
from repro.ir.instructions import CALL_CLOBBERED, RETVAL, Instr
from repro.ir.module import Module
from repro.ir.operands import Reg

#: What a call to a generated function leaves unpredictable: the full
#: clobber file minus the return value, which the call itself defines.
HAZARD_REGS = frozenset(CALL_CLOBBERED) - {RETVAL}


@dataclass(frozen=True)
class ResidueViolation:
    """One read of a register whose value is callee residue."""

    fn: str
    block: str
    index: int  #: instruction index within the block
    instr: Instr
    reg: Reg

    def __str__(self) -> str:
        return (
            f"{self.fn}/{self.block}[{self.index}]: "
            f"'{self.instr}' reads call residue in {self.reg}"
        )


def _is_hazard_source(instr: Instr) -> bool:
    """True for calls whose register effects are callee-dependent."""
    if instr.opcode != "CALL":
        return False
    # Library routines write RETVAL and nothing else (their defs() say
    # so); Instr.defs() is the single source of truth for the split.
    return set(instr.defs()) != {RETVAL}


def _transfer(hazard: Set[Reg], instr: Instr) -> None:
    hazard.difference_update(instr.defs())
    if _is_hazard_source(instr):
        hazard.update(HAZARD_REGS)
        hazard.discard(RETVAL)


def _block_entry_hazards(fn: Function) -> Dict[str, Set[Reg]]:
    """Fixpoint of hazardous-register sets at each block entry."""
    entry: Dict[str, Set[Reg]] = {bb.label: set() for bb in fn.blocks}
    # Incoming caller residue: everything call-clobbered that the
    # function does not declare as a parameter.
    entry[fn.blocks[0].label] = set(HAZARD_REGS - set(fn.params))
    work = list(fn.blocks)
    while work:
        bb = work.pop()
        hazard = set(entry[bb.label])
        for instr in bb.instrs:
            _transfer(hazard, instr)
        for succ in fn.successors(bb):
            if not hazard <= entry[succ.label]:
                entry[succ.label] |= hazard
                work.append(succ)
    return entry


def function_residue_violations(fn: Function) -> List[ResidueViolation]:
    """Every residue-reading use in ``fn``, in block/instruction order."""
    entry = _block_entry_hazards(fn)
    violations: List[ResidueViolation] = []
    for bb in fn.blocks:
        hazard = set(entry[bb.label])
        for i, instr in enumerate(bb.instrs):
            seen = set()
            for reg in instr.uses():
                if reg in hazard and reg not in seen:
                    seen.add(reg)
                    violations.append(
                        ResidueViolation(fn.name, bb.label, i, instr, reg)
                    )
            _transfer(hazard, instr)
    return violations


def call_residue_violations(module: Module) -> List[ResidueViolation]:
    """Every residue-reading use in ``module``."""
    violations: List[ResidueViolation] = []
    for fn in module.functions.values():
        violations.extend(function_residue_violations(fn))
    return violations


def reads_call_residue(module: Module) -> bool:
    """True if any instruction reads post-call residue (fast path)."""
    return bool(call_residue_violations(module))
