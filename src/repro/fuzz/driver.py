"""Fuzzing campaign driver: seed loop, parallelism, reporting.

Keeps ``python -m repro fuzz`` thin and the per-seed worker picklable
so campaigns can fan out across processes with ``--jobs``.
"""

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.fuzz.generate import GenConfig, generate_module
from repro.fuzz.oracle import (
    Finding,
    Oracle,
    OracleConfig,
    config_from_key,
)
from repro.fuzz.residue import reads_call_residue
from repro.ir.module import Module


@dataclass
class FuzzStats:
    """Campaign summary."""

    seeds_run: int = 0
    findings: int = 0
    elapsed: float = 0.0
    #: (kind, guilty pass) -> count; "unique" findings for reporting.
    by_signature: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def note(self, finding: Finding) -> None:
        self.findings += 1
        key = finding.signature()
        self.by_signature[key] = self.by_signature.get(key, 0) + 1


def fuzz_seed(
    seed: int,
    level: str,
    oracle_cfg: Optional[OracleConfig] = None,
    gen_cfg: Optional[GenConfig] = None,
) -> List[Finding]:
    """Check one seed; module-level so ProcessPoolExecutor can pickle it."""
    module = generate_module(seed, gen_cfg)
    return Oracle(oracle_cfg).check_module(module, seed, level)


def run_fuzz(
    seeds: int,
    level: str = "vliw",
    start: int = 0,
    jobs: int = 1,
    time_budget: Optional[float] = None,
    oracle_cfg: Optional[OracleConfig] = None,
    gen_cfg: Optional[GenConfig] = None,
    log: Optional[Callable[[str], None]] = None,
    progress_every: int = 50,
) -> Tuple[List[Finding], FuzzStats]:
    """Fuzz ``seeds`` seeds starting at ``start``.

    ``time_budget`` (seconds) stops the campaign early once exceeded —
    the CI smoke job runs "as many seeds as fit in a minute". Findings
    are returned in seed order regardless of worker scheduling.
    """
    say = log or (lambda _msg: None)
    stats = FuzzStats()
    findings: List[Finding] = []
    t0 = time.time()
    seed_list = list(range(start, start + seeds))

    def out_of_time() -> bool:
        return time_budget is not None and time.time() - t0 > time_budget

    def record(seed_findings: List[Finding]) -> None:
        for finding in seed_findings:
            findings.append(finding)
            stats.note(finding)
            say(f"FINDING {finding.describe()}")
        stats.seeds_run += 1
        if stats.seeds_run % progress_every == 0:
            say(
                f"... {stats.seeds_run}/{len(seed_list)} seeds, "
                f"{stats.findings} findings, {time.time() - t0:.0f}s"
            )

    if jobs <= 1:
        for seed in seed_list:
            if out_of_time():
                say(f"time budget exhausted after {stats.seeds_run} seeds")
                break
            record(fuzz_seed(seed, level, oracle_cfg, gen_cfg))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {}
            cursor = 0
            while cursor < len(seed_list) or pending:
                while (
                    cursor < len(seed_list)
                    and len(pending) < jobs * 2
                    and not out_of_time()
                ):
                    seed = seed_list[cursor]
                    cursor += 1
                    pending[
                        pool.submit(fuzz_seed, seed, level, oracle_cfg, gen_cfg)
                    ] = seed
                if not pending:
                    break
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    del pending[future]
                    record(future.result())
                if out_of_time() and cursor < len(seed_list):
                    say(f"time budget exhausted after {stats.seeds_run} seeds")
                    cursor = len(seed_list)
    stats.elapsed = time.time() - t0
    findings.sort(key=lambda f: (f.seed, f.config))
    return findings, stats


def signature_predicate(
    finding: Finding, oracle_cfg: Optional[OracleConfig] = None
) -> Callable[[Module], bool]:
    """Reduction predicate: does a candidate still show this failure?

    Matches on the failure *kind* under the finding's exact sweep
    config (bisection is skipped per candidate for speed; the reduced
    module is re-bisected once at the end to re-confirm the guilty
    pass). Restricting to the finding's memory model keeps each
    candidate test to one compile plus a handful of interpretations.

    Candidates that read call residue are rejected outright: deleting
    instructions can turn a defined program into one that reads
    registers a callee happened to populate, and such a candidate
    "reproduces" a divergence that is the program's fault, not the
    compiler's — the reducer would morph a real bug into noise.
    """
    sweep = config_from_key(finding.config)
    cfg = oracle_cfg or OracleConfig()
    cfg = replace(
        cfg,
        bisect=False,
        mem_models=(finding.mem_model,) if finding.mem_model else cfg.mem_models,
    )
    oracle = Oracle(cfg)

    def predicate(candidate: Module) -> bool:
        if reads_call_residue(candidate):
            return False
        found = oracle.check_module(
            candidate, finding.seed, configs=[sweep]
        )
        return any(f.kind == finding.kind for f in found)

    return predicate
