"""Fuzzing campaign driver: seed loop, parallelism, reporting.

Keeps ``python -m repro fuzz`` thin and the per-seed worker picklable
so campaigns can fan out across processes with ``--jobs``.

A campaign must survive its own findings. Two containment layers keep
one bad seed from taking down a whole ``--time-budget`` run:

- :func:`fuzz_seed` never raises: an oracle exception or a per-seed
  timeout (``seed_timeout``, enforced by an in-worker alarm) comes back
  as a ``crash``-kind :class:`Finding` naming the offending seed.
- A *hard* worker death (``os._exit``, segfault) breaks the whole
  ``ProcessPoolExecutor`` — every in-flight future raises
  ``BrokenProcessPool`` and blame is ambiguous. The driver rebuilds the
  pool and retries the in-flight seeds one at a time; the seed that
  kills a pool all by itself is recorded as the crash, the innocent
  cohort completes normally.
"""

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.fuzz.generate import GenConfig, generate_module
from repro.fuzz.oracle import (
    Finding,
    Oracle,
    OracleConfig,
    config_from_key,
)
from repro.fuzz.residue import reads_call_residue
from repro.ir.module import Module
from repro.ir.printer import format_module

#: Test hook: ``"3:raise,5:exit,7:hang"`` makes those seeds misbehave.
#: ``raise`` crashes the oracle in-process, ``exit`` kills the worker
#: hard (``os._exit``), ``hang`` sleeps past any per-seed timeout.
CRASH_SEEDS_ENV = "REPRO_FUZZ_CRASH_SEEDS"


class SeedTimeout(Exception):
    """Raised inside a worker when a seed overruns ``seed_timeout``."""


@contextmanager
def _seed_alarm(seconds: Optional[float]):
    """Arm a wall-clock alarm for one seed, where the platform allows.

    Pool workers run tasks on their main thread, so SIGALRM is usable
    there; a non-main thread (or a SIGALRM-less platform) runs without
    the soft timeout and relies on the caller's budget checks.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _fire(_signum, _frame):
        raise SeedTimeout()

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _apply_crash_hooks(seed: int) -> None:
    spec = os.environ.get(CRASH_SEEDS_ENV, "")
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        target, _, mode = part.partition(":")
        if int(target) != seed:
            continue
        mode = mode or "raise"
        if mode == "exit":
            os._exit(41)
        if mode == "hang":
            time.sleep(3600)
        raise RuntimeError(f"injected oracle crash for seed {seed}")


def _crash_finding(seed: int, level: str, detail: str, source: str = "") -> Finding:
    return Finding(
        seed=seed, config=level, kind="crash", detail=detail, source=source
    )


@dataclass
class FuzzStats:
    """Campaign summary."""

    seeds_run: int = 0
    findings: int = 0
    elapsed: float = 0.0
    #: (kind, guilty pass) -> count; "unique" findings for reporting.
    by_signature: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def note(self, finding: Finding) -> None:
        self.findings += 1
        key = finding.signature()
        self.by_signature[key] = self.by_signature.get(key, 0) + 1


def fuzz_seed(
    seed: int,
    level: str,
    oracle_cfg: Optional[OracleConfig] = None,
    gen_cfg: Optional[GenConfig] = None,
    seed_timeout: Optional[float] = None,
    config_keys: Optional[Tuple[str, ...]] = None,
) -> List[Finding]:
    """Check one seed; module-level so ProcessPoolExecutor can pickle it.

    ``config_keys`` restricts the sweep to those exact configurations
    (e.g. ``("vliw:u2:modulo",)`` for a campaign targeting the modulo
    backend); None sweeps the level's full default set.

    Never raises: an oracle crash or a ``seed_timeout`` overrun is
    itself a finding (``kind="crash"``) — the campaign must outlive its
    own discoveries.
    """
    source = ""
    configs = (
        [config_from_key(key) for key in config_keys] if config_keys else None
    )
    try:
        with _seed_alarm(seed_timeout):
            _apply_crash_hooks(seed)
            module = generate_module(seed, gen_cfg)
            source = format_module(module)
            return Oracle(oracle_cfg).check_module(
                module, seed, level, configs=configs
            )
    except SeedTimeout:
        return [
            _crash_finding(
                seed, level,
                f"seed stalled past the {seed_timeout:.1f}s per-seed timeout",
                source,
            )
        ]
    except Exception as exc:  # noqa: BLE001 — any oracle failure is a finding
        return [
            _crash_finding(
                seed, level,
                f"oracle crashed: {type(exc).__name__}: {exc}",
                source,
            )
        ]


def run_fuzz(
    seeds: int,
    level: str = "vliw",
    start: int = 0,
    jobs: int = 1,
    time_budget: Optional[float] = None,
    seed_timeout: Optional[float] = None,
    oracle_cfg: Optional[OracleConfig] = None,
    gen_cfg: Optional[GenConfig] = None,
    log: Optional[Callable[[str], None]] = None,
    progress_every: int = 50,
    config_keys: Optional[Tuple[str, ...]] = None,
) -> Tuple[List[Finding], FuzzStats]:
    """Fuzz ``seeds`` seeds starting at ``start``.

    ``time_budget`` (seconds) stops the campaign early once exceeded —
    the CI smoke job runs "as many seeds as fit in a minute".
    ``seed_timeout`` (seconds) bounds a *single* seed so one hung
    oracle run cannot eat the whole budget. ``config_keys`` restricts
    the sweep (see :func:`fuzz_seed`). Findings are returned in seed
    order regardless of worker scheduling.
    """
    say = log or (lambda _msg: None)
    stats = FuzzStats()
    findings: List[Finding] = []
    t0 = time.time()
    seed_list = list(range(start, start + seeds))

    def out_of_time() -> bool:
        return time_budget is not None and time.time() - t0 > time_budget

    def record(seed_findings: List[Finding]) -> None:
        for finding in seed_findings:
            findings.append(finding)
            stats.note(finding)
            say(f"FINDING {finding.describe()}")
        stats.seeds_run += 1
        if stats.seeds_run % progress_every == 0:
            say(
                f"... {stats.seeds_run}/{len(seed_list)} seeds, "
                f"{stats.findings} findings, {time.time() - t0:.0f}s"
            )

    if jobs <= 1:
        for seed in seed_list:
            if out_of_time():
                say(f"time budget exhausted after {stats.seeds_run} seeds")
                break
            record(
                fuzz_seed(
                    seed, level, oracle_cfg, gen_cfg, seed_timeout, config_keys
                )
            )
    else:
        _run_parallel(
            seed_list, level, jobs, seed_timeout, oracle_cfg, gen_cfg,
            record, out_of_time, say, stats, config_keys,
        )
    stats.elapsed = time.time() - t0
    findings.sort(key=lambda f: (f.seed, f.config))
    return findings, stats


def _run_parallel(
    seed_list: List[int],
    level: str,
    jobs: int,
    seed_timeout: Optional[float],
    oracle_cfg: Optional[OracleConfig],
    gen_cfg: Optional[GenConfig],
    record: Callable[[List[Finding]], None],
    out_of_time: Callable[[], bool],
    say: Callable[[str], None],
    stats: FuzzStats,
    config_keys: Optional[Tuple[str, ...]] = None,
) -> None:
    """Fan seeds across a process pool, surviving hard worker deaths.

    A worker that dies outright breaks the whole executor and every
    in-flight future reports ``BrokenProcessPool`` — the guilty seed is
    ambiguous. The recovery protocol: rebuild the pool, then retry the
    in-flight cohort *one seed at a time* (the quarantine queue). A
    seed that breaks a pool while alone in it is definitively guilty
    and recorded as a ``crash`` finding; the rest complete normally.
    """
    pool = ProcessPoolExecutor(max_workers=jobs)
    pending: Dict = {}
    quarantine: List[int] = []
    cursor = 0

    def submit(seed: int) -> None:
        pending[
            pool.submit(
                fuzz_seed, seed, level, oracle_cfg, gen_cfg, seed_timeout,
                config_keys,
            )
        ] = seed

    try:
        while True:
            if quarantine:
                if not pending and not out_of_time():
                    submit(quarantine.pop(0))
            else:
                while (
                    cursor < len(seed_list)
                    and len(pending) < jobs * 2
                    and not out_of_time()
                ):
                    submit(seed_list[cursor])
                    cursor += 1
            if not pending:
                if out_of_time() and (cursor < len(seed_list) or quarantine):
                    say(f"time budget exhausted after {stats.seeds_run} seeds")
                break
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            broken: List[int] = []
            for future in done:
                seed = pending.pop(future)
                try:
                    record(future.result())
                except BrokenProcessPool:
                    broken.append(seed)
                except Exception as exc:  # noqa: BLE001 — contain, don't abort
                    record([
                        _crash_finding(
                            seed, level,
                            f"worker failed: {type(exc).__name__}: {exc}",
                        )
                    ])
            if broken:
                # The executor is dead; in-flight futures are lost too.
                in_flight = sorted(set(broken) | set(pending.values()))
                pending.clear()
                pool.shutdown(wait=False)
                pool = ProcessPoolExecutor(max_workers=jobs)
                if len(in_flight) == 1:
                    record([
                        _crash_finding(
                            in_flight[0], level,
                            "worker process died (hard crash) while checking "
                            "this seed",
                        )
                    ])
                    say(
                        f"worker died on seed {in_flight[0]}; pool rebuilt, "
                        "campaign continues"
                    )
                else:
                    quarantine = in_flight + quarantine
                    say(
                        f"worker died with {len(in_flight)} seeds in flight; "
                        "pool rebuilt, retrying them one at a time"
                    )
    finally:
        pool.shutdown(wait=False)


def signature_predicate(
    finding: Finding, oracle_cfg: Optional[OracleConfig] = None
) -> Callable[[Module], bool]:
    """Reduction predicate: does a candidate still show this failure?

    Matches on the failure *kind* under the finding's exact sweep
    config (bisection is skipped per candidate for speed; the reduced
    module is re-bisected once at the end to re-confirm the guilty
    pass). Restricting to the finding's memory model keeps each
    candidate test to one compile plus a handful of interpretations.

    Candidates that read call residue are rejected outright: deleting
    instructions can turn a defined program into one that reads
    registers a callee happened to populate, and such a candidate
    "reproduces" a divergence that is the program's fault, not the
    compiler's — the reducer would morph a real bug into noise.
    ``engine-divergence`` findings skip that guard: both executors run
    the *same* module, so they must agree even on residue-reading
    programs — a candidate reproducing the divergence is always a real
    engine bug.
    """
    sweep = config_from_key(finding.config)
    cfg = oracle_cfg or OracleConfig()
    cfg = replace(
        cfg,
        bisect=False,
        mem_models=(finding.mem_model,) if finding.mem_model else cfg.mem_models,
    )
    oracle = Oracle(cfg)
    residue_guard = finding.kind != "engine-divergence"

    def predicate(candidate: Module) -> bool:
        if residue_guard and reads_call_residue(candidate):
            return False
        found = oracle.check_module(
            candidate, finding.seed, configs=[sweep]
        )
        return any(f.kind == finding.kind for f in found)

    return predicate
