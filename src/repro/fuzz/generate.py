"""Seeded, deterministic IR program generator for differential fuzzing.

Emits verifier-clean modules biased toward the CFG shapes the paper's
passes rewrite: counted loops (top-test, bottom-test, BCT), irreducible
two-entry loops, pointer walks with update-form loads, diamonds and
triangles with conditionally-executed memory traffic, loop-invariant
loads and stores (loop-memory-motion fodder), register copies
(combining / copy-propagation fodder), calls, library calls and data
sections — plus a small dose of out-of-bounds loads so the paged memory
model's faulting behaviour is exercised too.

Every choice is drawn from ``random.Random(f"repro-fuzz:{seed}")`` (a
string seed is process-independent), so a seed fully determines the
module and the oracle/reducer can regenerate it at will.

Two invariants keep the differential oracle free of false positives —
the unoptimized reference is interpreted with *no* linkage code, so the
semantic contract around calls is narrower than the ABI's:

- **Residue discipline.** After a CALL the call-clobbered registers
  (r0, r3..r12, all cr fields, CTR) hold whatever the callee left
  there, and an optimized callee leaves *different* residue. Generated
  code therefore never reads a call-clobbered register it has not
  re-defined since the last call: the generator tracks register
  definedness, intersects it at joins, and re-establishes the data
  pointers with fresh ``LA`` instructions after every call.
- **Callee-saved partitioning.** The unoptimized callee does not
  save/restore callee-saved registers, so a callee writing one would
  trash its caller's loop counters. Function ``f<i>`` draws loop
  counters from its own slice of r24..r29 and only ever calls ``f<j>``
  with ``j > i``, so no callee writes a register its caller holds live.

All loops are bounded by dedicated constant-initialized counters, so
every generated program terminates on every input.
"""

import random
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.ir.instructions import Instr
from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module

from repro.fuzz.residue import call_residue_violations

#: Registers generated statements may define and read (call-clobbered).
VALUE_REGS = ("r3", "r4", "r5", "r6", "r7", "r8", "r9")
#: Data-section base pointers (re-established after every call).
DATA_PTR = "r10"
DATA_PTR2 = "r11"
#: Callee-saved loop-counter pool, sliced per function (see module doc).
COUNTER_POOL = ("r24", "r25", "r26", "r27", "r28", "r29")
COUNTERS_PER_FN = 2

ALU_RR = ("A", "S", "MUL", "AND", "OR", "XOR", "SL", "SR", "SRA")
ALU_RI = ("AI", "SI", "MULI", "ANDI", "ORI", "XORI", "SLI", "SRI", "SRAI")
CONDS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Words in the primary data object; computed addressing masks against
#: this (``ANDI off, x, 0x3C`` covers words 0..15), so it is a floor.
DATA_WORDS = 16
#: Displacement that lands far outside every mapped segment (data
#: objects sit near 0x10000, the heap at 0x20000000, the stack near
#: 0x7FFF0000): r10 + 0xFF0000 ≈ 0x1000000 is unmapped on the paged
#: model and reads as zero on the flat one.
WILD_DISP = 0xFF0000


@dataclass
class GenConfig:
    """Shape knobs for one generated module."""

    #: Functions per module (f0 calls into f1 calls into f2, acyclic).
    max_functions: int = 3
    #: Statement budget per function.
    size: int = 18
    #: Maximum nesting depth of diamonds/loops.
    max_depth: int = 3
    #: Permit the rare out-of-bounds load (paged-model fault fodder).
    wild_loads: bool = True
    #: Permit CALLs to other generated functions / library routines.
    calls: bool = True


class _FnGen:
    """Emits one function as parseable text, tracking definedness."""

    def __init__(
        self,
        rng: random.Random,
        name: str,
        index: int,
        params: List[str],
        callees: List[tuple],
        cfg: GenConfig,
        has_second_object: bool,
    ):
        self.rng = rng
        self.name = name
        self.params = params
        #: (name, nparams) of generated functions this one may call.
        self.callees = callees
        self.cfg = cfg
        self.has_second_object = has_second_object
        self.budget = cfg.size
        self.lines: List[str] = []
        self.label_counter = 0
        self.cr_counter = index  # desynchronize cr choice across functions
        self.counter_cursor = 0
        base = (index * COUNTERS_PER_FN) % len(COUNTER_POOL)
        self.counters = [
            COUNTER_POOL[(base + i) % len(COUNTER_POOL)]
            for i in range(COUNTERS_PER_FN)
        ]
        #: Registers safe to read: params, then everything defined since
        #: the last call clobbered the volatile file.
        self.defined: Set[str] = set(params)
        self.call_sites = 0
        self.in_bct = False

    # -- plumbing -----------------------------------------------------------

    def emit(self, text: str, indent: bool = True) -> None:
        self.lines.append(("    " if indent else "") + text)

    def fresh_label(self, hint: str) -> str:
        self.label_counter += 1
        return f"{hint}{self.label_counter}"

    def fresh_cr(self) -> str:
        self.cr_counter = (self.cr_counter + 1) % 8
        return f"cr{self.cr_counter}"

    def def_reg(self) -> str:
        """A destination register (always becomes defined)."""
        reg = self.rng.choice(VALUE_REGS)
        self.defined.add(reg)
        return reg

    def read_reg(self) -> str:
        """A register that is safe to read (defining one if needed)."""
        pool = [r for r in VALUE_REGS if r in self.defined]
        if not pool:
            reg = self.rng.choice(VALUE_REGS)
            self.emit(f"LI {reg}, {self.rng.randrange(-20, 21)}")
            self.defined.add(reg)
            return reg
        return self.rng.choice(pool)

    def offset(self) -> int:
        return 4 * self.rng.randrange(DATA_WORDS)

    def data_ptr(self) -> str:
        if self.has_second_object and self.rng.random() < 0.3:
            return DATA_PTR2
        return DATA_PTR

    # -- statements ---------------------------------------------------------

    def gen_statement(self, depth: int) -> None:
        if self.budget <= 0:
            return
        self.budget -= 1
        rng = self.rng
        roll = rng.random()
        # NOTE: source registers are always chosen *before* the
        # destination — def_reg() adds its pick to ``defined``, and a
        # source drawn afterwards could name a register that was never
        # written since the last call (i.e. read callee residue).
        if roll < 0.16:
            op = rng.choice(ALU_RR)
            ra, rb = self.read_reg(), self.read_reg()
            self.emit(f"{op} {self.def_reg()}, {ra}, {rb}")
        elif roll < 0.28:
            op = rng.choice(ALU_RI)
            imm = rng.randrange(0, 9) if op.startswith("S") and op != "SI" else rng.randrange(-12, 13)
            ra = self.read_reg()
            self.emit(f"{op} {self.def_reg()}, {ra}, {imm}")
        elif roll < 0.34:
            kind = rng.random()
            unary = "LR" if kind < 0.4 else ("NEG" if kind < 0.7 else "NOT")
            ra = self.read_reg()
            self.emit(f"{unary} {self.def_reg()}, {ra}")
        elif roll < 0.36:
            # Division: divide-by-zero wraps to 0 on the flat model and
            # faults on the paged one — both deterministically.
            ra, rb = self.read_reg(), self.read_reg()
            self.emit(f"DIV {self.def_reg()}, {ra}, {rb}")
        elif roll < 0.48:
            self.gen_load(depth)
        elif roll < 0.58:
            self.gen_store(depth)
        elif roll < 0.70 and depth < self.cfg.max_depth:
            self.gen_diamond(depth)
        elif roll < 0.82 and depth < self.cfg.max_depth:
            self.gen_loop(depth)
        elif roll < 0.88 and self._may_call():
            self.gen_call()
        elif roll < 0.93 and self._may_call():
            self.gen_libcall()
        else:
            self.emit(f"LI {self.def_reg()}, {rng.randrange(-40, 41)}")

    def _may_call(self) -> bool:
        return self.cfg.calls and not self.in_bct and self.call_sites < 3

    def gen_load(self, depth: int) -> None:
        rng = self.rng
        roll = rng.random()
        if self.cfg.wild_loads and roll < 0.10:
            # Out of every mapped segment: zero on flat, fault on paged.
            self.emit(f"L {self.def_reg()}, {WILD_DISP}({DATA_PTR})")
            return
        if roll < 0.35:
            # Computed in-bounds address: mask an arbitrary value down to
            # a word offset inside the object (scheduling fodder).
            off = self.rng.choice(VALUE_REGS)
            base = self.rng.choice(VALUE_REGS)
            self.emit(f"ANDI {off}, {self.read_reg()}, 0x3C")
            self.emit(f"A {base}, {self.data_ptr()}, {off}")
            self.defined.update((off, base))
            self.emit(f"L {self.def_reg()}, 0({base})")
            return
        self.emit(f"L {self.def_reg()}, {self.offset()}({self.data_ptr()})")

    def gen_store(self, depth: int) -> None:
        if self.rng.random() < 0.25:
            off = self.rng.choice(VALUE_REGS)
            base = self.rng.choice(VALUE_REGS)
            self.emit(f"ANDI {off}, {self.read_reg()}, 0x3C")
            self.emit(f"A {base}, {self.data_ptr()}, {off}")
            self.defined.update((off, base))
            self.emit(f"ST 0({base}), {self.read_reg()}")
            return
        self.emit(f"ST {self.offset()}({self.data_ptr()}), {self.read_reg()}")

    def gen_diamond(self, depth: int) -> None:
        rng = self.rng
        cr = self.fresh_cr()
        else_label = self.fresh_label("els")
        join_label = self.fresh_label("join")
        self.emit(f"CI {cr}, {self.read_reg()}, {rng.randrange(-4, 5)}")
        self.emit(f"BT {else_label}, {cr}.{rng.choice(CONDS)}")
        before = set(self.defined)
        self.gen_block(depth + 1, rng.randrange(1, 4))
        then_defined = self.defined
        if rng.random() < 0.6:
            self.emit(f"B {join_label}")
            self.emit(f"{else_label}:", indent=False)
            self.defined = set(before)
            self.gen_block(depth + 1, rng.randrange(1, 4))
            self.emit(f"{join_label}:", indent=False)
            self.defined &= then_defined
        else:  # triangle: the then-arm may be skipped entirely
            self.emit(f"{else_label}:", indent=False)
            self.defined = before & then_defined

    # -- loops --------------------------------------------------------------

    def _counter(self) -> str:
        reg = self.counters[self.counter_cursor % len(self.counters)]
        self.counter_cursor += 1
        return reg

    def gen_loop(self, depth: int) -> None:
        roll = self.rng.random()
        if roll < 0.30:
            self.gen_loop_top_test(depth)
        elif roll < 0.55:
            self.gen_loop_bottom_test(depth)
        elif roll < 0.70 and not self.in_bct:
            self.gen_loop_bct(depth)
        elif roll < 0.85:
            self.gen_loop_irreducible(depth)
        elif depth == 0:
            self.gen_loop_pointer_walk(depth)
        else:
            self.gen_loop_bottom_test(depth)

    def _loop_body(self, depth: int) -> None:
        n = self.rng.randrange(1, 4)
        # Bias loop bodies toward memory traffic: loop-invariant loads
        # and stores are exactly what LoopMemoryMotion rewrites.
        if self.rng.random() < 0.5:
            self.emit(f"L {self.def_reg()}, {self.offset()}({self.data_ptr()})")
        self.gen_block(depth + 1, n)
        if self.rng.random() < 0.35:
            self.emit(f"ST {self.offset()}({self.data_ptr()}), {self.read_reg()}")

    def gen_loop_top_test(self, depth: int) -> None:
        counter = self._counter()
        cr = self.fresh_cr()
        head = self.fresh_label("loop")
        exit_label = self.fresh_label("done")
        trips = self.rng.randrange(1, 5)
        self.emit(f"LI {counter}, {trips}")
        self.emit(f"{head}:", indent=False)
        self.emit(f"CI {cr}, {counter}, 0")
        self.emit(f"BT {exit_label}, {cr}.le")
        self._loop_body(depth)  # trips >= 1: body always runs, defs survive
        self.emit(f"AI {counter}, {counter}, -1")
        self.emit(f"B {head}")
        self.emit(f"{exit_label}:", indent=False)

    def gen_loop_bottom_test(self, depth: int) -> None:
        counter = self._counter()
        cr = self.fresh_cr()
        head = self.fresh_label("loop")
        trips = self.rng.randrange(1, 5)
        self.emit(f"LI {counter}, {trips}")
        self.emit(f"{head}:", indent=False)
        self._loop_body(depth)
        self.emit(f"AI {counter}, {counter}, -1")
        self.emit(f"CI {cr}, {counter}, 0")
        self.emit(f"BT {head}, {cr}.gt")

    def gen_loop_bct(self, depth: int) -> None:
        """Counted loop on the CTR register (the paper's native shape)."""
        trips_reg = self.def_reg()
        head = self.fresh_label("bct")
        self.emit(f"LI {trips_reg}, {self.rng.randrange(1, 5)}")
        self.emit(f"MTCTR {trips_reg}")
        self.emit(f"{head}:", indent=False)
        was = self.in_bct
        self.in_bct = True  # CTR is live: no calls, no nested MTCTR/BCT
        self._loop_body(depth)
        self.in_bct = was
        self.emit(f"BCT {head}")

    def gen_loop_irreducible(self, depth: int) -> None:
        """Two-entry loop: a side entrance jumps into the middle.

        The counter still bounds it — at most ``trips + 1`` traversals —
        but no amount of straightening makes this reducible, which is
        exactly the shape region-based schedulers mishandle.
        """
        counter = self._counter()
        cr_in = self.fresh_cr()
        cr_back = self.fresh_cr()
        l1 = self.fresh_label("irr_a")
        l2 = self.fresh_label("irr_b")
        trips = self.rng.randrange(1, 4)
        self.emit(f"LI {counter}, {trips}")
        self.emit(f"CI {cr_in}, {self.read_reg()}, {self.rng.randrange(-2, 3)}")
        self.emit(f"BT {l2}, {cr_in}.{self.rng.choice(CONDS)}")
        self.emit(f"{l1}:", indent=False)
        before = set(self.defined)
        self.gen_block(depth + 1, self.rng.randrange(1, 3))
        # The side entrance may skip l1's body: its defs are not reliable.
        self.defined = before
        self.emit(f"{l2}:", indent=False)
        self._loop_body(depth)
        self.emit(f"AI {counter}, {counter}, -1")
        self.emit(f"CI {cr_back}, {counter}, 0")
        self.emit(f"BT {l1}, {cr_back}.gt")

    def gen_loop_pointer_walk(self, depth: int) -> None:
        """Update-form load walk over the data object (LU fodder)."""
        walker = self.def_reg()
        dest = self.def_reg()
        counter = self._counter()
        cr = self.fresh_cr()
        head = self.fresh_label("walk")
        trips = self.rng.randrange(1, 5)  # walks at most 16 bytes: in bounds
        self.emit(f"LR {walker}, {DATA_PTR}")
        self.emit(f"LI {counter}, {trips}")
        self.emit(f"{head}:", indent=False)
        self.emit(f"LU {dest}, 4({walker})")
        addend = self.read_reg()
        self.emit(f"A {self.def_reg()}, {dest}, {addend}")
        self.emit(f"AI {counter}, {counter}, -1")
        self.emit(f"CI {cr}, {counter}, 0")
        self.emit(f"BT {head}, {cr}.gt")

    # -- calls --------------------------------------------------------------

    def _marshal_args(self, nargs: int) -> None:
        """Load r3..r(3+nargs-1) from defined values or constants."""
        for i in range(nargs):
            arg = f"r{3 + i}"
            src = [r for r in VALUE_REGS if r in self.defined and r != arg]
            if src and self.rng.random() < 0.7:
                self.emit(f"LR {arg}, {self.rng.choice(src)}")
            else:
                self.emit(f"LI {arg}, {self.rng.randrange(-8, 9)}")
            self.defined.add(arg)

    def _after_call(self) -> None:
        """Drop the volatile file from ``defined``; re-anchor pointers."""
        self.defined = {r for r in self.defined if r not in VALUE_REGS}
        self.defined.add("r3")  # the return value is real data
        self.emit(f"LA {DATA_PTR}, d0")
        if self.has_second_object:
            self.emit(f"LA {DATA_PTR2}, d1")
        self.call_sites += 1

    def gen_call(self) -> None:
        if not self.callees:
            self.gen_libcall()
            return
        name, nparams = self.rng.choice(self.callees)
        self._marshal_args(nparams)
        self.emit(f"CALL {name}, {nparams}")
        self._after_call()
        if self.rng.random() < 0.6:
            self.emit(f"LR {self.def_reg()}, r3")

    def gen_libcall(self) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.30:
            self._marshal_args(1)
            self.emit("CALL print_int, 1")
        elif roll < 0.50:
            self._marshal_args(2)
            self.emit(f"CALL {rng.choice(['min_val', 'max_val'])}, 2")
        elif roll < 0.62:
            self._marshal_args(1)
            self.emit("CALL abs_val, 1")
        elif roll < 0.80:
            # memset_words(addr, value, n) over a safe slice of d0.
            nwords = rng.randrange(1, 5)
            off = 4 * rng.randrange(0, DATA_WORDS - nwords)
            self.emit(f"AI r3, {DATA_PTR}, {off}")
            self.emit(f"LI r4, {rng.randrange(-9, 10)}")
            self.emit(f"LI r5, {nwords}")
            self.emit("CALL memset_words, 3")
        elif roll < 0.92:
            nwords = rng.randrange(1, 5)
            dst = 4 * rng.randrange(0, DATA_WORDS - nwords)
            src = 4 * rng.randrange(0, DATA_WORDS - nwords)
            self.emit(f"AI r3, {DATA_PTR}, {dst}")
            self.emit(f"AI r4, {DATA_PTR}, {src}")
            self.emit(f"LI r5, {nwords}")
            self.emit("CALL memcpy_words, 3")
        else:
            nwords = rng.randrange(1, 4)
            self.emit(f"AI r3, {DATA_PTR}, 0")
            self.emit(f"LI r4, {nwords}")
            self.emit("CALL write_record, 2")
        self._after_call()

    # -- top level ----------------------------------------------------------

    def gen_block(self, depth: int, n: int) -> None:
        for _ in range(n):
            self.gen_statement(depth)

    def generate(self) -> str:
        self.emit(f"func {self.name}({', '.join(self.params)}):", indent=False)
        self.emit(f"LA {DATA_PTR}, d0")
        if self.has_second_object:
            self.emit(f"LA {DATA_PTR2}, d1")
        # A couple of seeded constants so early statements have operands.
        for _ in range(2):
            self.emit(f"LI {self.def_reg()}, {self.rng.randrange(-30, 31)}")
        # At least one loop per function: loops are what the paper's
        # passes rewrite, so never generate a loop-free module.
        self.gen_loop(0)
        self.budget -= 3
        while self.budget > 0:
            self.gen_statement(0)
        self._epilogue()
        return "\n".join(self.lines)

    def _epilogue(self) -> None:
        """Fold live state into r3 so divergence is observable."""
        fold_ops = ("A", "XOR", "S")
        if "r3" not in self.defined:
            self.emit("LI r3, 0")
        for i, reg in enumerate(sorted(self.defined & set(VALUE_REGS))):
            if reg == "r3":
                continue
            self.emit(f"{fold_ops[i % len(fold_ops)]} r3, r3, {reg}")
        # Fold a memory word too: store-side bugs must reach the value.
        self.emit(f"L r4, {self.offset()}({DATA_PTR})")
        self.emit("XOR r3, r3, r4")
        if self.rng.random() < 0.4:
            self.emit(f"ST {self.offset()}({DATA_PTR}), r3")
        self.emit("RET")


def generate_source(seed: int, cfg: Optional[GenConfig] = None) -> str:
    """The textual module for ``seed`` (fully deterministic)."""
    cfg = cfg or GenConfig()
    rng = random.Random(f"repro-fuzz:{seed}")
    n_functions = rng.randrange(1, max(1, cfg.max_functions) + 1)
    has_second = rng.random() < 0.4
    lines: List[str] = []

    def data_line(name: str, volatile: bool) -> str:
        words = rng.randrange(DATA_WORDS, DATA_WORDS + 9)
        init = ", ".join(str(rng.randrange(-100, 101)) for _ in range(words))
        suffix = " volatile" if volatile else ""
        return f"data {name}: size={4 * words} init=[{init}]{suffix}"

    lines.append(data_line("d0", volatile=False))
    if has_second:
        lines.append(data_line("d1", volatile=rng.random() < 0.3))
    lines.append("")

    signatures = []
    for i in range(n_functions):
        nparams = rng.randrange(1, 4)
        signatures.append((f"f{i}", [f"r{3 + p}" for p in range(nparams)]))
    for i, (name, params) in enumerate(signatures):
        callees = [(n, len(p)) for n, p in signatures[i + 1:]]
        gen = _FnGen(rng, name, i, params, callees, cfg, has_second)
        lines.append(gen.generate())
        lines.append("")
    return "\n".join(lines)


def repair_call_residue(module: Module, seed: int) -> Module:
    """Re-define every register read as call residue, in place.

    The emitter's definedness tracking is linear, so it cannot see that
    a loop backedge re-enters a block whose reads were emitted while the
    registers were still defined — with a call *inside* the loop, the
    second traversal reads callee residue (seed 254: ``CI cr3, r9, 1``
    at an irreducible header, ``NEG r9, r8`` before a ``CALL f1`` on the
    loop-carried path). Rather than complicate the emitter with a whole
    CFG dataflow mid-generation, run that dataflow afterwards and patch
    each offending read with a seeded constant re-definition just before
    it. Only the violating seeds change, and only at the violating uses.
    """
    rng = random.Random(f"repro-fuzz-repair:{seed}")
    for _ in range(8):
        violations = call_residue_violations(module)
        if not violations:
            return module
        by_block: dict = {}
        for v in violations:
            by_block.setdefault((v.fn, v.block), []).append(v)
        for (fn_name, label), vs in by_block.items():
            fn = module.functions[fn_name]
            bb = next(b for b in fn.blocks if b.label == label)
            firsts: dict = {}
            for v in vs:
                if v.reg not in firsts or v.index < firsts[v.reg]:
                    firsts[v.reg] = v.index
            # Descending index so earlier insertions don't shift later
            # targets; name-sorted within an index for determinism.
            for reg, idx in sorted(
                firsts.items(), key=lambda kv: (-kv[1], kv[0].name)
            ):
                if reg.kind != "gpr":
                    raise AssertionError(
                        f"generator produced a non-GPR residue read: {reg}"
                    )
                bb.instrs.insert(
                    idx, Instr("LI", rd=reg, imm=rng.randrange(-20, 21))
                )
    raise AssertionError(f"residue repair did not converge on seed {seed}")


def generate_module(seed: int, cfg: Optional[GenConfig] = None) -> Module:
    """Parse, repair and verify the generated module for ``seed``.

    This — not ``generate_source`` — is the canonical program for a
    seed: the residue repair runs on the parsed module, so the raw text
    of a violating seed differs from what the oracle actually tests.
    A verification failure here is a *generator* bug, never a finding.
    """
    source = generate_source(seed, cfg)
    module = parse_module(source)
    repair_call_residue(module, seed)
    verify_module(module)
    return module
