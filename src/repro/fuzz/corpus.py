"""Corpus persistence: reduced failures become permanent regressions.

Every reduced finding is written to ``tests/fuzz/corpus/`` as a plain
IR text file with a comment header carrying the metadata the replay
test needs. Because the header lines are ``#`` comments, the corpus
file *is* the test case — ``parse_module`` reads it directly.

Header format::

    # repro-fuzz case: <name>
    # status: fixed | xfail
    # seed: <generator seed>
    # config: <sweep config key, e.g. vliw:u2:swp>
    # kind: miscompile | containment | crash | verifier-reject
    # guilty: <pass name>
    # detail: <one-line description>

``status: fixed`` cases assert the oracle finds nothing (the bug was
fixed in-tree); ``status: xfail`` cases document a known-open failure —
the replay test xfails them and flags when they start passing so they
can be promoted to ``fixed``. See docs/FUZZING.md.
"""

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.fuzz.oracle import Finding

#: Default corpus location, relative to the repository root.
CORPUS_DIR = Path("tests/fuzz/corpus")

_HEADER_RE = re.compile(r"^#\s*([\w-]+):\s*(.*)$")


@dataclass
class CorpusCase:
    """One persisted regression case."""

    name: str
    status: str  # "fixed" | "xfail"
    seed: int
    config: str
    kind: str
    guilty: str = ""
    detail: str = ""
    source: str = ""
    path: Optional[Path] = None
    #: Free-form provenance headers (``# key: value``) beyond the known
    #: set — e.g. the serve triage pipeline pins the crash-bundle id and
    #: environment fingerprint of production-found cases here.
    extra: Dict[str, str] = field(default_factory=dict)

    def header(self) -> str:
        lines = [
            f"# repro-fuzz case: {self.name}",
            f"# status: {self.status}",
            f"# seed: {self.seed}",
            f"# config: {self.config}",
            f"# kind: {self.kind}",
        ]
        if self.guilty:
            lines.append(f"# guilty: {self.guilty}")
        if self.detail:
            lines.append(f"# detail: {self.detail.splitlines()[0][:200]}")
        for key in sorted(self.extra):
            value = str(self.extra[key]).splitlines()[0][:200]
            lines.append(f"# {key}: {value}")
        return "\n".join(lines)

    def text(self) -> str:
        return f"{self.header()}\n\n{self.source.strip()}\n"


def case_from_finding(
    finding: Finding, source: str, status: str = "fixed", name: str = ""
) -> CorpusCase:
    """Build a corpus case from an oracle finding and its (reduced) IR."""
    slug = finding.guilty or finding.kind
    return CorpusCase(
        name=name or f"seed{finding.seed}-{slug}",
        status=status,
        seed=finding.seed,
        config=finding.config,
        kind=finding.kind,
        guilty=finding.guilty,
        detail=finding.detail,
        source=source,
    )


def save_case(case: CorpusCase, directory: Path = CORPUS_DIR) -> Path:
    """Write ``case`` (unique-suffixing the filename if taken)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = re.sub(r"[^\w.-]", "-", case.name)
    path = directory / f"{stem}.ir"
    serial = 1
    while path.exists():
        serial += 1
        path = directory / f"{stem}-{serial}.ir"
    path.write_text(case.text())
    case.path = path
    return path


def parse_case(text: str, path: Optional[Path] = None) -> CorpusCase:
    meta = {}
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if not stripped.startswith("#"):
            break
        if stripped.startswith("# repro-fuzz case:"):
            meta["name"] = stripped.split(":", 1)[1].strip()
            continue
        match = _HEADER_RE.match(stripped)
        if match:
            meta[match.group(1)] = match.group(2).strip()
    known = {"name", "status", "seed", "config", "kind", "guilty", "detail"}
    return CorpusCase(
        name=meta.get("name", path.stem if path else "unnamed"),
        status=meta.get("status", "fixed"),
        seed=int(meta.get("seed", 0)),
        config=meta.get("config", "vliw:u2:swp"),
        kind=meta.get("kind", "miscompile"),
        guilty=meta.get("guilty", ""),
        detail=meta.get("detail", ""),
        source=text,
        path=path,
        extra={k: v for k, v in meta.items() if k not in known},
    )


def load_cases(directory: Path = CORPUS_DIR) -> List[CorpusCase]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        parse_case(path.read_text(), path)
        for path in sorted(directory.glob("*.ir"))
    ]
