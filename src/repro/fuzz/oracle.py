"""Differential oracle: unoptimized vs compiled, across a config sweep.

For each generated module the oracle captures the unoptimized reference
behaviour on a battery of seeded entries (reusing diffcheck's
:func:`~repro.robustness.diffcheck.derive_entries` /
:func:`~repro.robustness.diffcheck.observe`), then compiles the module
under every sweep configuration — ``base``, ``vliw`` at several unroll
factors, software pipelining on/off, and single-pass ``disable=``
ablations — and compares behaviour on both memory models.

The comparison reuses diffcheck's fault-class-agreement contract:

- either side hitting the step budget → **skip** (unrolling changes
  step counts; nothing to conclude);
- reference faults, compiled faults with the same class → agreement;
- reference faults, compiled does anything else → **inconclusive** (a
  pass may legitimately delete a fault it proved dead);
- reference runs, compiled faults → **miscompile** on the flat model,
  **containment** on the paged one (a speculation-containment escape,
  mirroring the sanitizer's ``violation`` class);
- both run but value / output / observable memory differ →
  **miscompile**.

"Observable memory" excludes the stack segment: linkage code spills
callee-saved registers there and the unoptimized reference has no
linkage code at all, so stack residue differs harmlessly.

Compile-time failures are findings too: a pass raising is a **crash**,
and a compiled module the IR verifier rejects (or a pipeline whose own
selective verification fires) is a **verifier-reject**.

Each finding is bisected by replaying the pipeline one pass at a time
on a fresh clone and re-testing the failure signature after every pass;
the first pass that introduces the signature is named guilty.

**Executor-vs-executor mode** (``xengine:`` sweep keys): instead of
comparing unoptimized-vs-compiled behaviour, run the *same* compiled
module under both the tree-walking interpreter and the closure-compiled
engine and demand bit-identical observations — value, fault class and
message, final memory, output, poison events, step count and block
counts. Any disagreement is an ``engine-divergence`` finding blamed on
the diverging function (there is no guilty pass: the program is the
same on both sides, the executors differ). ``xengine:none`` checks the
uncompiled module; ``xengine:<config>`` checks the module compiled
under that sweep config, so scheduler-shaped code (speculation, modulo
prologs) exercises the engine too.
"""

import re
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module, STACK_BASE
from repro.ir.printer import format_module
from repro.ir.verifier import verify_module
from repro.machine.interpreter import Interpreter, MachineState
from repro.pipeline import baseline_passes, compile_module, vliw_passes
from repro.robustness.diffcheck import EntryOutcome, derive_entries, observe
from repro.transforms.pass_manager import PassContext, PassManager

#: The paged stack segment: [STACK_BASE - 0x10000, STACK_BASE + 0x1000).
#: Addresses here are linkage spill slots, not program data.
_STACK_LO = STACK_BASE - 0x10000
_STACK_HI = STACK_BASE + 0x1000

_VERIFY_FAIL_RE = re.compile(r"IR verification failed after pass '([^']+)'")


def observable_memory(memory: Dict[int, int]) -> Dict[int, int]:
    """Final memory minus the stack segment (see module docstring)."""
    return {
        addr: val
        for addr, val in memory.items()
        if not (_STACK_LO <= addr < _STACK_HI)
    }


@dataclass
class SweepConfig:
    """One compilation configuration in the sweep."""

    key: str
    level: str
    unroll_factor: int = 2
    software_pipelining: bool = True
    disable: Tuple[str, ...] = ()
    pipeliner: str = "swp"
    #: Optional compact fault-plan spec (``pass:kind[:n]``) injected into
    #: the pipeline — the serve triage worker replays production crash
    #: bundles from fault drills this way. Not part of ``key``: the key
    #: names the clean configuration the plan perturbs.
    fault_plan: Optional[str] = None
    #: Executor-vs-executor mode: compare the tree-walking interpreter
    #: against the closure engine on this config's compiled module
    #: instead of comparing against the unoptimized reference.
    xengine: bool = False

    def _plan(self):
        """A fresh plan per compile: FaultSpec activation counts are
        stateful, so sharing one instance would fire on the first
        compile only."""
        if not self.fault_plan:
            return None
        from repro.robustness.faults import FaultPlan

        plan = FaultPlan.parse(self.fault_plan)
        plan.lenient = True
        return plan

    def compile(self, module: Module, verify: bool = True):
        return compile_module(
            module,
            level=self.level,
            unroll_factor=self.unroll_factor,
            software_pipelining=self.software_pipelining,
            disable=list(self.disable) or None,
            pipeliner=self.pipeliner,
            verify=verify,
            fault_plan=self._plan(),
        )

    def passes(self):
        if self.level == "base":
            passes = baseline_passes()
        else:
            passes = vliw_passes(
                software_pipelining=self.software_pipelining,
                unroll_factor=self.unroll_factor,
                disable=list(self.disable) or None,
                pipeliner=self.pipeliner,
            )
        plan = self._plan()
        return plan.apply(passes) if plan is not None else passes


#: Single-pass ablations worth sweeping: each removes one rewrite the
#: others must then cope without (interaction bugs surface this way).
ABLATION_PASSES = (
    "loop-memory-motion",
    "unspeculation",
    "vliw-scheduling",
    "limited-combining",
    "bb-expansion",
    "prolog-tailoring",
)


def sweep_configs(level: str = "vliw", quick: bool = False) -> List[SweepConfig]:
    """The configurations the oracle compiles each module under."""
    if level == "base":
        return [SweepConfig("base", "base")]
    configs = [
        SweepConfig("vliw:u2:swp", "vliw", 2, True),
        SweepConfig("vliw:u2:modulo", "vliw", 2, True, pipeliner="modulo"),
        SweepConfig("vliw:u1:swp", "vliw", 1, True),
        SweepConfig("vliw:u4:swp", "vliw", 4, True),
        SweepConfig("vliw:u2:noswp", "vliw", 2, False),
        SweepConfig("vliw:u1:modulo", "vliw", 1, True, pipeliner="modulo"),
        SweepConfig("vliw:u4:modulo", "vliw", 4, True, pipeliner="modulo"),
        SweepConfig(
            "vliw:u2:modulo-opt", "vliw", 2, True, pipeliner="modulo-opt"
        ),
    ]
    if quick:
        return configs[:2]
    for name in ABLATION_PASSES:
        configs.append(
            SweepConfig(f"vliw:u2:swp:no-{name}", "vliw", 2, True, (name,))
        )
    return configs


def config_from_key(key: str) -> SweepConfig:
    """Rebuild a :class:`SweepConfig` from its ``key`` string.

    Keys come from two places: the oracle's own sweeps (always valid)
    and the user-typed ``repro fuzz --configs`` list — so unknown
    segments are rejected loudly instead of silently falling back to
    the defaults (a typo'd backend name would otherwise sweep plain
    ``swp`` under the misspelled key and "find" nothing).
    """
    if key.startswith("xengine:"):
        rest = key[len("xengine:"):]
        if rest == "none":
            return SweepConfig(key, "none", xengine=True)
        return _dc_replace(config_from_key(rest), key=key, xengine=True)
    if key == "base":
        return SweepConfig("base", "base")
    parts = key.split(":")
    if parts[0] != "vliw":
        raise ValueError(
            f"unknown sweep config {key!r}: expected 'base', "
            "'vliw[:u<N>][:swp|noswp|modulo|modulo-opt][:no-<pass>...]', "
            "or 'xengine:none' / 'xengine:<config>'"
        )
    unroll = 2
    swp = True
    pipeliner = "swp"
    disable: List[str] = []
    for part in parts[1:]:
        if part.startswith("u") and part[1:].isdigit():
            unroll = int(part[1:])
        elif part == "swp":
            swp = True
        elif part == "noswp":
            swp = False
        elif part in ("modulo", "modulo-opt"):
            swp = True
            pipeliner = part
        elif part.startswith("no-"):
            name = part[3:]
            known = {p.name for p in vliw_passes()}
            if name not in known:
                raise ValueError(
                    f"sweep config {key!r} disables unknown pass "
                    f"{name!r}; pipeline has: {', '.join(sorted(known))}"
                )
            disable.append(name)
        else:
            raise ValueError(
                f"unknown segment {part!r} in sweep config {key!r}: "
                "expected u<N>, swp, noswp, modulo, modulo-opt, "
                "or no-<pass>"
            )
    return SweepConfig(key, "vliw", unroll, swp, tuple(disable), pipeliner)


@dataclass
class Finding:
    """One confirmed divergence, ready for reduction / filing."""

    seed: int
    config: str
    #: "miscompile" | "containment" | "crash" | "verifier-reject"
    #: | "engine-divergence"
    kind: str
    detail: str = ""
    fn: str = ""
    args: Tuple[int, ...] = ()
    mem_model: str = ""
    #: Pass named by bisection (or parsed from the verifier message).
    guilty: str = ""
    #: Textual IR of the module that produced the finding.
    source: str = ""

    def signature(self) -> Tuple[str, str]:
        """What makes a finding "unique" for dedup: failure kind + pass."""
        return (self.kind, self.guilty)

    def describe(self) -> str:
        where = f" {self.fn}{self.args} [{self.mem_model}]" if self.fn else ""
        guilty = f" guilty={self.guilty}" if self.guilty else ""
        return (
            f"seed={self.seed} config={self.config} {self.kind}{where}"
            f"{guilty}: {self.detail}"
        )


@dataclass
class ExecObservation:
    """Everything one executor lets us observe about one entry run."""

    kind: str  # "ok" | "error"
    error_class: str = ""
    detail: str = ""
    value: int = 0
    output: Tuple[int, ...] = ()
    memory: Dict[int, int] = field(default_factory=dict)
    steps: int = 0
    block_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    poison_events: int = 0


def observe_exec(executor, fn_name: str, args, mem_model: str) -> ExecObservation:
    """Run one entry on an already-constructed executor and record
    *everything* it exposes — including step counts and block counts on
    fault paths, which :func:`~repro.robustness.diffcheck.observe`
    discards (``executor.steps``/``block_counts`` stay readable after
    the exception; both executors guarantee that)."""
    state = MachineState(mem_model=mem_model)
    try:
        result = executor.run(fn_name, list(args), state)
    except Exception as exc:  # noqa: BLE001 — the *class* is the observation
        return ExecObservation(
            "error",
            error_class=type(exc).__name__,
            detail=str(exc),
            memory=dict(state.snapshot_mem()),
            steps=executor.steps,
            block_counts=dict(executor.block_counts),
            poison_events=state.poison_events,
        )
    return ExecObservation(
        "ok",
        value=result.value,
        output=tuple(state.output),
        memory=dict(state.snapshot_mem()),
        steps=result.steps,
        block_counts=dict(result.block_counts or {}),
        poison_events=state.poison_events,
    )


def _diff_observations(a: ExecObservation, b: ExecObservation) -> str:
    """First observable difference between tree (``a``) and closure
    (``b``), or ``""`` when they agree bit-for-bit."""
    if a.kind != b.kind:
        return (
            f"tree {a.kind} ({a.error_class or a.value}) but closure "
            f"{b.kind} ({b.error_class or b.value})"
        )
    if a.error_class != b.error_class:
        return f"fault class {a.error_class} != {b.error_class}"
    if a.detail != b.detail:
        return f"fault detail {a.detail!r} != {b.detail!r}"
    if a.value != b.value:
        return f"value {a.value} != {b.value}"
    if a.output != b.output:
        return f"output {list(a.output)[:8]} != {list(b.output)[:8]}"
    if a.steps != b.steps:
        return f"step count {a.steps} != {b.steps}"
    if a.block_counts != b.block_counts:
        delta = sorted(
            key
            for key in set(a.block_counts) | set(b.block_counts)
            if a.block_counts.get(key, 0) != b.block_counts.get(key, 0)
        )[:4]
        return "block counts diverged at " + ", ".join(map(str, delta))
    if a.memory != b.memory:
        delta = sorted(
            addr
            for addr in set(a.memory) | set(b.memory)
            if a.memory.get(addr, 0) != b.memory.get(addr, 0)
        )[:4]
        return "memory diverged at " + ", ".join(hex(x) for x in delta)
    if a.poison_events != b.poison_events:
        return f"poison events {a.poison_events} != {b.poison_events}"
    return ""


@dataclass
class OracleConfig:
    """Knobs for one oracle run."""

    max_steps: int = 200_000
    argsets_per_function: int = 3
    mem_models: Tuple[str, ...] = ("flat", "paged")
    bisect: bool = True
    quick: bool = False
    #: Executor for the reference-vs-compiled observations ("tree" or
    #: "closure"); ``xengine:`` sweep configs always run both.
    engine: str = "tree"


class Oracle:
    """Differential check of one module across the config sweep."""

    def __init__(self, cfg: Optional[OracleConfig] = None):
        self.cfg = cfg or OracleConfig()

    # -- outcome comparison -------------------------------------------------

    def classify_pair(
        self, base: EntryOutcome, after: EntryOutcome, mem_model: str
    ) -> Optional[Tuple[str, str]]:
        """``(kind, detail)`` when the pair diverges, else None."""
        if base.kind == "limit" or after.kind == "limit":
            return None
        if base.kind == "error":
            # Fault-class agreement; anything else is inconclusive (a
            # pass may remove a fault it proved dead).
            return None
        if after.kind == "error":
            kind = "containment" if mem_model == "paged" else "miscompile"
            return (
                kind,
                f"ran unoptimized but compiled module faults with "
                f"{after.error_class}: {after.detail}",
            )
        if after.value != base.value:
            return ("miscompile", f"value {after.value} != {base.value}")
        if after.output != base.output:
            return (
                "miscompile",
                f"output {after.output[:8]} != {base.output[:8]}",
            )
        base_mem = observable_memory(base.memory)
        after_mem = observable_memory(after.memory)
        if after_mem != base_mem:
            delta = sorted(
                addr
                for addr in set(base_mem) | set(after_mem)
                if base_mem.get(addr, 0) != after_mem.get(addr, 0)
            )[:4]
            return (
                "miscompile",
                "observable memory diverged at "
                + ", ".join(hex(a) for a in delta),
            )
        return None

    # -- checking one module ------------------------------------------------

    def check_module(
        self,
        module: Module,
        seed: int,
        level: str = "vliw",
        configs: Optional[Sequence[SweepConfig]] = None,
    ) -> List[Finding]:
        """All findings for ``module`` (at most one per sweep config)."""
        cfg = self.cfg
        sweeps = list(configs or sweep_configs(level, quick=cfg.quick))
        entries = derive_entries(module, seed, cfg.argsets_per_function)
        if all(sweep.xengine for sweep in sweeps):
            # Executor-vs-executor sweeps never consult the unoptimized
            # reference — both observations come from the same module.
            baselines: Dict = {}
        else:
            baselines = {
                (fn, args, mm): observe(
                    module, fn, args, cfg.max_steps, mm, cfg.engine
                )
                for fn, args in entries
                for mm in cfg.mem_models
            }
        source = format_module(module)
        findings: List[Finding] = []
        for sweep in sweeps:
            finding = self._check_config(module, seed, sweep, entries, baselines)
            if finding is not None:
                finding.source = source
                findings.append(finding)
        return findings

    def _check_config(
        self,
        module: Module,
        seed: int,
        sweep: SweepConfig,
        entries: Sequence[Tuple[str, Tuple[int, ...]]],
        baselines: Dict,
    ) -> Optional[Finding]:
        cfg = self.cfg
        try:
            compiled = sweep.compile(module).module
        except RuntimeError as exc:
            match = _VERIFY_FAIL_RE.search(str(exc))
            if match:
                return Finding(
                    seed, sweep.key, "verifier-reject", str(exc),
                    guilty=match.group(1),
                )
            return self._compile_crash(module, seed, sweep, exc)
        except Exception as exc:  # noqa: BLE001 — any pass blowup is a finding
            return self._compile_crash(module, seed, sweep, exc)
        try:
            verify_module(compiled)
        except Exception as exc:
            finding = Finding(
                seed, sweep.key, "verifier-reject",
                f"compiled module rejected: {exc}",
            )
            if cfg.bisect:
                finding.guilty = self._bisect(
                    module, sweep, lambda m: not _verifies(m)
                )
            return finding
        if sweep.xengine:
            return self._check_engines(compiled, seed, sweep, entries)
        for mm in cfg.mem_models:
            for fn, args in entries:
                base = baselines[(fn, args, mm)]
                after = observe(compiled, fn, args, cfg.max_steps, mm, cfg.engine)
                verdict = self.classify_pair(base, after, mm)
                if verdict is None:
                    continue
                kind, detail = verdict
                finding = Finding(
                    seed, sweep.key, kind, detail,
                    fn=fn, args=args, mem_model=mm,
                )
                if cfg.bisect:
                    finding.guilty = self._bisect_behaviour(
                        module, sweep, fn, args, mm, base
                    )
                return finding
        return None

    def _check_engines(
        self,
        compiled: Module,
        seed: int,
        sweep: SweepConfig,
        entries: Sequence[Tuple[str, Tuple[int, ...]]],
    ) -> Optional[Finding]:
        """Tree-walker vs closure engine on the same compiled module.

        One executor of each kind is built per module and *reused*
        across every entry and memory model — per-run state reset under
        reuse is part of the contract being checked (the interpreter's
        missing reset was exactly such a bug). Block counts are always
        recorded: they distinguish divergences that value comparison
        alone would miss (same result, different path).
        """
        from repro.machine.engine import ClosureEngine

        cfg = self.cfg
        tree = Interpreter(compiled, max_steps=cfg.max_steps, count_blocks=True)
        clos = ClosureEngine(compiled, max_steps=cfg.max_steps, count_blocks=True)
        for mm in cfg.mem_models:
            for fn, args in entries:
                a = observe_exec(tree, fn, args, mm)
                b = observe_exec(clos, fn, args, mm)
                diff = _diff_observations(a, b)
                if diff:
                    # No guilty *pass* — the program is identical on
                    # both sides; blame the diverging function.
                    return Finding(
                        seed, sweep.key, "engine-divergence", diff,
                        fn=fn, args=args, mem_model=mm, guilty=fn,
                    )
        return None

    def _compile_crash(self, module, seed, sweep, exc) -> Finding:
        finding = Finding(
            seed, sweep.key, "crash", f"{type(exc).__name__}: {exc}"
        )
        if self.cfg.bisect:
            finding.guilty = self._bisect(module, sweep, None)
        return finding

    # -- bisection ----------------------------------------------------------

    def _bisect_behaviour(
        self,
        module: Module,
        sweep: SweepConfig,
        fn: str,
        args: Tuple[int, ...],
        mem_model: str,
        base: EntryOutcome,
    ) -> str:
        """Name the first pass whose output diverges on the failing entry."""

        def diverges(work: Module) -> bool:
            after = observe(
                work, fn, args, self.cfg.max_steps, mem_model, self.cfg.engine
            )
            return self.classify_pair(base, after, mem_model) is not None

        return self._bisect(module, sweep, diverges)

    def _bisect(
        self,
        module: Module,
        sweep: SweepConfig,
        failed: Optional[Callable[[Module], bool]],
    ) -> str:
        """Replay the pipeline pass-at-a-time; first failing pass wins.

        ``failed`` re-tests the failure signature on the intermediate
        module (every pass boundary is a semantically complete program,
        so interpreting mid-pipeline states is legitimate). ``None``
        means the failure was a compile-time exception: the guilty pass
        is simply the one that raises.
        """
        work = module.clone()
        ctx = PassContext(work)
        for pss in sweep.passes():
            try:
                PassManager([pss], verify=False).run(work, ctx)
            except Exception:
                return pss.name
            if failed is not None and failed(work):
                return pss.name
        return ""


def _verifies(module: Module) -> bool:
    try:
        verify_module(module)
        return True
    except Exception:
        return False
