"""Differential IR fuzzing: generator, oracle, reducer, corpus.

The fuzzer closes the gap between the six hand-written workloads and
the "handle as many scenarios as you can imagine" correctness story:

- :mod:`repro.fuzz.generate` — a seeded, deterministic program
  generator emitting verifier-clean modules biased toward the CFG
  shapes the paper's passes rewrite (reducible and irreducible loops,
  joins, conditional memory traffic, calls, data sections).
- :mod:`repro.fuzz.oracle` — a differential oracle comparing the
  unoptimized module against ``base`` and ``vliw`` compilations across
  a config sweep (unroll factors, software pipelining, single-pass
  ablations) on both memory models, reusing diffcheck's
  fault-class-agreement contract, with per-pass bisection.
- :mod:`repro.fuzz.residue` — the defined-behaviour contract around
  calls: a dataflow check that no instruction reads a call-clobbered
  register some optimized callee may have left different residue in.
- :mod:`repro.fuzz.reduce` — a delta-debugging reducer that shrinks a
  failing module while preserving the failure signature.
- :mod:`repro.fuzz.corpus` — persistence: every reduced failure
  becomes a permanent regression test under ``tests/fuzz/corpus/``.
"""

from repro.fuzz.generate import GenConfig, generate_module, generate_source
from repro.fuzz.oracle import Finding, Oracle, OracleConfig, sweep_configs
from repro.fuzz.reduce import reduce_module
from repro.fuzz.residue import call_residue_violations, reads_call_residue
from repro.fuzz.corpus import CorpusCase, load_cases, save_case

__all__ = [
    "GenConfig",
    "generate_module",
    "generate_source",
    "Finding",
    "Oracle",
    "OracleConfig",
    "sweep_configs",
    "reduce_module",
    "call_residue_violations",
    "reads_call_residue",
    "CorpusCase",
    "load_cases",
    "save_case",
]
