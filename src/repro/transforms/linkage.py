"""Baseline linkage lowering: save/restore callee-saved registers.

"In the RS/6000 linkage conventions, a register belonging to a particular
subset of the machine registers must be saved upon entry and restored
upon exit in a procedure, if that register is killed (overwritten) inside
the procedure."

This pass implements the *untailored* strategy the paper's figure labels
"WITHOUT TAILORED PROLOG (saves all registers that are killed anywhere in
the procedure)": one frame allocation and a save of every killed
callee-saved register at entry, and the matching restores before every
return. :class:`~repro.transforms.prolog_tailoring.PrologTailoring` is
the optimised alternative.

Save/restore instructions are marked with ``attrs['save']``/
``attrs['restore']`` (plus the frame adjusts with ``attrs['frame']``) so
other passes leave them pinned in place.
"""

from typing import List, Set

from repro.ir.function import Function
from repro.ir.instructions import Instr, make_alui, make_load, make_store
from repro.ir.operands import Reg, SP
from repro.transforms.pass_manager import Pass, PassContext


def killed_callee_saved(fn: Function) -> List[Reg]:
    """Callee-saved registers written anywhere in the function."""
    killed: Set[Reg] = set()
    for instr in fn.instructions():
        if instr.is_call:
            continue  # callees preserve these by induction
        for reg in instr.defs():
            if reg.is_callee_saved:
                killed.add(reg)
    return sorted(killed, key=lambda r: r.index)


def frame_slot(reg: Reg) -> int:
    """Stack offset (from the adjusted SP) of a register's save slot."""
    return 4 * (reg.index - 13)


FRAME_SIZE = 4 * (32 - 13)


def make_save(reg: Reg) -> Instr:
    instr = make_store(frame_slot(reg), SP, reg)
    instr.attrs["save"] = True
    return instr


def make_restore(reg: Reg) -> Instr:
    instr = make_load(reg, frame_slot(reg), SP)
    instr.attrs["restore"] = True
    return instr


def _frame_adjust(amount: int) -> Instr:
    instr = make_alui("AI", SP, SP, amount)
    instr.attrs["frame"] = True
    instr.attrs["pinned"] = True
    return instr


class LinkageLowering(Pass):
    """Insert the untailored prolog/epilog."""

    name = "linkage-lowering"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        if any(i.attrs.get("save") or i.attrs.get("frame") for i in fn.instructions()):
            return False  # already lowered
        killed = killed_callee_saved(fn)
        if not killed:
            return False

        entry = fn.entry
        prolog: List[Instr] = [_frame_adjust(-FRAME_SIZE)]
        prolog.extend(make_save(reg) for reg in killed)
        entry.instrs[0:0] = prolog
        ctx.bump("linkage.saves", len(killed))

        for bb in fn.blocks:
            term = bb.terminator
            if term is not None and term.is_return:
                epilog: List[Instr] = [make_restore(reg) for reg in killed]
                epilog.append(_frame_adjust(FRAME_SIZE))
                at = len(bb.instrs) - 1
                bb.instrs[at:at] = epilog
        return True
