"""Liveness-based dead code elimination.

Removes instructions whose destinations are dead and which have no side
effects. Instructions pinned by linkage or profiling attrs (``save``,
``restore``, ``counter``) are never removed — their effect is outside the
function's dataflow (caller's registers, the profile file).
"""

from repro.ir.function import Function
from repro.analysis.alias import MemoryModel
from repro.analysis.liveness import compute_liveness, liveness_per_instr
from repro.transforms.pass_manager import Pass, PassContext

_PINNED_ATTRS = ("save", "restore", "counter", "pinned")


def _is_pinned(instr) -> bool:
    return any(instr.attrs.get(a) for a in _PINNED_ATTRS)


class DeadCodeElimination(Pass):
    """Iterated removal of dead, effect-free instructions."""

    name = "dce"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed_any = False
        while True:
            live = compute_liveness(fn)
            memory = MemoryModel(fn, ctx.module)
            changed = False
            for bb in fn.blocks:
                live_sets = liveness_per_instr(bb, live.live_at_block_exit(bb.label))
                keep = []
                for i, instr in enumerate(bb.instrs):
                    removable = (
                        not instr.is_terminator
                        and not instr.has_side_effects
                        and not _is_pinned(instr)
                        and instr.defs()
                        and all(reg not in live_sets[i] for reg in instr.defs())
                        and instr.opcode != "NOP"
                        and not (instr.is_memory and memory.is_volatile_ref(instr))
                    )
                    if removable:
                        changed = True
                        ctx.bump("dce.removed")
                    else:
                        keep.append(instr)
                if len(keep) != len(bb.instrs):
                    bb.instrs[:] = keep
            if not changed:
                break
            changed_any = True
        return changed_any
