"""Prolog tailoring: push callee-saved register saves down the CFG.

Instead of saving every killed callee-saved register at procedure entry,
the saves are delayed "as late as possible into the procedure, so that
each execution path therein contains a reduced number of such store
instructions. However, register save operations are never pushed inside
loops."

To keep stack unwinding after interrupts possible, the paper enforces:
"at any point in the procedure, all paths reaching this point from the
start of the procedure have the same set of saved registers." The
algorithm places saves on edges of the block-cut tree of the
(loop-collapsed, undirected) flow graph:

1. collapse outermost loops into single nodes; compute the biconnected
   components and articulation points of the undirected flow graph
   (Tarjan, via networkx) and build the bipartite block-cut tree rooted
   at the entry node;
2. compute ``MustKill`` bottom-up: for each tree node, the registers
   killed inside it plus the *intersection* of its children's MustKill
   sets — the registers definitely killed from that node onward
   regardless of path (at the paper's component granularity);
3. walking the tree top-down, a register in ``MustKill(n)`` not yet
   saved on the path from the root is saved on every actual flow edge
   entering ``n`` from its parent.

Every path from the entry to a tree node crosses exactly the tree edges
on the root path, so all paths reaching any point have performed the
same saves — the invariant :func:`check_unwind_invariant` verifies.
Restores are placed before each ``RET`` for exactly the saved set of
its node.
"""

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.operands import Reg
from repro.analysis.cfg import reachable_blocks
from repro.analysis.loops import find_natural_loops, insert_before_terminator, split_edge
from repro.transforms.linkage import (
    FRAME_SIZE,
    _frame_adjust,
    killed_callee_saved,
    make_restore,
    make_save,
)
from repro.transforms.pass_manager import Pass, PassContext


# --------------------------------------------------------------------------
# Graph scaffolding
# --------------------------------------------------------------------------


def _collapse_loops(fn: Function) -> Dict[str, int]:
    """Map each reachable block label to a condensed node id.

    All blocks of an outermost loop share one node (saves must never land
    inside a loop); every other block is its own node.
    """
    loops = find_natural_loops(fn)
    outermost = [lp for lp in loops if lp.parent is None]
    node_of: Dict[str, int] = {}
    next_id = 0
    for loop in outermost:
        for label in loop.body:
            if label not in node_of:
                node_of[label] = next_id
        next_id += 1
    for label in sorted(reachable_blocks(fn)):
        if label not in node_of:
            node_of[label] = next_id
            next_id += 1
    return node_of


def _condensed_edges(fn: Function, node_of: Dict[str, int]) -> Set[Tuple[int, int]]:
    edges: Set[Tuple[int, int]] = set()
    for bb in fn.blocks:
        if bb.label not in node_of:
            continue
        for succ in fn.successors(bb):
            if succ.label not in node_of:
                continue
            a, b = node_of[bb.label], node_of[succ.label]
            if a != b:
                edges.add((min(a, b), max(a, b)))
    return edges


class _BlockCutTree:
    """Bipartite tree of cut vertices and biconnected components.

    Node keys: ``("v", vertex)`` for the entry vertex and every
    articulation point; ``("c", i)`` for component i. Children/parent
    links are tree edges; each component child knows its parent cut
    vertex and vice versa.
    """

    def __init__(self, vertices: Set[int], edges: Set[Tuple[int, int]], entry: int):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(vertices)
        graph.add_edges_from(edges)
        self.components: List[Set[int]] = [set(c) for c in nx.biconnected_components(graph)]
        covered = set().union(*self.components) if self.components else set()
        for v in sorted(vertices - covered):
            self.components.append({v})
        cuts = set(nx.articulation_points(graph))
        cuts.add(entry)  # root at the entry even when it is not a cut
        self.cuts = cuts

        self.children: Dict[Tuple, List[Tuple]] = {}
        self.parent: Dict[Tuple, Optional[Tuple]] = {}

        comp_of_vertex: Dict[int, List[int]] = {}
        for i, comp in enumerate(self.components):
            for v in comp:
                comp_of_vertex.setdefault(v, []).append(i)

        self.root: Tuple = ("v", entry)
        self.parent[self.root] = None
        self.children[self.root] = []
        frontier = [self.root]
        seen = {self.root}
        while frontier:
            node = frontier.pop()
            kind, payload = node
            kids: List[Tuple] = []
            if kind == "v":
                for ci in comp_of_vertex.get(payload, []):
                    child = ("c", ci)
                    if child not in seen:
                        seen.add(child)
                        self.parent[child] = node
                        kids.append(child)
                        frontier.append(child)
            else:
                for v in self.components[payload]:
                    if v in self.cuts:
                        child = ("v", v)
                        if child not in seen:
                            seen.add(child)
                            self.parent[child] = node
                            kids.append(child)
                            frontier.append(child)
            self.children[node] = kids
        self.nodes = seen

    def postorder(self) -> List[Tuple]:
        order: List[Tuple] = []
        stack = [(self.root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                order.append(node)
            else:
                stack.append((node, True))
                for child in self.children.get(node, []):
                    stack.append((child, False))
        return order

    def node_of_vertex(self, v: int) -> Optional[Tuple]:
        """The tree node owning vertex ``v``."""
        if ("v", v) in self.nodes:
            return ("v", v)
        for i, comp in enumerate(self.components):
            if v in comp and ("c", i) in self.nodes:
                return ("c", i)
        return None


# --------------------------------------------------------------------------
# The pass
# --------------------------------------------------------------------------


class PrologTailoring(Pass):
    """Tailored prolog/epilog placement."""

    name = "prolog-tailoring"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        if any(i.attrs.get("save") or i.attrs.get("frame") for i in fn.instructions()):
            return False  # already lowered
        killed = killed_callee_saved(fn)
        if not killed:
            return False
        killed_set = set(killed)

        node_of = _collapse_loops(fn)
        vertices = set(node_of.values())
        edges = _condensed_edges(fn, node_of)
        entry_vertex = node_of[fn.entry.label]
        tree = _BlockCutTree(vertices, edges, entry_vertex)

        blocks_of_vertex: Dict[int, List[BasicBlock]] = {}
        for bb in fn.blocks:
            v = node_of.get(bb.label)
            if v is not None:
                blocks_of_vertex.setdefault(v, []).append(bb)

        # Kills per tree node: cut vertices own their own blocks;
        # components own their interior (non-cut) vertices.
        kills: Dict[Tuple, Set[Reg]] = {node: set() for node in tree.nodes}

        def vertex_kills(v: int) -> Set[Reg]:
            out: Set[Reg] = set()
            for bb in blocks_of_vertex.get(v, []):
                for instr in bb.instrs:
                    if instr.is_call:
                        continue
                    for reg in instr.defs():
                        if reg in killed_set:
                            out.add(reg)
            return out

        for node in tree.nodes:
            kind, payload = node
            if kind == "v":
                kills[node] = vertex_kills(payload)
            else:
                for v in tree.components[payload]:
                    if v not in tree.cuts:
                        kills[node] |= vertex_kills(v)

        # MustKill bottom-up: own kills plus the intersection over
        # children (alternative continuations).
        must_kill: Dict[Tuple, Set[Reg]] = {}
        for node in tree.postorder():
            kids = tree.children.get(node, [])
            if kids:
                inter = set.intersection(*(must_kill[k] for k in kids))
            else:
                inter = set()
            must_kill[node] = kills[node] | inter

        # Top-down save placement.
        saved_on_path: Dict[Tuple, FrozenSet[Reg]] = {}
        save_edges: List[Tuple[str, str, List[Reg]]] = []
        prolog_regs = sorted(must_kill[tree.root], key=lambda r: r.index)
        saved_on_path[tree.root] = frozenset(prolog_regs)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            for child in tree.children.get(node, []):
                new_regs = sorted(
                    must_kill[child] - saved_on_path[node], key=lambda r: r.index
                )
                saved_on_path[child] = saved_on_path[node] | set(new_regs)
                if new_regs:
                    for src_label, dst_label in self._entry_edges(
                        fn, node_of, tree, node, child
                    ):
                        save_edges.append((src_label, dst_label, new_regs))
                stack.append(child)

        # Registers killed only in unreachable code never got a save
        # point; fold them into the prolog so the unwind table stays
        # total.
        accounted = set(prolog_regs)
        for _, _, regs in save_edges:
            accounted.update(regs)
        leftovers = sorted(killed_set - accounted, key=lambda r: r.index)
        prolog_regs = sorted(set(prolog_regs) | set(leftovers), key=lambda r: r.index)

        self._emit(fn, prolog_regs, save_edges, saved_on_path, node_of, tree, ctx)
        ctx.bump("prolog-tailoring.functions")
        return True

    def _entry_edges(
        self,
        fn: Function,
        node_of: Dict[str, int],
        tree: _BlockCutTree,
        parent: Tuple,
        child: Tuple,
    ) -> List[Tuple[str, str]]:
        """CFG edges crossing from the parent tree node into the child."""
        edges: List[Tuple[str, str]] = []
        if parent[0] == "v":
            # vertex -> component: edges from the cut vertex's blocks into
            # the component's other vertices.
            v = parent[1]
            targets = set(tree.components[child[1]]) - {v}
            for bb in fn.blocks:
                if node_of.get(bb.label) != v:
                    continue
                for succ in fn.successors(bb):
                    if node_of.get(succ.label) in targets:
                        edges.append((bb.label, succ.label))
        else:
            # component -> cut vertex: edges from the component's vertices
            # into the cut vertex.
            w = child[1]
            sources = set(tree.components[parent[1]]) - {w}
            for bb in fn.blocks:
                if node_of.get(bb.label) not in sources:
                    continue
                for succ in fn.successors(bb):
                    if node_of.get(succ.label) == w:
                        edges.append((bb.label, succ.label))
        return edges

    # -- emission ---------------------------------------------------------

    def _emit(
        self,
        fn: Function,
        prolog_regs: List[Reg],
        save_edges: List[Tuple[str, str, List[Reg]]],
        saved_on_path: Dict[Tuple, FrozenSet[Reg]],
        node_of: Dict[str, int],
        tree: _BlockCutTree,
        ctx: PassContext,
    ) -> None:
        # Frame allocation always happens at entry (cheap); saves may not.
        entry = fn.entry
        prolog = [_frame_adjust(-FRAME_SIZE)]
        prolog.extend(make_save(reg) for reg in prolog_regs)
        entry.instrs[0:0] = prolog
        ctx.bump("prolog-tailoring.prolog-saves", len(prolog_regs))

        # Edge saves.
        for src_label, dst_label, regs in save_edges:
            src = fn.block(src_label)
            dst = fn.block(dst_label)
            edge_bb = split_edge(fn, src, dst)
            for reg in regs:
                insert_before_terminator(edge_bb, make_save(reg))
                ctx.bump("prolog-tailoring.edge-saves")

        # Restores: each RET restores the saved set of its tree node
        # (plus prolog leftovers).
        base = set(prolog_regs)
        for bb in list(fn.blocks):
            term = bb.terminator
            if term is None or not term.is_return:
                continue
            v = node_of.get(bb.label)
            node = tree.node_of_vertex(v) if v is not None else None
            regs = set(saved_on_path.get(node, frozenset())) | base
            epilog = [make_restore(reg) for reg in sorted(regs, key=lambda r: r.index)]
            epilog.append(_frame_adjust(FRAME_SIZE))
            at = len(bb.instrs) - 1
            bb.instrs[at:at] = epilog


# --------------------------------------------------------------------------
# Unwind invariant checking (used by tests and EXPERIMENTS)
# --------------------------------------------------------------------------


def check_unwind_invariant(fn: Function) -> None:
    """Assert every block is reached with one consistent saved-register set.

    Walks the CFG propagating the set of executed saves; raises
    ``AssertionError`` on a merge conflict — which would make the paper's
    back-tracing exception unwinder ambiguous.
    """
    from collections import deque

    entry = fn.entry
    seen: Dict[str, FrozenSet[Reg]] = {}
    queue = deque([(entry.label, frozenset())])
    while queue:
        label, saved = queue.popleft()
        block = fn.block(label)
        current = set(saved)
        for instr in block.instrs:
            if instr.attrs.get("save"):
                current.add(instr.ra)
            if instr.attrs.get("restore"):
                current.discard(instr.rd)
        out = frozenset(current)
        for succ in fn.successors(block):
            prev = seen.get(succ.label)
            if prev is None:
                seen[succ.label] = out
                queue.append((succ.label, out))
            elif prev != out:
                raise AssertionError(
                    f"unwind invariant violated at {succ.label}: "
                    f"{sorted(r.name for r in prev)} vs "
                    f"{sorted(r.name for r in out)}"
                )


def dynamic_save_restore_count(trace) -> Tuple[int, int]:
    """(saves, restores) executed in an interpreter trace."""
    saves = sum(1 for instr, _ in trace if instr.attrs.get("save"))
    restores = sum(1 for instr, _ in trace if instr.attrs.get("restore"))
    return saves, restores
