"""Limited combining: collapse register copies into their last use across
basic blocks, duplicating join-shared code where necessary.

Classical value numbering collapses ``LR r4, r5; ...; A r6, r4, r7`` into
``A r6, r5, r7`` within one basic block. Limited combining (the paper's
cross-block generalisation) searches *through unconditional branches and
join points* for the last use of the copy's destination. When the path
crosses a join (a block with several predecessors), the instructions from
the join to the last use are duplicated onto a private path with the
destination register rewritten to the source, ending in a branch back to
the instruction following the last use; the original code stays in place
for the other joining paths.

The search window is bounded (the paper: "there is a limit to the number
of instructions scanned in this process"). The search stops early at
conditional branches, calls, returns, or a redefinition of either
register.
"""

from typing import List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instr, make_b
from repro.ir.operands import Reg
from repro.analysis.liveness import compute_liveness, liveness_per_instr
from repro.transforms.pass_manager import Pass, PassContext


class _Segment:
    """A run of instructions on the search path."""

    def __init__(self, block: BasicBlock, start: int, private: bool):
        self.block = block
        self.start = start
        self.end = start  # exclusive, grows as the walk proceeds
        self.private = private  # True when no other path reaches it

    def instrs(self) -> List[Instr]:
        return self.block.instrs[self.start : self.end]


class LimitedCombining(Pass):
    """Collapse ``LR`` copies into their last use across blocks."""

    name = "limited-combining"

    def __init__(self, window: int = 40, max_copies: int = 64):
        self.window = window
        self.max_copies = max_copies

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed = False
        for _ in range(self.max_copies):
            if not self._combine_one(fn, ctx):
                break
            changed = True
            ctx.bump("combining.copies-collapsed")
        return changed

    def _combine_one(self, fn: Function, ctx: PassContext) -> bool:
        preds = fn.predecessor_map()
        for block in fn.blocks:
            for idx, instr in enumerate(block.instrs):
                if not instr.is_copy or instr.rd == instr.ra:
                    continue
                plan = self._plan_walk(fn, preds, block, idx, instr.rd, instr.ra)
                if plan is not None:
                    self._apply(fn, block, idx, instr.rd, instr.ra, plan)
                    return True
        return False

    # -- search -------------------------------------------------------------

    def _plan_walk(
        self,
        fn: Function,
        preds,
        block: BasicBlock,
        copy_idx: int,
        dest: Reg,
        src: Reg,
    ) -> Optional[Tuple[List[_Segment], int]]:
        """Find segments covering [copy end .. last use of dest].

        Returns (segments, index_of_last_use_segment) or None. Each
        segment's ``end`` already stops right after the last use when the
        last use lies inside it.
        """
        segments: List[_Segment] = []
        seen_blocks = {block.label}
        scanned = 0
        last_use: Optional[Tuple[int, int]] = None  # (segment idx, pos)

        seg = _Segment(block, copy_idx + 1, private=True)
        segments.append(seg)
        current = block
        while True:
            advanced = False
            for pos in range(seg.start, len(current.instrs)):
                ins = current.instrs[pos]
                if scanned >= self.window:
                    break
                scanned += 1
                if ins.is_call or (ins.is_terminator and not ins.is_uncond_branch):
                    # Conditional branch using dest still counts as a use?
                    # The paper stops the search here; so do we (before
                    # consuming the instruction).
                    break
                if ins.opcode in ("LU", "STU") and ins.base == dest:
                    # Update forms read *and write* the base through one
                    # field, so renaming the use would also redirect the
                    # update into ``src`` — clobbering it while it is
                    # still live (found by fuzzing). Not a collapsible
                    # use; the def check below ends the walk.
                    break
                if dest in ins.uses():
                    last_use = (len(segments) - 1, pos)
                if dest in ins.defs() or src in ins.defs():
                    # Redefinition ends the walk; a redefinition *after*
                    # the last use is fine because we stop at the last use.
                    break
                seg.end = pos + 1
                advanced = True
                if ins.is_uncond_branch:
                    break
            # Decide whether to follow an unconditional branch onward.
            follow: Optional[BasicBlock] = None
            if (
                seg.end > seg.start
                and current.instrs[seg.end - 1].is_uncond_branch
                and scanned < self.window
            ):
                target_label = current.instrs[seg.end - 1].target
                if target_label not in seen_blocks and fn.has_block(target_label):
                    follow = fn.block(target_label)
            elif (
                seg.end == len(current.instrs)
                and current.falls_through
                and current.terminator is None
                and scanned < self.window
            ):
                nxt = fn.layout_successor(current)
                if nxt is not None and nxt.label not in seen_blocks:
                    follow = nxt
            if follow is None:
                break
            seen_blocks.add(follow.label)
            private = len(preds.get(follow.label, [])) <= 1
            seg = _Segment(follow, 0, private=private)
            segments.append(seg)
            current = follow
            if not advanced and scanned >= self.window:
                break

        if last_use is None:
            return None
        # Trim segments to end at the last use.
        seg_idx, pos = last_use
        segments = segments[: seg_idx + 1]
        segments[seg_idx].end = pos + 1
        if segments[seg_idx].end <= segments[seg_idx].start:
            return None

        # dest must be dead after the last use.
        liveness = compute_liveness(fn)
        last_seg = segments[seg_idx]
        live = liveness_per_instr(
            last_seg.block, liveness.live_at_block_exit(last_seg.block.label)
        )
        if dest in live[last_seg.end - 1]:
            return None
        # The rewrite keeps src live until the (new) last use: make sure no
        # instruction between would clobber it -- already guaranteed by the
        # walk (src redefinition stops it).
        return segments, seg_idx

    # -- transformation -------------------------------------------------------

    def _apply(
        self,
        fn: Function,
        block: BasicBlock,
        copy_idx: int,
        dest: Reg,
        src: Reg,
        plan: Tuple[List[_Segment], int],
    ) -> None:
        segments, last_idx = plan
        mapping = {dest: src}

        # Split at the first non-private segment: everything before is
        # rewritten in place, everything from there on is duplicated.
        first_dup = None
        for i, seg in enumerate(segments):
            if not seg.private:
                first_dup = i
                break

        if first_dup is None:
            # Whole path is private: rewrite in place, drop the copy.
            for seg in segments:
                for ins in seg.instrs():
                    if dest in ins.uses():
                        ins.rename_uses(mapping)
            del block.instrs[copy_idx]
            return

        # In-place rewrite of the private prefix.
        for seg in segments[:first_dup]:
            for ins in seg.instrs():
                if dest in ins.uses():
                    ins.rename_uses(mapping)

        # Continuation point: right after the last use in the original.
        last_seg = segments[last_idx]
        cont_label = self._continuation_label(fn, last_seg)

        # Build the duplicate chain.
        dup = BasicBlock(fn.new_label("comb"))
        for seg in segments[first_dup:]:
            for ins in seg.instrs():
                clone = ins.clone()
                if ins.is_uncond_branch:
                    continue  # chain is linear; drop internal jumps
                if dest in clone.uses():
                    clone.rename_uses(mapping)
                dup.append(clone)
        dup.append(make_b(cont_label))
        fn.blocks.append(dup)

        # Our path now enters the duplicate: the private prefix ended
        # either with a jump into the first duplicated block (retarget
        # it) or by falling through (append an explicit branch; the
        # prefix block is private, so no other path is disturbed). An
        # empty prefix segment (end == 0: an empty block crossed by
        # fallthrough) always takes the append path.
        prefix_end_seg = segments[first_dup - 1]
        tail = (
            prefix_end_seg.block.instrs[prefix_end_seg.end - 1]
            if prefix_end_seg.end > 0
            else None
        )
        if tail is not None and tail.is_uncond_branch:
            tail.target = dup.label
        else:
            prefix_end_seg.block.append(make_b(dup.label))

        # Finally drop the copy itself.
        del block.instrs[copy_idx]

    def _continuation_label(self, fn: Function, last_seg: _Segment) -> str:
        """Label of the instruction following the last use, splitting the
        block when the last use is mid-block."""
        block = last_seg.block
        if last_seg.end >= len(block.instrs):
            nxt = fn.layout_successor(block)
            if block.terminator is None and nxt is not None:
                return nxt.label
            # Block ended exactly at the last use with no fallthrough
            # successor: split an empty tail to get a label.
        tail = BasicBlock(fn.new_label(f"cont.{block.label}"))
        tail.instrs = block.instrs[last_seg.end :]
        del block.instrs[last_seg.end :]
        fn.blocks.insert(fn.block_index(block) + 1, tail)
        return tail.label
