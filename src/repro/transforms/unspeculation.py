"""Unspeculation: push speculative code down under conditional branches.

A (group of) instruction(s) I preceding a conditional branch is
*speculative* when its results are only needed on one of the branch's two
target paths. Unspeculation deletes I from its original place and moves
it onto the target edge where its destinations are live, making it
non-speculative there (the other path no longer executes it).

Conditions (numbered as in the paper):

1. the destination registers of I are all dead on one target of the
   branch but not on the other;
2. instructions between I and the branch must not (a) set any source or
   destination register of I, (b) use any destination register of I, or
   (c) have side effects on memory locations I loads from;
3. I has no side effects (stores, calls, volatile accesses).

The algorithm follows the paper:

1. physically re-order blocks in reverse post-order (so single-entry
   single-exit constructs are laid out consecutively and can move as
   units);
2. identify the hierarchy of single-entry single-exit groups;
3. for each conditional branch, examine preceding instructions and
   groups in reverse order and push movable ones onto a target edge;
   groups can be pushed repeatedly under successive conditional
   branches. Code is never pushed into loops from the outside, but
   speculative code inside a loop can be pushed out of its exits.
"""

from typing import List, Optional, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.ir.operands import Reg
from repro.analysis.alias import MemoryModel
from repro.analysis.cfg import reverse_postorder
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import Loop, find_natural_loops, split_edge
from repro.analysis.regions import consecutive_sese_groups, run_instructions
from repro.transforms.layout import relayout_blocks
from repro.transforms.pass_manager import Pass, PassContext


def _has_side_effects(instr: Instr, memory: MemoryModel) -> bool:
    if instr.has_side_effects or instr.is_call:
        return True
    if instr.is_memory and (instr.is_store or memory.is_volatile_ref(instr)):
        return True
    return bool(instr.attrs.get("counter") or instr.attrs.get("pinned"))


class Unspeculation(Pass):
    """Push speculative instructions/groups under conditional branches."""

    name = "unspeculation"

    MAX_ROUNDS = 8

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        order = reverse_postorder(fn)
        # Keep unreachable blocks (at the end) so relayout stays total.
        ordered_labels = {bb.label for bb in order}
        order.extend(bb for bb in fn.blocks if bb.label not in ordered_labels)
        relayout_blocks(fn, order)

        changed_any = False
        for _ in range(self.MAX_ROUNDS):
            if not self._one_round(fn, ctx):
                break
            changed_any = True
        return changed_any

    # -- one full sweep over all conditional branches ---------------------

    def _one_round(self, fn: Function, ctx: PassContext) -> bool:
        changed = False
        # Snapshot the branch blocks up front; motion restructures layout.
        branch_labels = [
            bb.label
            for bb in fn.blocks
            if bb.terminator is not None and bb.terminator.opcode in ("BT", "BF")
        ]
        for label in branch_labels:
            if not fn.has_block(label):
                continue
            block = fn.block(label)
            term = block.terminator
            if term is None or term.opcode not in ("BT", "BF"):
                continue
            changed |= self._process_branch(fn, block, ctx)
        return changed

    def _process_branch(self, fn: Function, block: BasicBlock, ctx: PassContext) -> bool:
        changed = False
        # Instructions inside the branch's own block, in reverse order.
        changed |= self._push_block_instrs(fn, block, ctx)
        # Whole single-entry single-exit groups laid out immediately before
        # the branch block (only when the block holds nothing but the
        # branch-relevant tail, i.e. the group really is adjacent to the
        # decision in execution order and nothing in between interferes).
        changed |= self._push_groups(fn, block, ctx)
        return changed

    # -- single instructions ------------------------------------------------

    def _push_block_instrs(self, fn: Function, block: BasicBlock, ctx: PassContext) -> bool:
        changed = False
        while True:
            term = block.terminator
            if term is None or term.opcode not in ("BT", "BF"):
                break
            moved = self._try_push_one_instr(fn, block, ctx)
            if not moved:
                break
            changed = True
        return changed

    def _try_push_one_instr(self, fn: Function, block: BasicBlock, ctx: PassContext) -> bool:
        memory = MemoryModel(fn, ctx.module)
        liveness = compute_liveness(fn)
        loops = find_natural_loops(fn)
        term = block.terminator
        targets = self._branch_targets(fn, block)
        if targets is None:
            return False
        taken_bb, fall_bb = targets

        # Examine instructions backwards from just above the branch; stop
        # scanning entirely once an immovable instruction both sets/uses
        # conflicts (tracked incrementally via the "between" sets).
        between_defs: Set[Reg] = set()
        between_uses: Set[Reg] = set()
        between_stores: List[Instr] = []
        for idx in range(len(block.instrs) - 2, -1, -1):
            instr = block.instrs[idx]
            verdict = self._instr_push_target(
                fn,
                block,
                instr,
                term,
                taken_bb,
                fall_bb,
                between_defs,
                between_uses,
                between_stores,
                memory,
                liveness,
                loops,
            )
            if verdict is not None:
                dest_bb, taken_edge = verdict
                self._move_instrs_to_edge(fn, block, [instr], dest_bb, taken_edge)
                ctx.bump("unspeculation.instrs-pushed")
                return True
            between_defs.update(instr.defs())
            between_uses.update(instr.uses())
            if instr.is_store or instr.is_call:
                between_stores.append(instr)
        return False

    def _branch_targets(
        self, fn: Function, block: BasicBlock
    ) -> Optional[Tuple[BasicBlock, BasicBlock]]:
        term = block.terminator
        if term is None or term.opcode not in ("BT", "BF"):
            return None
        labels = fn.label_map()
        taken = labels.get(term.target)
        fall = fn.layout_successor(block)
        if taken is None or fall is None or not block.falls_through:
            return None
        if taken is fall:
            return None
        return taken, fall

    def _instr_push_target(
        self,
        fn: Function,
        block: BasicBlock,
        instr: Instr,
        term: Instr,
        taken_bb: BasicBlock,
        fall_bb: BasicBlock,
        between_defs: Set[Reg],
        between_uses: Set[Reg],
        between_stores: List[Instr],
        memory: MemoryModel,
        liveness: "object",
        loops: List[Loop],
    ):
        # Condition 3: no side effects.
        if instr.is_terminator or _has_side_effects(instr, memory):
            return None
        defs = set(instr.defs())
        uses = set(instr.uses())
        if not defs:
            return None

        # The branch itself must not depend on I.
        if any(reg in defs for reg in term.uses()):
            return None

        # Condition 2a/2b against everything between I and the branch.
        if (defs | uses) & between_defs:
            return None
        if defs & between_uses:
            return None
        # Condition 2c: intervening side effects on locations I loads.
        if instr.is_load:
            ref = memory.memref(instr)
            for store in between_stores:
                if store.is_call:
                    return None
                if store.is_memory and memory.may_alias(ref, memory.memref(store)):
                    return None
        elif between_stores and instr.is_memory:
            return None

        # Condition 1: dests dead on one edge, not on the other.
        live_taken = liveness.live_at_block_entry(taken_bb.label)
        live_fall = liveness.live_at_block_entry(fall_bb.label)
        dead_taken = not (defs & live_taken)
        dead_fall = not (defs & live_fall)
        if dead_taken == dead_fall:
            return None  # dead on both (DCE's job) or live on both (needed)
        dest_bb, taken_edge = (
            (fall_bb, False) if dead_taken else (taken_bb, True)
        )

        # Never push into a loop from outside.
        if self._pushes_into_loop(block, dest_bb, loops):
            return None
        return dest_bb, taken_edge

    def _pushes_into_loop(
        self, src: BasicBlock, dst: BasicBlock, loops: List[Loop]
    ) -> bool:
        for loop in loops:
            if dst.label in loop.body and src.label not in loop.body:
                return True
        return False

    def _move_instrs_to_edge(
        self,
        fn: Function,
        block: BasicBlock,
        instrs: List[Instr],
        dest_bb: BasicBlock,
        taken_edge: bool,
    ) -> None:
        for instr in instrs:
            block.remove(instr)
        edge_bb = split_edge(fn, block, dest_bb)
        insert_at = 0
        for instr in instrs:
            # Below the branch the instruction only runs on the path that
            # needs its results: it is no longer speculative, so a fault
            # here must trap rather than poison.
            instr.attrs.pop("speculative", None)
            edge_bb.insert(insert_at, instr)
            insert_at += 1

    # -- whole groups -------------------------------------------------------

    def _push_groups(self, fn: Function, block: BasicBlock, ctx: PassContext) -> bool:
        changed = False
        for _ in range(4):
            if not self._try_push_one_group(fn, block, ctx):
                break
            changed = True
        return changed

    def _try_push_one_group(self, fn: Function, block: BasicBlock, ctx: PassContext) -> bool:
        term = block.terminator
        if term is None or term.opcode not in ("BT", "BF"):
            return False
        targets = self._branch_targets(fn, block)
        if targets is None:
            return False
        taken_bb, fall_bb = targets

        block_idx = fn.block_index(block)
        if block_idx == 0:
            return False

        memory = MemoryModel(fn, ctx.module)
        liveness = compute_liveness(fn)
        loops = find_natural_loops(fn)

        # "Between" the group and the branch: the branch block's own body.
        between_defs: Set[Reg] = set()
        between_uses: Set[Reg] = set()
        between_has_store = False
        for instr in block.instrs[:-1]:
            between_defs.update(instr.defs())
            between_uses.update(instr.uses())
            between_has_store = between_has_store or instr.is_store or instr.is_call

        for start, end in consecutive_sese_groups(fn, block_idx - 1):
            group_blocks = fn.blocks[start : end + 1]
            group_instrs = list(run_instructions(fn, start, end))
            if not group_instrs:
                continue
            # The entry block of the group must not be the function entry.
            if group_blocks[0] is fn.entry:
                continue
            # Condition 3 for every instruction in the group.
            if any(
                i.is_terminator and i.is_return for i in group_instrs
            ) or any(
                _has_side_effects(i, memory)
                for i in group_instrs
                if not i.is_terminator
            ):
                continue
            defs: Set[Reg] = set()
            uses: Set[Reg] = set()
            has_load = False
            for i in group_instrs:
                defs.update(i.defs())
                uses.update(i.uses())
                has_load = has_load or i.is_load
            if not defs:
                continue
            if any(reg in defs for reg in term.uses()):
                continue
            if (defs | uses) & between_defs or defs & between_uses:
                continue
            if has_load and between_has_store:
                continue

            live_taken = liveness.live_at_block_entry(taken_bb.label)
            live_fall = liveness.live_at_block_entry(fall_bb.label)
            dead_taken = not (defs & live_taken)
            dead_fall = not (defs & live_fall)
            if dead_taken == dead_fall:
                continue
            dest_bb = fall_bb if dead_taken else taken_bb

            # Group must be entered only from the block laid out before it
            # (otherwise rerouting external entries to the branch block
            # would change where those paths go).
            preds = fn.predecessor_map()
            entry_preds = preds[group_blocks[0].label]
            group_labels = {bb.label for bb in group_blocks}
            external = [p for p in entry_preds if p.label not in group_labels]
            if len(external) != 1 or external[0] is not fn.blocks[start - 1]:
                continue
            prev = fn.blocks[start - 1]
            if prev.terminator is not None and prev.terminator.target == group_blocks[0].label:
                continue  # entered by explicit branch: keep it simple, skip
            if not prev.falls_through:
                continue
            # The branch block itself must be reachable ONLY through the
            # group — the paper's "backward traversal stops when a join
            # point is encountered". If another path bypasses the group
            # into the branch block, pushing the group below the branch
            # would make the bypass path execute it.
            if any(p.label not in group_labels for p in preds[block.label]):
                continue

            if self._pushes_into_loop(block, dest_bb, loops):
                continue
            # A group containing a loop must not move (its internal back
            # edges are fine, but loop trip-time side conditions get murky
            # with profiling counters); allow only acyclic groups.
            if any(
                loop.header in group_labels or loop.body & group_labels
                for loop in loops
            ):
                continue

            self._move_group(fn, group_blocks, block, dest_bb)
            ctx.bump("unspeculation.groups-pushed")
            return True
        return False

    def _move_group(
        self,
        fn: Function,
        group_blocks: List[BasicBlock],
        branch_block: BasicBlock,
        dest_bb: BasicBlock,
    ) -> None:
        """Cut the group out of the layout and drop it on the branch edge."""
        follow = branch_block  # the group's single exit target (next block)
        group_labels = {bb.label for bb in group_blocks}

        # The whole group becomes control-dependent on the branch: its
        # instructions stop being speculative (see _move_instrs_to_edge).
        for bb in group_blocks:
            for instr in bb.instrs:
                instr.attrs.pop("speculative", None)

        # Remove the group from the layout. The block laid before the
        # group fell through into it and now falls through into `follow`.
        for bb in group_blocks:
            fn.remove_block(bb)

        # Create the edge block, then graft the group onto it.
        edge_bb = split_edge(fn, branch_block, dest_bb)
        # Control: edge_bb (empty or `B dest`) should run the group first.
        # Insert the group blocks immediately after edge_bb in layout and
        # send control through them.
        insert_pos = fn.block_index(edge_bb) + 1
        for offset, bb in enumerate(group_blocks):
            fn.blocks.insert(insert_pos + offset, bb)

        # edge_bb enters the group: replace its terminator (if any) with a
        # fallthrough into the group entry (which is laid right after it).
        if edge_bb.terminator is not None:
            edge_bb.instrs.pop()

        # Group exits that pointed at `follow` must now continue to the
        # original edge destination.
        last = group_blocks[-1]
        for bb in group_blocks:
            t = bb.terminator
            if t is not None and t.target == follow.label:
                t.target = dest_bb.label
        if last.falls_through:
            nxt = fn.layout_successor(last)
            if nxt is not dest_bb:
                from repro.ir.instructions import make_b

                if last.terminator is None:
                    last.append(make_b(dest_bb.label))
                else:
                    tramp = BasicBlock(fn.new_label(f"ft.{last.label}"))
                    tramp.append(make_b(dest_bb.label))
                    fn.blocks.insert(fn.block_index(last) + 1, tramp)
