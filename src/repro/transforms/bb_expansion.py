"""Basic block expansion: remove unconditional branches from the trace.

Unconditional branches are free in a VLIW but consume fetch slots and
cause stalls on a superscalar — on the RS/6000 an untaken conditional
branch followed closely by a taken unconditional branch stalls badly
("the RS/6000 requires 4-5 non-branch instructions between an integer
compare, a dependent conditional branch, and an unconditional branch").

For each ``B L``, the pass:

1. computes the *objective*: how many consecutive non-branch
   instructions must precede the final branch to avoid the stall, from
   the code immediately before the ``B`` (machine-specific rule);
2. walks the code at ``L`` — through unconditional branches, past
   conditional branches and calls (which reset the objective), stopping
   at returns, BCTs, revisited instructions, or the window limit — to
   choose a stopping point with minimal residual stall;
3. copies the walked code in place of the ``B`` (conditional branches
   keep their original taken targets; fallthrough is replicated with
   fresh blocks) and appends a new ``B`` to the instruction following
   the stopping point (splitting a block to label it when necessary).

Unreachable originals are cleaned up by the straightening pass.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instr, make_b
from repro.transforms.pass_manager import Pass, PassContext


@dataclass
class _WalkItem:
    instr: Instr
    block_label: str
    index: int


@dataclass
class _WalkResult:
    items: List[_WalkItem]
    continuation: Optional[Tuple[str, int]]  # (block label, instr index)
    ends_in_ret: bool
    residual_stall: int


class BasicBlockExpansion(Pass):
    """Copy code from unconditional branch targets to remove the branch."""

    name = "bb-expansion"

    def __init__(self, window: int = 24, max_copy: int = 16):
        self.window = window
        self.max_copy = max_copy

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed = False
        # Snapshot: expansion appends new blocks; do one sweep per run.
        candidates = []
        for bb in fn.blocks:
            term = bb.terminator
            if term is not None and term.opcode == "B":
                nxt = fn.layout_successor(bb)
                if nxt is not None and nxt.label == term.target:
                    continue  # straightening removes it for free
                candidates.append(bb.label)
        for label in candidates:
            if not fn.has_block(label):
                continue
            block = fn.block(label)
            term = block.terminator
            if term is None or term.opcode != "B":
                continue
            if self._expand(fn, block, ctx):
                changed = True
                ctx.bump("bb-expansion.branches-removed")
        return changed

    # -- planning -----------------------------------------------------------

    def _objective_before(self, fn: Function, block: BasicBlock, ctx: PassContext) -> int:
        """Non-branch instructions needed before the final branch.

        The code "immediately preceding the branch" on the execution
        trace may live in earlier blocks reached by fallthrough, so the
        scan walks the layout chain backwards across fallthrough edges.
        """
        window = ctx.model.cond_uncond_window
        trailing = 0
        saw_cond = False
        current = block
        instrs = list(block.instrs[:-1])
        for _ in range(8):  # bounded walk over the fallthrough chain
            for instr in reversed(instrs):
                if instr.is_cond_branch or instr.is_call:
                    saw_cond = True
                    break
                trailing += 1
                if trailing >= window:
                    break
            if saw_cond or trailing >= window:
                break
            idx = fn.block_index(current)
            if idx == 0:
                break
            prev = fn.blocks[idx - 1]
            if not (prev.falls_through and fn.layout_successor(prev) is current):
                break
            current = prev
            instrs = list(prev.instrs)
        if saw_cond:
            return max(1, window - trailing)
        return 1  # no stall context: any stop point removes the base cost

    def _walk(self, fn: Function, target_label: str, objective: int, ctx: PassContext) -> Optional[_WalkResult]:
        window_limit = self.window
        labels = fn.label_map()
        items: List[_WalkItem] = []
        visited = set()
        consecutive = 0
        scanned = 0
        # Best stopping point so far: (residual stall, items length, cont).
        best: Optional[Tuple[int, int, Tuple[str, int]]] = None

        block = labels.get(target_label)
        idx = 0
        while block is not None and scanned < window_limit and len(items) < self.max_copy:
            if idx >= len(block.instrs):
                if not block.falls_through or block.terminator is not None:
                    break
                nxt = fn.layout_successor(block)
                block = nxt
                idx = 0
                continue
            instr = block.instrs[idx]
            key = instr.uid
            if key in visited:
                break  # revisited an instruction (we are inside a loop)
            if instr.attrs.get("counter") or instr.attrs.get("save") or instr.attrs.get(
                "restore"
            ):
                break  # never duplicate pinned bookkeeping code
            visited.add(key)
            scanned += 1

            if instr.opcode == "B":
                # Not copied; continue the walk at its target.
                block = labels.get(instr.target)
                idx = 0
                continue
            if instr.opcode == "BCT":
                break  # loop-closing branch: stop before it
            if instr.is_return:
                items.append(_WalkItem(instr, block.label, idx))
                return _WalkResult(items, None, True, 0)

            items.append(_WalkItem(instr, block.label, idx))
            if instr.is_cond_branch or instr.is_call:
                # Objective re-calculated: the final branch now follows
                # this conditional branch / call.
                objective = ctx.model.cond_uncond_window
                consecutive = 0
                if instr.is_cond_branch:
                    # Continue along the fallthrough (untaken) path.
                    nxt = fn.layout_successor(block)
                    block = nxt
                    idx = 0
                    continue
            else:
                consecutive += 1
                stall = max(0, objective - consecutive)
                cont = self._position_after(fn, block, idx)
                if best is None or stall < best[0]:
                    best = (stall, len(items), cont)
                if stall == 0:
                    return _WalkResult(items, cont, False, 0)
            idx += 1

        if best is None:
            return None
        stall, length, cont = best
        return _WalkResult(items[:length], cont, False, stall)

    def _position_after(
        self, fn: Function, block: BasicBlock, idx: int
    ) -> Optional[Tuple[str, int]]:
        if idx + 1 < len(block.instrs):
            return (block.label, idx + 1)
        if block.terminator is None and block.falls_through:
            nxt = fn.layout_successor(block)
            if nxt is not None:
                return (nxt.label, 0)
        return (block.label, idx + 1)  # off the end: split yields empty tail

    # -- application ----------------------------------------------------------

    def _expand(self, fn: Function, block: BasicBlock, ctx: PassContext) -> bool:
        term = block.terminator
        objective = self._objective_before(fn, block, ctx)
        result = self._walk(fn, term.target, objective, ctx)
        if result is None or not result.items:
            return False
        if not result.ends_in_ret and result.continuation is None:
            return False

        # Label the continuation point before any mutation.
        cont_label = None
        if not result.ends_in_ret:
            if result.continuation[0] == block.label:
                return False  # self-referential expansion: not worth it
            cont_label = self._label_at(fn, result.continuation)
            if cont_label is None:
                return False

        # Replace the B with the copied code.
        block.instrs.pop()
        cur = block
        for item in result.items:
            clone = item.instr.clone()
            cur.append(clone)
            if clone.is_cond_branch:
                follow = BasicBlock(fn.new_label(f"exp.{block.label}"))
                fn.blocks.insert(fn.block_index(cur) + 1, follow)
                cur = follow
        if not result.ends_in_ret:
            cur.append(make_b(cont_label))
        return True

    def _label_at(self, fn: Function, position: Tuple[str, int]) -> Optional[str]:
        """A label naming instruction ``position``; splits blocks as needed."""
        label, idx = position
        if not fn.has_block(label):
            return None
        block = fn.block(label)
        if idx == 0:
            return block.label
        if idx >= len(block.instrs):
            nxt = fn.layout_successor(block)
            if block.terminator is None and block.falls_through and nxt is not None:
                return nxt.label
            return None
        tail = BasicBlock(fn.new_label(f"cont.{block.label}"))
        tail.instrs = block.instrs[idx:]
        del block.instrs[idx:]
        fn.blocks.insert(fn.block_index(block) + 1, tail)
        return tail.label
