"""Live range renaming.

Renames independent def-use webs of the same architectural register to
distinct registers, removing the false (anti/output) dependences that
would otherwise serialise the scheduler — essential after unrolling,
where every copy of the loop body writes the same registers.

Following the paper: "For each register r that is live at an edge that
leaves the (unrolled original loop) loop, a non-coalesceable register
copy operation LR r=r is inserted at that exit edge before live range
renaming." The copy splits the in-loop web from the out-of-loop uses, so
the loop body can be renamed freely; after renaming the copy materialises
as ``LR r, r'`` (the paper's `LR r4=r4` in the xlygetvalue example).

Webs are computed from reaching definitions: every use is merged (union-
find) with all definitions reaching it. Webs touching calls, returns,
pinned linkage/profiling code, or the function entry (parameters, values
live into the function) keep their original register.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instr, make_lr
from repro.ir.operands import CTR, SP, TOC, Reg
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_natural_loops, insert_before_terminator, split_edge
from repro.transforms.pass_manager import Pass, PassContext



class _UnionFind:
    def __init__(self):
        self.parent: Dict = {}

    def find(self, x):
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def insert_loop_exit_copies(fn: Function, ctx: PassContext) -> int:
    """Insert ``LR r, r`` on loop exit edges for live-out registers."""
    inserted = 0
    liveness = compute_liveness(fn)
    for loop in find_natural_loops(fn):
        for src, dst in loop.exit_edges(fn):
            live = liveness.live_at_block_entry(dst.label)
            regs = sorted(
                (r for r in live if r.kind == "gpr" and r not in (SP, TOC)),
                key=lambda r: r.index,
            )
            if not regs:
                continue
            edge_bb = split_edge(fn, src, dst)
            for reg in regs:
                copy = make_lr(reg, reg)
                copy.attrs["noncoalesce"] = True
                insert_before_terminator(edge_bb, copy)
                inserted += 1
            # CFG changed; recompute liveness for subsequent edges.
            liveness = compute_liveness(fn)
    if inserted:
        ctx.bump("renaming.exit-copies", inserted)
    return inserted


class LiveRangeRenaming(Pass):
    """Split independent def-use webs onto distinct registers."""

    name = "live-range-renaming"

    def __init__(self, insert_exit_copies: bool = True):
        self.insert_exit_copies = insert_exit_copies

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        if self.insert_exit_copies:
            insert_loop_exit_copies(fn, ctx)
        webs = self._compute_webs(fn)
        return self._rename_webs(fn, webs, ctx)

    # -- web construction ----------------------------------------------------

    def _compute_webs(self, fn: Function):
        """Union-find over def sites; returns web members and pinned roots."""
        uf = _UnionFind()
        pinned: Set = set()

        # Block-level reaching definitions.
        sites_by_block: Dict[str, List[Tuple[int, Reg, Instr]]] = {
            bb.label: [] for bb in fn.blocks
        }
        for bb in fn.blocks:
            for i, instr in enumerate(bb.instrs):
                for reg in instr.defs():
                    sites_by_block[bb.label].append((i, reg, instr))

        def site_key(label: str, idx: int, reg: Reg):
            return ("def", label, idx, reg)

        def use_key(label: str, idx: int, reg: Reg):
            return ("use", label, idx, reg)

        gen: Dict[str, Dict[Reg, Tuple]] = {}
        for bb in fn.blocks:
            last: Dict[Reg, Tuple] = {}
            for i, reg, _ in sites_by_block[bb.label]:
                last[reg] = site_key(bb.label, i, reg)
            gen[bb.label] = last

        # IN[b][reg] = set of reaching def sites for reg.
        live_in: Dict[str, Dict[Reg, Set[Tuple]]] = {
            bb.label: {} for bb in fn.blocks
        }
        entry_defs: Dict[Reg, Tuple] = {}

        def entry_site(reg: Reg):
            if reg not in entry_defs:
                entry_defs[reg] = ("entry", reg)
            return entry_defs[reg]

        # Seed entry block with pseudo-defs for every register mentioned.
        regs_mentioned: Set[Reg] = set(fn.params) | {SP, TOC, CTR}
        for instr in fn.instructions():
            regs_mentioned.update(instr.uses())
            regs_mentioned.update(instr.defs())
        live_in[fn.entry.label] = {reg: {entry_site(reg)} for reg in regs_mentioned}

        changed = True
        while changed:
            changed = False
            for bb in fn.blocks:
                out: Dict[Reg, Set[Tuple]] = {}
                for reg, sites in live_in[bb.label].items():
                    if reg not in gen[bb.label]:
                        out[reg] = sites
                for reg, site in gen[bb.label].items():
                    out[reg] = {site}
                for succ in fn.successors(bb):
                    succ_in = live_in[succ.label]
                    for reg, sites in out.items():
                        cur = succ_in.setdefault(reg, set())
                        if not sites <= cur:
                            cur |= sites
                            changed = True

        # Walk each block, merging uses with their reaching defs.
        for bb in fn.blocks:
            current: Dict[Reg, Set[Tuple]] = {
                reg: set(sites) for reg, sites in live_in[bb.label].items()
            }
            for i, instr in enumerate(bb.instrs):
                instr_pinned = (
                    instr.is_call
                    or instr.is_return
                    or instr.attrs.get("save")
                    or instr.attrs.get("restore")
                    or instr.attrs.get("counter")
                )
                for reg in instr.uses():
                    reaching = current.get(reg) or {entry_site(reg)}
                    anchor = None
                    for site in reaching:
                        if anchor is None:
                            anchor = site
                        else:
                            uf.union(anchor, site)
                        if site[0] == "entry":
                            pinned.add(uf.find(site))
                    if anchor is not None:
                        # Record the use on the web via an anchor mapping.
                        uf.union(anchor, use_key(bb.label, i, reg))
                        if instr_pinned:
                            pinned.add(uf.find(anchor))
                for reg in instr.defs():
                    key = site_key(bb.label, i, reg)
                    if instr_pinned:
                        pinned.add(uf.find(key))
                    # LU/STU read and write the base through one operand
                    # field: def and use webs must coincide.
                    if instr.opcode in ("LU", "STU") and reg == instr.base:
                        for site in current.get(reg, {entry_site(reg)}):
                            uf.union(key, site)
                    current[reg] = {key}

        # Normalise pinned roots after all unions.
        pinned = {uf.find(p) for p in pinned}
        return uf, pinned

    # -- renaming ----------------------------------------------------------------

    def _rename_webs(self, fn: Function, webs, ctx: PassContext) -> bool:
        uf, pinned = webs
        # Group def sites and use sites per (reg, web root).
        members: Dict[Tuple[Reg, Tuple], Dict[str, List[Tuple[str, int]]]] = {}
        for key in list(uf.parent):
            if key[0] == "entry":
                continue
            kind, label, idx, reg = key
            root = uf.find(key)
            slot = members.setdefault((reg, root), {"defs": [], "uses": []})
            slot["uses" if kind == "use" else "defs"].append((label, idx))

        # Registers eligible for renaming.
        def eligible(reg: Reg) -> bool:
            return reg.kind in ("gpr", "cr") and reg not in (SP, TOC)

        by_reg: Dict[Reg, List[Tuple[Tuple, Dict]]] = {}
        for (reg, root), slot in members.items():
            if eligible(reg):
                by_reg.setdefault(reg, []).append((root, slot))

        changed = False
        blocks = fn.label_map()
        for reg, entries in sorted(
            by_reg.items(), key=lambda kv: (kv[0].kind, kv[0].index)
        ):
            if len(entries) <= 1:
                continue
            # Keep the first web (prefer a pinned one) on the original
            # register; rename the rest.
            entries.sort(key=lambda e: (e[0] not in pinned,))
            for root, slot in entries[1:]:
                if root in pinned:
                    continue
                if not slot["defs"]:
                    continue
                try:
                    fresh = fn.new_vreg(reg.kind)
                except (RuntimeError, ValueError):
                    break
                mapping = {reg: fresh}
                for label, idx in slot["defs"]:
                    blocks[label].instrs[idx].rename_defs(mapping)
                    # LU/STU base renamed via uses below (same field).
                for label, idx in slot["uses"]:
                    blocks[label].instrs[idx].rename_uses(mapping)
                changed = True
                ctx.bump("renaming.webs-renamed")
        return changed
