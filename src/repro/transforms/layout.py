"""Physical re-ordering of basic blocks with fallthrough preservation.

Both unspeculation (step 1: reverse post-order re-layout) and PDF basic
block re-ordering (most-frequent-successor-first DFS) physically permute
the block list. Because fallthrough edges are implicit in layout, the
permutation must patch control flow: "when two basic blocks were
consecutive in the original ordering, but are not consecutive in the new
ordering ... an unconditional branch to this label is introduced at the
end of the first basic block, to retain the original program semantics."
"""

from typing import List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import make_b


def relayout_blocks(fn: Function, order: List[BasicBlock]) -> None:
    """Reorder ``fn.blocks`` to ``order``, preserving semantics.

    ``order`` must contain exactly the current blocks (any permutation
    with the entry block first). Fallthrough edges that the permutation
    breaks are replaced by explicit branches; trampoline blocks are added
    when the fallthrough leaves a conditional branch.
    """
    current = {bb.label for bb in fn.blocks}
    new = {bb.label for bb in order}
    if current != new or len(order) != len(fn.blocks):
        raise ValueError("relayout order must be a permutation of the blocks")
    if order and order[0] is not fn.entry:
        raise ValueError("entry block must stay first")

    # Record fallthrough targets under the *old* layout.
    fallthrough = {}
    for bb in fn.blocks:
        if bb.falls_through:
            nxt = fn.layout_successor(bb)
            if nxt is not None:
                fallthrough[bb.label] = nxt.label

    fn.blocks[:] = order

    # Patch broken fallthroughs under the new layout.
    for bb in list(fn.blocks):
        target = fallthrough.get(bb.label)
        if target is None:
            continue
        nxt = fn.layout_successor(bb)
        if nxt is not None and nxt.label == target:
            continue
        if bb.terminator is None:
            bb.append(make_b(target))
        else:
            # Conditional terminator: untaken path needs a trampoline laid
            # out immediately after the block.
            tramp = BasicBlock(fn.new_label(f"ft.{bb.label}"))
            tramp.append(make_b(target))
            fn.blocks.insert(fn.block_index(bb) + 1, tramp)

    # The last block must not fall off the end (it had a fallthrough
    # target, it got a branch above; otherwise it already terminated).
