"""Code straightening and unreachable-code elimination.

The paper applies "standard code straightening optimizations of the XlC
compiler ... to eliminate any awkward branching" after re-ordering, and
relies on "common unreachable code elimination techniques" to clean up
after limited combining and basic block expansion. These are those
cleanups:

- jump threading (a branch to a block containing only ``B L`` goes to
  ``L`` directly),
- removing ``B L`` when ``L`` is the layout successor,
- merging a block into its unique predecessor,
- deleting unreachable blocks.
"""

from typing import Dict

from repro.ir.function import Function
from repro.ir.instructions import make_b
from repro.analysis.cfg import reachable_blocks
from repro.transforms.pass_manager import Pass, PassContext


class RemoveUnreachable(Pass):
    """Delete blocks not reachable from the entry."""

    name = "remove-unreachable"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        reachable = reachable_blocks(fn)
        dead = [bb for bb in fn.blocks if bb.label not in reachable]
        for bb in dead:
            fn.remove_block(bb)
            ctx.bump("unreachable.blocks-removed")
        return bool(dead)


def _thread_jumps(fn: Function) -> bool:
    """Retarget branches that land on trivial ``B L`` blocks."""
    trivial: Dict[str, str] = {}
    for bb in fn.blocks:
        if len(bb.instrs) == 1 and bb.instrs[0].opcode == "B":
            trivial[bb.label] = bb.instrs[0].target

    def resolve(label: str) -> str:
        seen = set()
        while label in trivial and label not in seen:
            seen.add(label)
            label = trivial[label]
        return label

    changed = False
    for bb in fn.blocks:
        term = bb.terminator
        if term is not None and term.target is not None:
            final = resolve(term.target)
            if final != term.target:
                term.target = final
                changed = True
    return changed


def _remove_redundant_branches(fn: Function) -> bool:
    """Delete ``B L`` when ``L`` is the next block in layout."""
    changed = False
    for bb in fn.blocks:
        term = bb.terminator
        if term is not None and term.opcode == "B":
            nxt = fn.layout_successor(bb)
            if nxt is not None and nxt.label == term.target:
                bb.instrs.pop()
                changed = True
    return changed


def _remove_degenerate_cond_branches(fn: Function) -> bool:
    """Delete ``BT/BF L`` when ``L`` is also the fallthrough successor."""
    changed = False
    for bb in fn.blocks:
        term = bb.terminator
        if term is not None and term.opcode in ("BT", "BF"):
            nxt = fn.layout_successor(bb)
            if nxt is not None and nxt.label == term.target:
                bb.instrs.pop()
                changed = True
    return changed


def _merge_single_pred_blocks(fn: Function) -> bool:
    """Fold a block into its unique predecessor where control is linear."""
    changed = False
    preds = fn.predecessor_map()
    for bb in list(fn.blocks):
        if bb is fn.entry:
            continue
        plist = preds.get(bb.label, [])
        if len(plist) != 1:
            continue
        pred = plist[0]
        if pred is bb:
            continue
        succs = fn.successors(pred)
        if len(succs) != 1 or succs[0] is not bb:
            continue
        term = pred.terminator
        if term is not None and term.opcode == "B":
            pred.instrs.pop()
        elif term is not None:
            continue  # conditional terminator with one successor: leave it
        elif fn.layout_successor(pred) is not bb:
            continue  # fallthrough-shaped but not adjacent: cannot merge
        # If bb itself fell through, the merged code must still reach
        # bb's fallthrough target, which usually is not pred's layout
        # successor.
        bb_fallthrough = None
        if bb.falls_through:
            nxt = fn.layout_successor(bb)
            if nxt is not None and nxt is not pred:
                bb_fallthrough = nxt
        pred.instrs.extend(bb.instrs)
        fn.remove_block(bb)
        if bb_fallthrough is not None and pred.falls_through:
            if fn.layout_successor(pred) is not bb_fallthrough:
                if pred.terminator is None:
                    pred.append(make_b(bb_fallthrough.label))
                else:
                    # Merged block ended in a conditional branch: restore
                    # the untaken path with a trampoline after pred.
                    from repro.ir.basicblock import BasicBlock

                    tramp = BasicBlock(fn.new_label(f"ft.{pred.label}"))
                    tramp.append(make_b(bb_fallthrough.label))
                    fn.blocks.insert(fn.block_index(pred) + 1, tramp)
        changed = True
        preds = fn.predecessor_map()
    return changed


class Straighten(Pass):
    """Iterated jump threading + redundant branch removal + merging."""

    name = "straighten"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed_any = False
        for _ in range(20):  # fixpoint, bounded for safety
            changed = _thread_jumps(fn)
            changed |= RemoveUnreachable().run_on_function(fn, ctx)
            changed |= _merge_single_pred_blocks(fn)
            changed |= _remove_redundant_branches(fn)
            changed |= _remove_degenerate_cond_branches(fn)
            if not changed:
                break
            changed_any = True
            ctx.bump("straighten.iterations")
        return changed_any
