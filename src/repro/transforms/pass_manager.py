"""Pass framework: context, base class, manager.

Passes run per function; the manager optionally verifies the IR after
every pass (on by default — the transformations here restructure control
flow aggressively and the verifier catches breakage at the pass that
caused it). Verification is selective: the manager drives
:meth:`Pass.run_on_function` itself and re-verifies only the functions
the pass reported changing. Passes that override
:meth:`Pass.run_on_module` lose per-function attribution, so every
function is re-verified after them.

Two compile-performance hooks live here (see :mod:`repro.perf`):

- ``jobs=N`` partitions a per-function pass's work across ``N`` worker
  threads with a deterministic merge — functions are disjoint mutation
  domains, each worker gets a private stats scope, and results are
  folded back in module order, so the output is bit-identical to
  ``jobs=1``. ``run_on_module`` passes are serial barriers.
- ``trace=`` records per-(pass, function) spans on a
  :class:`~repro.perf.trace.TraceRecorder` in Chrome trace-event form.
"""

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verifier import verify_function, verify_module
from repro.machine.model import MachineModel, RS6000


@dataclass
class PassContext:
    """Shared state passed to every pass invocation."""

    module: Module
    model: MachineModel = RS6000
    #: Edge profile from PDF: (fn, src_label, dst_label) -> count.
    edge_profile: Optional[Dict] = None
    #: Block profile from PDF: (fn, label) -> count.
    block_profile: Optional[Dict] = None
    options: Dict[str, object] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.stats[counter] = self.stats.get(counter, 0) + amount

    def edge_count(self, fn_name: str, src: str, dst: str) -> Optional[int]:
        """Profiled execution count of a CFG edge, 0 when unprofiled.

        A miss (profile present, edge absent) is counted in
        ``stats["profile.edge.misses"]``: CFG-restructuring passes rename
        labels, and a renamed edge silently reading as "cold" (count 0)
        is a quiet degradation the counters make visible.
        """
        if self.edge_profile is None:
            return None
        key = (fn_name, src, dst)
        if key in self.edge_profile:
            self.bump("profile.edge.hits")
            return self.edge_profile[key]
        self.bump("profile.edge.misses")
        return 0

    def block_count(self, fn_name: str, label: str) -> Optional[int]:
        """Profiled execution count of a block; misses counted as above."""
        if self.block_profile is None:
            return None
        key = (fn_name, label)
        if key in self.block_profile:
            self.bump("profile.block.hits")
            return self.block_profile[key]
        self.bump("profile.block.misses")
        return 0

    def worker_scope(self) -> "PassContext":
        """A context for one parallel worker: shared read-only state,
        private stats (merged deterministically by the manager)."""
        return PassContext(
            module=self.module,
            model=self.model,
            edge_profile=self.edge_profile,
            block_profile=self.block_profile,
            options=self.options,
        )


class Pass:
    """Base class: implement :meth:`run_on_function`."""

    name = "pass"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        raise NotImplementedError

    def run_on_module(self, module: Module, ctx: PassContext) -> bool:
        changed = False
        for fn in module.functions.values():
            changed |= bool(self.run_on_function(fn, ctx))
        return changed

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


def is_module_pass(pss: Pass) -> bool:
    """True when the pass supplies its own :meth:`Pass.run_on_module`
    (per-function attribution is then unavailable)."""
    return type(pss).run_on_module is not Pass.run_on_module


class PassManager:
    """Runs an ordered list of passes over a module."""

    def __init__(
        self,
        passes: List[Pass],
        verify: bool = True,
        jobs: int = 1,
        trace=None,
    ):
        self.passes = list(passes)
        self.verify = verify
        self.jobs = max(1, int(jobs))
        self.trace = trace
        self.timings: Dict[str, float] = {}
        #: Pass name -> True if any invocation of that pass reported a change.
        self.pass_changes: Dict[str, bool] = {}
        #: True if any pass changed the module at all.
        self.module_changed = False
        self._executor: Optional[ThreadPoolExecutor] = None

    def run(self, module: Module, ctx: Optional[PassContext] = None) -> PassContext:
        ctx = ctx if ctx is not None else PassContext(module)
        try:
            for pss in self.passes:
                start = time.perf_counter()
                changed, changed_fns = self._run_pass(pss, module, ctx)
                elapsed = time.perf_counter() - start
                self.timings[pss.name] = self.timings.get(pss.name, 0.0) + elapsed
                self._note_changes(pss, ctx, changed, changed_fns, len(module.functions))
                if self.verify and changed:
                    self._verify_after(pss, module, changed_fns)
            if self.verify:
                self._verify_final(module)
        finally:
            self._shutdown_executor()
        return ctx

    # -- helpers (shared with GuardedPassManager) ---------------------------

    def _run_pass(
        self, pss: Pass, module: Module, ctx: PassContext
    ) -> Tuple[bool, Optional[Set[str]]]:
        """Run one pass; return ``(changed, changed_function_names)``.

        ``changed_function_names`` is ``None`` when the pass supplies its
        own :meth:`Pass.run_on_module` — per-function attribution is then
        unavailable and any function may have changed.
        """
        if is_module_pass(pss):
            if self.trace is not None:
                with self.trace.span(pss.name, cat="module-pass"):
                    return bool(pss.run_on_module(module, ctx)), None
            return bool(pss.run_on_module(module, ctx)), None
        if self.jobs > 1 and len(module.functions) > 1:
            return self._run_pass_parallel(pss, module, ctx)
        changed_fns: Set[str] = set()
        for name in list(module.functions):
            # A pass may delete functions while an earlier one is being
            # processed; a name gone from the dict is simply finished work.
            fn = module.functions.get(name)
            if fn is None:
                continue
            if self.trace is not None:
                with self.trace.span(f"{pss.name}:{name}", cat="function"):
                    fn_changed = bool(pss.run_on_function(fn, ctx))
            else:
                fn_changed = bool(pss.run_on_function(fn, ctx))
            if fn_changed:
                changed_fns.add(name)
        return bool(changed_fns), changed_fns

    def _run_pass_parallel(
        self, pss: Pass, module: Module, ctx: PassContext
    ) -> Tuple[bool, Optional[Set[str]]]:
        """Fan a per-function pass out across worker threads.

        Each worker mutates its own function (disjoint domains) under a
        private stats scope; results — including stats deltas — are
        merged back in module order, making the outcome independent of
        worker scheduling and bit-identical to the serial path.
        """
        names = list(module.functions)

        def work(name: str):
            fn = module.functions.get(name)
            if fn is None:
                return name, False, {}
            local = ctx.worker_scope()
            if self.trace is not None:
                with self.trace.span(f"{pss.name}:{name}", cat="function"):
                    fn_changed = bool(pss.run_on_function(fn, local))
            else:
                fn_changed = bool(pss.run_on_function(fn, local))
            return name, fn_changed, local.stats

        executor = self._ensure_executor()
        changed_fns: Set[str] = set()
        for name, fn_changed, stats in executor.map(work, names):
            if fn_changed:
                changed_fns.add(name)
            for key, amount in stats.items():
                ctx.bump(key, amount)
        return bool(changed_fns), changed_fns

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-pass"
            )
        return self._executor

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _note_changes(
        self,
        pss: Pass,
        ctx: PassContext,
        changed: bool,
        changed_fns: Optional[Set[str]],
        n_functions: int,
    ) -> None:
        self.pass_changes[pss.name] = self.pass_changes.get(pss.name, False) or changed
        self.module_changed = self.module_changed or changed
        if changed_fns is not None:
            ctx.bump(f"pass.{pss.name}.changed_functions", len(changed_fns))
            ctx.bump(
                f"pass.{pss.name}.unchanged_functions",
                n_functions - len(changed_fns),
            )
        elif changed:
            ctx.bump(f"pass.{pss.name}.changed_modules")

    def _verify_after(
        self, pss: Pass, module: Module, changed_fns: Optional[Set[str]]
    ) -> None:
        """Re-verify the functions ``pss`` changed (all when unattributed)."""
        symbols = set(module.data)
        if changed_fns is None:
            targets = list(module.functions.values())
        else:
            targets = [
                module.functions[name]
                for name in sorted(changed_fns)
                if name in module.functions
            ]
        for fn in targets:
            try:
                if self.trace is not None:
                    with self.trace.span(f"verify:{fn.name}", cat="verify"):
                        verify_function(fn, known_symbols=symbols)
                else:
                    verify_function(fn, known_symbols=symbols)
            except Exception as exc:
                raise RuntimeError(
                    f"IR verification failed after pass "
                    f"{pss.name!r} on {fn.name}: {exc}"
                ) from exc

    def _verify_final(self, module: Module) -> None:
        """Whole-module verification at the end of the pipeline.

        Selective verification trusts each pass's changed-function
        report; a pass that mutates the module while reporting no
        change escapes it entirely (e.g. leaving an unreachable block
        with a dangling branch target behind). This final barrier
        catches such silent corruption before the module is handed to
        the caller, at the cost of one full verification per compile.
        """
        try:
            verify_module(module)
        except Exception as exc:
            raise RuntimeError(
                f"IR verification failed at end of pipeline: {exc}"
            ) from exc

    def total_time(self) -> float:
        return sum(self.timings.values())
