"""Pass framework: context, base class, manager.

Passes run per function; the manager optionally verifies the IR after
every pass (on by default — the transformations here restructure control
flow aggressively and the verifier catches breakage at the pass that
caused it).
"""

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verifier import verify_function
from repro.machine.model import MachineModel, RS6000


@dataclass
class PassContext:
    """Shared state passed to every pass invocation."""

    module: Module
    model: MachineModel = RS6000
    #: Edge profile from PDF: (fn, src_label, dst_label) -> count.
    edge_profile: Optional[Dict] = None
    #: Block profile from PDF: (fn, label) -> count.
    block_profile: Optional[Dict] = None
    options: Dict[str, object] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.stats[counter] = self.stats.get(counter, 0) + amount

    def edge_count(self, fn_name: str, src: str, dst: str) -> Optional[int]:
        if self.edge_profile is None:
            return None
        return self.edge_profile.get((fn_name, src, dst), 0)

    def block_count(self, fn_name: str, label: str) -> Optional[int]:
        if self.block_profile is None:
            return None
        return self.block_profile.get((fn_name, label), 0)


class Pass:
    """Base class: implement :meth:`run_on_function`."""

    name = "pass"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        raise NotImplementedError

    def run_on_module(self, module: Module, ctx: PassContext) -> bool:
        changed = False
        for fn in module.functions.values():
            changed |= bool(self.run_on_function(fn, ctx))
        return changed

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


class PassManager:
    """Runs an ordered list of passes over a module."""

    def __init__(self, passes: List[Pass], verify: bool = True):
        self.passes = list(passes)
        self.verify = verify
        self.timings: Dict[str, float] = {}

    def run(self, module: Module, ctx: Optional[PassContext] = None) -> PassContext:
        ctx = ctx if ctx is not None else PassContext(module)
        for pss in self.passes:
            start = time.perf_counter()
            pss.run_on_module(module, ctx)
            elapsed = time.perf_counter() - start
            self.timings[pss.name] = self.timings.get(pss.name, 0.0) + elapsed
            if self.verify:
                symbols = set(module.data)
                for fn in module.functions.values():
                    try:
                        verify_function(fn, known_symbols=symbols)
                    except Exception as exc:
                        raise RuntimeError(
                            f"IR verification failed after pass "
                            f"{pss.name!r} on {fn.name}: {exc}"
                        ) from exc
        return ctx

    def total_time(self) -> float:
        return sum(self.timings.values())
