"""Pass framework: context, base class, manager.

Passes run per function; the manager optionally verifies the IR after
every pass (on by default — the transformations here restructure control
flow aggressively and the verifier catches breakage at the pass that
caused it). Verification is selective: the manager drives
:meth:`Pass.run_on_function` itself and re-verifies only the functions
the pass reported changing. Passes that override
:meth:`Pass.run_on_module` lose per-function attribution, so every
function is re-verified after them.
"""

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verifier import verify_function
from repro.machine.model import MachineModel, RS6000


@dataclass
class PassContext:
    """Shared state passed to every pass invocation."""

    module: Module
    model: MachineModel = RS6000
    #: Edge profile from PDF: (fn, src_label, dst_label) -> count.
    edge_profile: Optional[Dict] = None
    #: Block profile from PDF: (fn, label) -> count.
    block_profile: Optional[Dict] = None
    options: Dict[str, object] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)

    def bump(self, counter: str, amount: int = 1) -> None:
        self.stats[counter] = self.stats.get(counter, 0) + amount

    def edge_count(self, fn_name: str, src: str, dst: str) -> Optional[int]:
        if self.edge_profile is None:
            return None
        return self.edge_profile.get((fn_name, src, dst), 0)

    def block_count(self, fn_name: str, label: str) -> Optional[int]:
        if self.block_profile is None:
            return None
        return self.block_profile.get((fn_name, label), 0)


class Pass:
    """Base class: implement :meth:`run_on_function`."""

    name = "pass"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        raise NotImplementedError

    def run_on_module(self, module: Module, ctx: PassContext) -> bool:
        changed = False
        for fn in module.functions.values():
            changed |= bool(self.run_on_function(fn, ctx))
        return changed

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


class PassManager:
    """Runs an ordered list of passes over a module."""

    def __init__(self, passes: List[Pass], verify: bool = True):
        self.passes = list(passes)
        self.verify = verify
        self.timings: Dict[str, float] = {}
        #: Pass name -> True if any invocation of that pass reported a change.
        self.pass_changes: Dict[str, bool] = {}
        #: True if any pass changed the module at all.
        self.module_changed = False

    def run(self, module: Module, ctx: Optional[PassContext] = None) -> PassContext:
        ctx = ctx if ctx is not None else PassContext(module)
        for pss in self.passes:
            start = time.perf_counter()
            changed, changed_fns = self._run_pass(pss, module, ctx)
            elapsed = time.perf_counter() - start
            self.timings[pss.name] = self.timings.get(pss.name, 0.0) + elapsed
            self._note_changes(pss, ctx, changed, changed_fns, len(module.functions))
            if self.verify and changed:
                self._verify_after(pss, module, changed_fns)
        return ctx

    # -- helpers (shared with GuardedPassManager) ---------------------------

    def _run_pass(
        self, pss: Pass, module: Module, ctx: PassContext
    ) -> Tuple[bool, Optional[Set[str]]]:
        """Run one pass; return ``(changed, changed_function_names)``.

        ``changed_function_names`` is ``None`` when the pass supplies its
        own :meth:`Pass.run_on_module` — per-function attribution is then
        unavailable and any function may have changed.
        """
        if type(pss).run_on_module is not Pass.run_on_module:
            return bool(pss.run_on_module(module, ctx)), None
        changed_fns: Set[str] = set()
        for name in list(module.functions):
            if pss.run_on_function(module.functions[name], ctx):
                changed_fns.add(name)
        return bool(changed_fns), changed_fns

    def _note_changes(
        self,
        pss: Pass,
        ctx: PassContext,
        changed: bool,
        changed_fns: Optional[Set[str]],
        n_functions: int,
    ) -> None:
        self.pass_changes[pss.name] = self.pass_changes.get(pss.name, False) or changed
        self.module_changed = self.module_changed or changed
        if changed_fns is not None:
            ctx.bump(f"pass.{pss.name}.changed_functions", len(changed_fns))
            ctx.bump(
                f"pass.{pss.name}.unchanged_functions",
                n_functions - len(changed_fns),
            )
        elif changed:
            ctx.bump(f"pass.{pss.name}.changed_modules")

    def _verify_after(
        self, pss: Pass, module: Module, changed_fns: Optional[Set[str]]
    ) -> None:
        """Re-verify the functions ``pss`` changed (all when unattributed)."""
        symbols = set(module.data)
        if changed_fns is None:
            targets = list(module.functions.values())
        else:
            targets = [
                module.functions[name]
                for name in sorted(changed_fns)
                if name in module.functions
            ]
        for fn in targets:
            try:
                verify_function(fn, known_symbols=symbols)
            except Exception as exc:
                raise RuntimeError(
                    f"IR verification failed after pass "
                    f"{pss.name!r} on {fn.name}: {exc}"
                ) from exc

    def total_time(self) -> float:
        return sum(self.timings.values())
