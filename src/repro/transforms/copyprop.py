"""Local copy propagation.

Forwards ``LR rd, rs`` copies to later uses inside the same block (the
"later coalescing" stage the paper mentions after load/store motion:
"both LR operations inside the loop will eventually be eliminated by a
later coalescing or limited combining stage"). Cross-block collapsing is
the job of :mod:`repro.transforms.combining`.
"""

from typing import Dict

from repro.ir.function import Function
from repro.ir.operands import Reg
from repro.transforms.pass_manager import Pass, PassContext


class CopyPropagation(Pass):
    """Forward register copies to uses within each block."""

    name = "copy-propagation"

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed = False
        for bb in fn.blocks:
            copies: Dict[Reg, Reg] = {}
            for instr in bb.instrs:
                # Rewrite uses through known copies. LU/STU base registers
                # are also written, so propagating into them would change
                # which register receives the update — skip those.
                if copies and not instr.opcode in ("LU", "STU"):
                    mapping = {
                        reg: copies[reg] for reg in instr.uses() if reg in copies
                    }
                    if mapping:
                        instr.rename_uses(mapping)
                        changed = True
                        ctx.bump("copyprop.uses-rewritten")
                elif copies and instr.opcode in ("LU", "STU"):
                    if instr.ra in copies:  # the stored value of STU only
                        if instr.opcode == "STU":
                            instr.ra = copies[instr.ra]
                            changed = True
                            ctx.bump("copyprop.uses-rewritten")

                # Invalidate mappings whose source or destination is
                # redefined, then record a new copy.
                defs = set(instr.defs())
                if defs:
                    copies = {
                        dst: src
                        for dst, src in copies.items()
                        if dst not in defs and src not in defs
                    }
                if instr.is_copy and instr.rd != instr.ra:
                    copies[instr.rd] = instr.ra
        return changed
