"""Speculative load/store motion out of loops.

The paper's first pathlength technique: a group of loads/stores to the
same ``base + displacement`` location is replaced inside the loop by
register-cached copies, with the cache register initialised in the loop
preheader and written back on every loop exit. Unlike classical invariant
motion, the group members may be *conditionally* executed inside the
loop — the motion is speculative — so it is only done when provably safe.

Conditions (numbered as in the paper):

1. every access in the group uses the same base register, displacement
   and width (our IR is word-only, so width always matches);
2. the base register is not written inside the loop;
3. the location is not volatile;
4. the location cannot overlap any *other* memory reference in the loop
   (including inner loops); calls block motion unless the callee's
   storage modifications are confined to its arguments (the paper's I/O
   procedure exception) — then the cached value is stored back before
   the call and reloaded after it;
5. the access is provably safe to execute on every iteration: either the
   base provably holds the address of a data object of sufficient size
   (condition 5a), or some load/store of the same location dominates the
   loop entry (condition 5b).
"""

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instr, make_load, make_lr, make_store
from repro.ir.operands import Reg
from repro.analysis.alias import MemoryModel
from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import (
    Loop,
    find_natural_loops,
    get_or_create_preheader,
    insert_before_terminator,
    split_edge,
)
from repro.machine.libcalls import call_effects
from repro.transforms.pass_manager import Pass, PassContext


class LoopMemoryMotion(Pass):
    """Speculative load/store motion out of loops."""

    name = "loop-memory-motion"

    def __init__(self, use_profile: bool = True):
        # With PDF available, skip motion when the accesses are on paths
        # that essentially never execute relative to the loop (the paper:
        # "execution profiles may be very helpful in deciding when this
        # type of optimization should be applied").
        self.use_profile = use_profile

    MAX_MOTIONS = 64

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed = False
        # Apply one group at a time and rediscover the loops after every
        # motion: each application adds preheader/exit/flush blocks that
        # enclosing loops' membership and aliasing checks must see (an
        # inner loop's exit-edge store lands inside the outer loop).
        for _ in range(self.MAX_MOTIONS):
            applied = False
            # Innermost first: find_natural_loops is smallest-body first.
            for loop in find_natural_loops(fn):
                if self._process_loop_once(fn, loop, ctx):
                    applied = True
                    ctx.bump("loop-motion.groups-moved")
                    break
            if not applied:
                break
            changed = True
        return changed

    def _process_loop_once(self, fn: Function, loop: Loop, ctx: PassContext) -> bool:
        memory = MemoryModel(fn, ctx.module)
        body_blocks = loop.blocks(fn)
        if not body_blocks:
            return False

        body_instrs: List[Tuple[str, Instr]] = []
        for bb in body_blocks:
            for instr in bb.instrs:
                body_instrs.append((bb.label, instr))

        # Registers written in the loop (condition 2).
        written = set()
        for _, instr in body_instrs:
            written.update(instr.defs())

        # Group candidate accesses by (base, disp).
        groups: Dict[Tuple[Reg, int], List[Tuple[str, Instr]]] = {}
        for label, instr in body_instrs:
            if instr.opcode in ("L", "ST"):  # update forms modify the base
                if not instr.attrs.get("cached"):
                    groups.setdefault((instr.base, instr.disp), []).append(
                        (label, instr)
                    )

        calls = [instr for _, instr in body_instrs if instr.is_call]

        for (base, disp), members in groups.items():
            if base in written:
                continue  # condition 2
            sample_ref = memory.memref(members[0][1])
            verdicts = [
                self._call_verdict(call, sample_ref, memory) for call in calls
            ]
            if any(v == "block" for v in verdicts):
                continue
            flushable_calls = [
                call for call, v in zip(calls, verdicts) if v == "flush"
            ]
            if self._group_blocked(fn, loop, memory, members, body_instrs, ctx):
                continue
            if not self._group_safe(fn, loop, memory, members, ctx):
                continue
            try:
                self._apply_motion(fn, loop, base, disp, members, flushable_calls, ctx)
            except RuntimeError:
                continue  # no register available for the cache: skip
            return True
        return False

    def _call_verdict(self, call: Instr, ref, memory: MemoryModel) -> str:
        """How a call in the loop interacts with the cached location.

        - ``ok``: the callee provably cannot touch the location;
        - ``flush``: the callee may touch memory but only through its
          pointer arguments (the paper's I/O-procedure exception): keep
          the motion and flush/reload the cache around the call;
        - ``block``: the callee may touch the location unpredictably.
        """
        effects = call_effects(call.symbol)
        if effects is not None:
            if not (effects.reads_memory or effects.writes_memory):
                return "ok"  # pure / IO-only library routine
            if effects.memory_confined_to_args:
                return "flush"
            return "block"
        # Internal callee: the paper's inter-procedural extension — use
        # the module summary to prove disjointness from the location.
        summary = memory.summaries.get(call.symbol)
        if summary is None:
            return "block"
        if not summary.may_touch_symbol(ref.symbol):
            return "ok"
        return "block"

    def _group_blocked(
        self,
        fn: Function,
        loop: Loop,
        memory: MemoryModel,
        members: List[Tuple[str, Instr]],
        body_instrs: List[Tuple[str, Instr]],
        ctx: PassContext,
    ) -> bool:
        member_ids = {instr.uid for _, instr in members}
        sample_ref = memory.memref(members[0][1])

        # Condition 3: volatility.
        for _, instr in members:
            if memory.is_volatile_ref(instr):
                return True

        # Condition 4: no overlap with any other memory reference in the
        # loop (update-form accesses included).
        for _, instr in body_instrs:
            if instr.is_memory and instr.uid not in member_ids:
                if memory.may_alias(sample_ref, memory.memref(instr)):
                    return True
        return False

    def _group_safe(
        self,
        fn: Function,
        loop: Loop,
        memory: MemoryModel,
        members: List[Tuple[str, Instr]],
        ctx: PassContext,
    ) -> bool:
        instr = members[0][1]
        dom = compute_dominators(fn)

        # Condition 5a: base provably inside a sufficiently large object,
        # with the base's definition dominating the loop header.
        if memory.provably_safe(instr):
            ref = memory.memref(instr)
            if ref.single_def_base:
                def_instr = memory.single_def_of(ref.base)
                if def_instr is not None:
                    try:
                        def_block = fn.find_block_of(def_instr)
                    except ValueError:
                        def_block = None
                    if def_block is not None and dom.dominates(
                        def_block.label, loop.header
                    ):
                        return True

        # Condition 5b: a load/store of the same location in a block that
        # dominates the loop header (outside the loop).
        for bb in fn.blocks:
            if bb.label in loop.body:
                continue
            if not dom.dominates(bb.label, loop.header):
                continue
            for other in bb.instrs:
                if (
                    other.is_memory
                    and other.opcode in ("L", "ST")
                    and other.base == instr.base
                    and other.disp == instr.disp
                ):
                    return True
        return False

    def _apply_motion(
        self,
        fn: Function,
        loop: Loop,
        base: Reg,
        disp: int,
        members: List[Tuple[str, Instr]],
        flushable_calls: List[Instr],
        ctx: PassContext,
    ) -> None:
        cache = fn.new_vreg("gpr")
        has_store = any(instr.is_store for _, instr in members)

        # Collect exit edges before any CFG surgery.
        exit_edges = loop.exit_edges(fn)

        # Preheader: initialise the cache register. The group members may
        # be conditionally executed inside the loop, so this load runs on
        # entries where none of them would have: it is speculative, and
        # the paged memory model defers (poisons) rather than traps if it
        # faults. Condition 5 is what makes that fault impossible.
        init = make_load(cache, disp, base)
        init.attrs["speculative"] = True
        pre = get_or_create_preheader(fn, loop)
        insert_before_terminator(pre, init)

        # Replace the in-loop accesses with register copies.
        for label, instr in members:
            bb = fn.block(label)
            idx = bb.index_of(instr)
            if instr.is_load:
                bb.instrs[idx] = make_lr(instr.rd, cache)
            else:
                bb.instrs[idx] = make_lr(cache, instr.ra)

        # Stores must be materialised at every loop exit.
        if has_store:
            for src, dst in exit_edges:
                edge_bb = split_edge(fn, src, dst)
                insert_before_terminator(edge_bb, make_store(disp, base, cache))

        # Around calls whose memory effects are confined to their
        # arguments: flush the cached value before, reload after.
        flush_ids = {c.uid for c in flushable_calls}
        if flush_ids:
            for bb in loop.blocks(fn):
                i = 0
                while i < len(bb.instrs):
                    instr = bb.instrs[i]
                    if instr.uid in flush_ids:
                        if has_store:
                            flush_store = make_store(disp, base, cache)
                            flush_store.attrs["cached"] = True
                            bb.insert(i, flush_store)
                            i += 1
                        reload = make_load(cache, disp, base)
                        reload.attrs["cached"] = True
                        # Reloads run whenever the call does, even on
                        # iterations where no group member would have
                        # touched the location: speculative like the
                        # preheader load.
                        reload.attrs["speculative"] = True
                        bb.insert(i + 1, reload)
                        i += 1
                    i += 1
