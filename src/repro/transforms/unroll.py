"""Loop unrolling.

"The loops are unrolled prior to scheduling and live range renaming is
performed, to increase scheduling opportunities." Unrolling replicates the
loop body k-1 times; iteration i's back edges branch into copy i+1, and
the last copy's back edges return to the original header. Exit edges of
every copy keep their original (out-of-loop) targets, so the loop can
still exit after any iteration — this is what lets enhanced pipeline
scheduling produce schedules with "a variable iteration issue rate,
depending on which path is followed at run time".
"""

from typing import Dict, List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import make_b
from repro.analysis.loops import Loop, find_natural_loops
from repro.transforms.pass_manager import Pass, PassContext


def innermost_loops(fn: Function) -> List[Loop]:
    loops = find_natural_loops(fn)
    inner = []
    for loop in loops:
        if not any(
            other is not loop and other.header in loop.body and other.body < loop.body
            for other in loops
        ):
            inner.append(loop)
    return inner


class LoopUnroll(Pass):
    """Unroll innermost loops by a fixed factor."""

    name = "loop-unroll"

    def __init__(self, factor: int = 2, max_body_instrs: int = 40):
        if factor < 2:
            raise ValueError("unroll factor must be >= 2")
        self.factor = factor
        self.max_body_instrs = max_body_instrs

    #: With PDF available, loops averaging fewer trips than this are not
    #: unrolled — the kernel never overlaps and the exit-copy/bookkeeping
    #: overhead is pure loss ("execution profiles may be very helpful in
    #: deciding when this type of optimization should be applied").
    MIN_PROFILED_TRIPS = 3.0

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        changed = False
        for loop in innermost_loops(fn):
            if not self._worth_unrolling(fn, loop, ctx):
                continue
            if self._unroll(fn, loop, ctx):
                changed = True
                ctx.bump("unroll.loops-unrolled")
        return changed

    def _worth_unrolling(self, fn: Function, loop: Loop, ctx: PassContext) -> bool:
        if ctx.block_profile is None or ctx.edge_profile is None:
            return True  # no profile: be aggressive, as the paper is
        header_count = ctx.block_count(fn.name, loop.header)
        if header_count is None or header_count == 0:
            return False  # never executed in training: leave it alone
        back = sum(
            ctx.edge_count(fn.name, src, dst) or 0
            for src, dst in loop.back_edges
        )
        entries = max(header_count - back, 1)
        return header_count / entries >= self.MIN_PROFILED_TRIPS

    def _unroll(self, fn: Function, loop: Loop, ctx: PassContext) -> bool:
        body = loop.blocks(fn)  # layout order
        if not body:
            return False
        if sum(len(bb.instrs) for bb in body) > self.max_body_instrs:
            return False
        if any(bb is fn.entry for bb in body):
            # The loop header is the function entry: give the function a
            # fresh entry block that falls through into the old one, so
            # the loop gets a real entry edge (needed both here and for
            # pipeline prolog bookkeeping copies).
            fresh = BasicBlock(fn.new_label("entry"))
            fn.blocks.insert(0, fresh)
            body = loop.blocks(fn)
        # Profiling counters must not be duplicated.
        if any(i.attrs.get("counter") for bb in body for i in bb.instrs):
            return False

        body_labels = {bb.label for bb in body}
        # Record original fallthrough targets inside the body.
        fallthrough: Dict[str, str] = {}
        for bb in body:
            if bb.falls_through:
                nxt = fn.layout_successor(bb)
                if nxt is not None:
                    fallthrough[bb.label] = nxt.label

        copies: List[List[BasicBlock]] = []
        label_maps: List[Dict[str, str]] = []
        for k in range(1, self.factor):
            mapping = {
                bb.label: fn.new_label(f"u{k}.{bb.label}") for bb in body
            }
            clone = [bb.clone(mapping[bb.label]) for bb in body]
            copies.append(clone)
            label_maps.append(mapping)

        # Retarget branches inside each copy.
        for k, clone in enumerate(copies):
            mapping = label_maps[k]
            next_header = (
                label_maps[k + 1][loop.header]
                if k + 1 < len(copies)
                else loop.header
            )
            for bb in clone:
                term = bb.terminator
                if term is None or term.target is None:
                    continue
                if term.target == loop.header:
                    term.target = next_header  # back edge -> next copy
                elif term.target in mapping:
                    term.target = mapping[term.target]
                # Exit targets stay as they are.

        # Retarget the original body's back edges into the first copy.
        first_header = label_maps[0][loop.header]
        for bb in body:
            term = bb.terminator
            if term is not None and term.target == loop.header:
                # Only rewrite genuine back edges (self loop into header).
                term.target = first_header

        # Splice the copies into the layout after the original body.
        insert_at = fn.block_index(body[-1]) + 1
        for clone in copies:
            for bb in clone:
                fn.blocks.insert(insert_at, bb)
                insert_at += 1

        # Fix fallthrough edges: originals whose fallthrough was the header
        # (back edge) and clones whose layout changed.
        self._fix_fallthroughs(
            fn, body, fallthrough, {bb.label: bb.label for bb in body}, first_header, loop
        )
        for k, clone in enumerate(copies):
            mapping = label_maps[k]
            next_header = (
                label_maps[k + 1][loop.header]
                if k + 1 < len(copies)
                else loop.header
            )
            self._fix_fallthroughs(fn, clone, fallthrough, mapping, next_header, loop)
        return True

    def _fix_fallthroughs(
        self,
        fn: Function,
        blocks: List[BasicBlock],
        fallthrough: Dict[str, str],
        mapping: Dict[str, str],
        next_header: str,
        loop: Loop,
    ) -> None:
        """Ensure each block's fallthrough reaches its intended target."""
        reverse = {v: k for k, v in mapping.items()}
        for bb in blocks:
            orig_label = reverse.get(bb.label, bb.label)
            target = fallthrough.get(orig_label)
            if target is None:
                continue
            # Intended new target: header -> next copy's header; body label
            # -> this copy's version; exit label -> unchanged.
            if target == loop.header:
                intended = next_header
            elif target in mapping:
                intended = mapping[target]
            else:
                intended = target
            if not bb.falls_through:
                continue
            nxt = fn.layout_successor(bb)
            if nxt is not None and nxt.label == intended:
                continue
            if bb.terminator is None:
                bb.append(make_b(intended))
            else:
                tramp = BasicBlock(fn.new_label(f"ft.{bb.label}"))
                tramp.append(make_b(intended))
                fn.blocks.insert(fn.block_index(bb) + 1, tramp)
