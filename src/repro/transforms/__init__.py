"""Transformation passes.

The paper's original contributions each get a pass:

- :class:`~repro.transforms.loop_memory_motion.LoopMemoryMotion` —
  speculative load/store motion out of loops,
- :class:`~repro.transforms.unspeculation.Unspeculation`,
- :class:`~repro.transforms.combining.LimitedCombining`,
- :class:`~repro.transforms.bb_expansion.BasicBlockExpansion`,
- :class:`~repro.transforms.prolog_tailoring.PrologTailoring`
  (with :class:`~repro.transforms.linkage.LinkageLowering` as the
  baseline "save everything in the prolog" strategy),
- :class:`~repro.transforms.unroll.LoopUnroll` and
  :class:`~repro.transforms.renaming.LiveRangeRenaming` feeding the
  schedulers in :mod:`repro.scheduling`.

Supporting classical passes (the paper assumes these already ran in xlc):
straightening, unreachable-code elimination, copy propagation, dead-code
elimination.
"""

from repro.transforms.pass_manager import Pass, PassContext, PassManager
from repro.transforms.straighten import RemoveUnreachable, Straighten
from repro.transforms.copyprop import CopyPropagation
from repro.transforms.dce import DeadCodeElimination
from repro.transforms.loop_memory_motion import LoopMemoryMotion
from repro.transforms.unspeculation import Unspeculation
from repro.transforms.combining import LimitedCombining
from repro.transforms.bb_expansion import BasicBlockExpansion
from repro.transforms.unroll import LoopUnroll
from repro.transforms.renaming import LiveRangeRenaming
from repro.transforms.linkage import LinkageLowering
from repro.transforms.prolog_tailoring import PrologTailoring

__all__ = [
    "BasicBlockExpansion",
    "CopyPropagation",
    "DeadCodeElimination",
    "LimitedCombining",
    "LinkageLowering",
    "LiveRangeRenaming",
    "LoopMemoryMotion",
    "LoopUnroll",
    "Pass",
    "PassContext",
    "PassManager",
    "PrologTailoring",
    "RemoveUnreachable",
    "Straighten",
    "Unspeculation",
]
