"""Compile-performance layer: fingerprints, COW snapshots, memoization,
function-parallel pass execution support, and compile-time tracing.

The paper reports compile-time cost as a first-class result (its
Section 6 table motivates "limited" variants of every technique); this
package keeps the *guarded* pipeline's robustness affordable:

- :mod:`repro.perf.fingerprint` — structural content hashes of
  functions/modules; the foundation everything else keys on.
- :mod:`repro.perf.snapshot` — :class:`SnapshotStore`: per-function
  copy-on-write snapshots for the guarded pass manager (full clones
  only for ``run_on_module`` passes).
- :mod:`repro.perf.memo` — :class:`CompileCache`: whole-compile
  memoization for ``evaluate.measure`` across benchmark repetitions.
- :mod:`repro.perf.store` — :class:`PersistentCacheShard`: the
  disk-backed, checksummed tier behind the :class:`CompileCache`;
  fingerprint-prefix sharded, quarantines corrupt entries individually.
- :mod:`repro.perf.trace` — :class:`TraceRecorder`: per-(pass, function)
  spans and counters in Chrome trace-event JSON (``--trace-out``).
"""

from repro.perf.fingerprint import (
    fingerprint_function,
    fingerprint_module,
    module_fingerprints,
)
from repro.perf.memo import DEFAULT_CACHE, CompileCache, config_key
from repro.perf.snapshot import CowSnapshot, SnapshotStore
from repro.perf.store import PersistentCacheShard, entry_checksum
from repro.perf.trace import TraceRecorder

__all__ = [
    "CompileCache",
    "CowSnapshot",
    "DEFAULT_CACHE",
    "PersistentCacheShard",
    "SnapshotStore",
    "TraceRecorder",
    "entry_checksum",
    "config_key",
    "fingerprint_function",
    "fingerprint_module",
    "module_fingerprints",
]
