"""Persistent, checksummed shard of the :class:`CompileCache`.

A warm compile fleet must survive restart: the serve layer
(:mod:`repro.serve`) keys finished compile payloads by module
fingerprint and pipeline-config key, and this store persists them to
disk, sharded by fingerprint prefix::

    <root>/<fp[:2]>/<fp>-<key digest>.json

Every entry file carries a blake2b checksum over its canonical body
(fingerprint + config key + payload). Loading verifies the checksum and
the embedded fingerprint before trusting anything; an entry that fails
— truncated write, bit rot, hand-editing — is **quarantined
individually** (renamed ``*.corrupt``) and the rest of the shard keeps
serving. A corrupt entry must never take out its shard: a fleet that
discards a whole prefix directory because one file rotted would
recompile everything behind it.

Writes are durable-atomic: temp file, ``fsync`` of the temp file,
``os.replace``, ``fsync`` of the parent directory. Atomic against
readers alone would only need the replace; power loss additionally
needs both fsyncs — without the file fsync the rename can reach disk
ahead of the data it names (publishing a torn entry), and without the
directory fsync the rename itself may not survive. The chaos
filesystem (:mod:`repro.robustness.chaosfs`) models exactly this and
pins it in ``tests/perf/test_store_durability.py``.

Environmental failure is contained, not fatal:

- **disk budget** — ``max_bytes`` caps the shard's footprint with
  on-disk LRU eviction (oldest access first); an ``ENOSPC`` from the
  filesystem evicts and retries once before giving up (a cache write
  is best-effort);
- **whole-shard quarantine** — ``eio_threshold`` consecutive ``EIO``
  errors mark the medium itself as dying and disable the shard
  (reads miss, writes drop) instead of hammering broken hardware;
  one success before the threshold resets the count.
"""

import errno
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.robustness.chaosfs import REAL_FS

#: Digest size for the per-entry checksum.
_DIGEST_SIZE = 16
#: Digest size for the config-key component of the filename.
_KEY_DIGEST_SIZE = 8


def entry_checksum(fingerprint: str, key: str, payload: Dict) -> str:
    """Blake2b over the canonical JSON body of one entry."""
    body = json.dumps(
        {"fingerprint": fingerprint, "key": key, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(body.encode(), digest_size=_DIGEST_SIZE).hexdigest()


def _key_digest(key: str) -> str:
    return hashlib.blake2b(key.encode(), digest_size=_KEY_DIGEST_SIZE).hexdigest()


class PersistentCacheShard:
    """Disk-backed (fingerprint, config key) -> payload store.

    Payloads are JSON-serialisable dicts (the serve layer stores the
    compiled IR text plus its accounting). The in-memory
    :class:`~repro.perf.memo.CompileCache` sits in front; this shard is
    the restart-surviving tier behind it.

    ``fs`` is the filesystem interface (default the real one); the
    chaos harness substitutes a fault-injecting
    :class:`~repro.robustness.chaosfs.ChaosFs`.
    """

    def __init__(
        self,
        root,
        prefix_len: int = 2,
        fs=None,
        max_bytes: Optional[int] = None,
        eio_threshold: int = 3,
    ):
        self.root = Path(root)
        self.prefix_len = prefix_len
        self.fs = fs if fs is not None else REAL_FS
        self.max_bytes = max_bytes
        self.eio_threshold = eio_threshold
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        self.evictions = 0
        self.write_errors = 0
        self.disabled = False
        self._eio_run = 0

    # -- paths ---------------------------------------------------------------

    def _path(self, fingerprint: str, key: str) -> Path:
        shard = self.root / fingerprint[: self.prefix_len]
        return shard / f"{fingerprint}-{_key_digest(key)}.json"

    # -- media-failure accounting --------------------------------------------

    def _note_io_ok(self) -> None:
        self._eio_run = 0

    def _note_io_error(self, exc: OSError) -> None:
        if exc.errno != errno.EIO:
            return
        self._eio_run += 1
        if self._eio_run >= self.eio_threshold and not self.disabled:
            # The medium, not an entry, is the problem: stop touching it.
            self.disabled = True

    # -- read ----------------------------------------------------------------

    def get(self, fingerprint: str, key: str) -> Optional[Dict]:
        """The stored payload, or ``None`` (missing, quarantined, disabled)."""
        if self.disabled:
            self.misses += 1
            return None
        path = self._path(fingerprint, key)
        if not path.exists():
            self.misses += 1
            return None
        entry = self._load(path, expect_fingerprint=fingerprint, expect_key=key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def _load(
        self,
        path: Path,
        expect_fingerprint: Optional[str] = None,
        expect_key: Optional[str] = None,
    ) -> Optional[Dict]:
        """Parse and verify one entry file; quarantine it on any defect."""
        try:
            raw = json.loads(self.fs.read_text(path))
        except OSError as exc:
            self._note_io_error(exc)
            return None  # vanished concurrently or dying media
        except ValueError:
            self._quarantine(path)
            return None
        self._note_io_ok()
        if not isinstance(raw, dict) or not all(
            field in raw for field in ("fingerprint", "key", "payload", "checksum")
        ):
            self._quarantine(path)
            return None
        expected = entry_checksum(raw["fingerprint"], raw["key"], raw["payload"])
        if raw["checksum"] != expected:
            self._quarantine(path)
            return None
        if expect_fingerprint is not None and raw["fingerprint"] != expect_fingerprint:
            self._quarantine(path)
            return None
        if expect_key is not None and raw["key"] != expect_key:
            self._quarantine(path)
            return None
        return raw

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside; only this entry is lost."""
        try:
            self.fs.replace(path, str(path) + ".corrupt")
        except OSError:
            pass  # already moved by a concurrent loader
        self.quarantined += 1

    # -- write ---------------------------------------------------------------

    def put(self, fingerprint: str, key: str, payload: Dict) -> Optional[Path]:
        """Durably persist one entry; best-effort (``None`` on give-up).

        The publication sequence is write-tmp, fsync-tmp, rename,
        fsync-dir — crash-safe at every cut point: a crash before the
        rename leaves the old entry (plus a dead ``.tmp`` a later put
        overwrites); a crash after it leaves either the old or the
        complete new entry depending on whether the directory update
        reached disk, never a torn one.
        """
        if self.disabled:
            return None
        path = self._path(fingerprint, key)
        try:
            return self._put_once(path, fingerprint, key, payload)
        except OSError as exc:
            self._note_io_error(exc)
            if exc.errno == errno.ENOSPC:
                # Disk full: make room and retry once.
                self._evict(target_free=max(4096, self._entry_size(payload)))
                try:
                    return self._put_once(path, fingerprint, key, payload)
                except OSError as retry_exc:
                    self._note_io_error(retry_exc)
            self.write_errors += 1
            return None

    def _put_once(
        self, path: Path, fingerprint: str, key: str, payload: Dict
    ) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "fingerprint": fingerprint,
            "key": key,
            "payload": payload,
            "checksum": entry_checksum(fingerprint, key, payload),
        }
        data = json.dumps(entry, indent=1, sort_keys=True)
        if self.max_bytes is not None:
            self._enforce_budget(incoming=len(data))
        tmp = path.with_name(path.name + ".tmp")
        self.fs.write_text(tmp, data)
        self.fs.fsync(tmp)
        self.fs.replace(tmp, path)
        self.fs.fsync_dir(path.parent)
        self._note_io_ok()
        self.stores += 1
        return path

    @staticmethod
    def _entry_size(payload: Dict) -> int:
        try:
            return len(json.dumps(payload))
        except (TypeError, ValueError):
            return 4096

    # -- eviction ------------------------------------------------------------

    def _entries_by_age(self):
        """(atime-ish, size, path) for every entry, least recent first.

        ``st_mtime`` stands in for access recency: puts refresh it, and
        many filesystems mount ``noatime`` so ``st_atime`` lies anyway.
        """
        records = []
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            records.append((stat.st_mtime, stat.st_size, path))
        records.sort()
        return records

    def disk_bytes(self) -> int:
        return sum(size for _mtime, size, _path in self._entries_by_age())

    def _enforce_budget(self, incoming: int = 0) -> None:
        if self.max_bytes is None:
            return
        records = self._entries_by_age()
        used = sum(size for _mtime, size, _path in records)
        for _mtime, size, path in records:
            if used + incoming <= self.max_bytes:
                break
            try:
                self.fs.remove(path)
            except OSError:
                continue
            used -= size
            self.evictions += 1

    def _evict(self, target_free: int) -> None:
        """ENOSPC relief: drop the oldest entries to free ``target_free``."""
        freed = 0
        for _mtime, size, path in self._entries_by_age():
            if freed >= target_free:
                break
            try:
                self.fs.remove(path)
            except OSError:
                continue
            freed += size
            self.evictions += 1

    # -- bulk ----------------------------------------------------------------

    def load_all(self) -> Iterator[Tuple[str, str, Dict]]:
        """Yield every valid ``(fingerprint, key, payload)`` in the shard.

        Corrupt entries are quarantined one by one as they are hit; the
        iteration continues past them.
        """
        if self.disabled:
            return
        for path in sorted(self.root.glob("*/*.json")):
            entry = self._load(path)
            if entry is None:
                continue
            if not path.name.startswith(entry["fingerprint"]):
                # Entry verifies internally but sits under the wrong
                # name — treat as corruption, not as a valid record.
                self._quarantine(path)
                continue
            yield entry["fingerprint"], entry["key"], entry["payload"]

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    @property
    def counters(self) -> Dict[str, int]:
        return {
            "store.hits": self.hits,
            "store.misses": self.misses,
            "store.stores": self.stores,
            "store.quarantined": self.quarantined,
            "store.evictions": self.evictions,
            "store.write_errors": self.write_errors,
            "store.disabled": int(self.disabled),
        }
