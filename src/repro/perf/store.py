"""Persistent, checksummed shard of the :class:`CompileCache`.

A warm compile fleet must survive restart: the serve layer
(:mod:`repro.serve`) keys finished compile payloads by module
fingerprint and pipeline-config key, and this store persists them to
disk, sharded by fingerprint prefix::

    <root>/<fp[:2]>/<fp>-<key digest>.json

Every entry file carries a blake2b checksum over its canonical body
(fingerprint + config key + payload). Loading verifies the checksum and
the embedded fingerprint before trusting anything; an entry that fails
— truncated write, bit rot, hand-editing — is **quarantined
individually** (renamed ``*.corrupt``) and the rest of the shard keeps
serving. A corrupt entry must never take out its shard: a fleet that
discards a whole prefix directory because one file rotted would
recompile everything behind it.

Writes are atomic (temp file + ``os.replace``), so a crash mid-``put``
leaves either the old entry or no entry, never a torn one.
"""

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

#: Digest size for the per-entry checksum.
_DIGEST_SIZE = 16
#: Digest size for the config-key component of the filename.
_KEY_DIGEST_SIZE = 8


def entry_checksum(fingerprint: str, key: str, payload: Dict) -> str:
    """Blake2b over the canonical JSON body of one entry."""
    body = json.dumps(
        {"fingerprint": fingerprint, "key": key, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.blake2b(body.encode(), digest_size=_DIGEST_SIZE).hexdigest()


def _key_digest(key: str) -> str:
    return hashlib.blake2b(key.encode(), digest_size=_KEY_DIGEST_SIZE).hexdigest()


class PersistentCacheShard:
    """Disk-backed (fingerprint, config key) -> payload store.

    Payloads are JSON-serialisable dicts (the serve layer stores the
    compiled IR text plus its accounting). The in-memory
    :class:`~repro.perf.memo.CompileCache` sits in front; this shard is
    the restart-surviving tier behind it.
    """

    def __init__(self, root, prefix_len: int = 2):
        self.root = Path(root)
        self.prefix_len = prefix_len
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    # -- paths ---------------------------------------------------------------

    def _path(self, fingerprint: str, key: str) -> Path:
        shard = self.root / fingerprint[: self.prefix_len]
        return shard / f"{fingerprint}-{_key_digest(key)}.json"

    # -- read ----------------------------------------------------------------

    def get(self, fingerprint: str, key: str) -> Optional[Dict]:
        """The stored payload, or ``None`` (missing or quarantined)."""
        path = self._path(fingerprint, key)
        if not path.exists():
            self.misses += 1
            return None
        entry = self._load(path, expect_fingerprint=fingerprint, expect_key=key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def _load(
        self,
        path: Path,
        expect_fingerprint: Optional[str] = None,
        expect_key: Optional[str] = None,
    ) -> Optional[Dict]:
        """Parse and verify one entry file; quarantine it on any defect."""
        try:
            raw = json.loads(path.read_text())
        except OSError:
            return None  # vanished concurrently; nothing to quarantine
        except ValueError:
            self._quarantine(path)
            return None
        if not isinstance(raw, dict) or not all(
            field in raw for field in ("fingerprint", "key", "payload", "checksum")
        ):
            self._quarantine(path)
            return None
        expected = entry_checksum(raw["fingerprint"], raw["key"], raw["payload"])
        if raw["checksum"] != expected:
            self._quarantine(path)
            return None
        if expect_fingerprint is not None and raw["fingerprint"] != expect_fingerprint:
            self._quarantine(path)
            return None
        if expect_key is not None and raw["key"] != expect_key:
            self._quarantine(path)
            return None
        return raw

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside; only this entry is lost."""
        try:
            os.replace(path, str(path) + ".corrupt")
        except OSError:
            pass  # already moved by a concurrent loader
        self.quarantined += 1

    # -- write ---------------------------------------------------------------

    def put(self, fingerprint: str, key: str, payload: Dict) -> Path:
        """Atomically persist one entry; returns its path."""
        path = self._path(fingerprint, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "fingerprint": fingerprint,
            "key": key,
            "payload": payload,
            "checksum": entry_checksum(fingerprint, key, payload),
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(entry, indent=1, sort_keys=True))
        os.replace(tmp, path)
        self.stores += 1
        return path

    # -- bulk ----------------------------------------------------------------

    def load_all(self) -> Iterator[Tuple[str, str, Dict]]:
        """Yield every valid ``(fingerprint, key, payload)`` in the shard.

        Corrupt entries are quarantined one by one as they are hit; the
        iteration continues past them.
        """
        for path in sorted(self.root.glob("*/*.json")):
            entry = self._load(path)
            if entry is None:
                continue
            if not path.name.startswith(entry["fingerprint"]):
                # Entry verifies internally but sits under the wrong
                # name — treat as corruption, not as a valid record.
                self._quarantine(path)
                continue
            yield entry["fingerprint"], entry["key"], entry["payload"]

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    @property
    def counters(self) -> Dict[str, int]:
        return {
            "store.hits": self.hits,
            "store.misses": self.misses,
            "store.stores": self.stores,
            "store.quarantined": self.quarantined,
        }
