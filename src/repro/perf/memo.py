"""Whole-compile memoization for the measurement harness.

Benchmarks recompile identical modules over and over — every
pytest-benchmark round, every ablation column, every PDF comparison
starts from ``workload.fresh_module()``, which rebuilds byte-identical
IR. :class:`CompileCache` keys a finished
:class:`~repro.pipeline.CompileResult` by *content*:

    (module fingerprint, level, canonical pipeline-config key)

so a repeat compile is a dictionary lookup. The cached result's module
is returned as-is (interpreting it does not mutate it); callers that
want to transform the module further should ``clone()`` it first.

``evaluate.measure(memo=...)`` is the intended consumer: pass ``True``
to use the process-wide default cache, or a :class:`CompileCache` to
scope the cache to one benchmark.
"""

from collections import OrderedDict
from typing import Dict, Tuple

from repro.ir.module import Module
from repro.perf.fingerprint import fingerprint_module


def config_key(level: str, **kwargs) -> str:
    """Canonical hashable key for a pipeline configuration.

    Only compile-affecting keyword arguments should be passed; values
    are rendered with ``repr`` after sorting by name, so dict ordering
    and default-vs-explicit differences cannot split the cache.
    """
    parts = [f"level={level!r}"]
    for name in sorted(kwargs):
        value = kwargs[name]
        if value is None:
            continue
        parts.append(f"{name}={value!r}")
    return ";".join(parts)


class CompileCache:
    """Content-addressed, LRU-evicted cache of compile results.

    Eviction is least-recently-*used*: a lookup hit refreshes the entry,
    so a hot workload survives a stream of one-shot compiles (under the
    old FIFO policy a full cache evicted in insertion order no matter
    what was actually being served). ``hits`` / ``misses`` /
    ``evictions`` are exposed via :attr:`counters` — the serve stats
    endpoint and ``ResilienceReport.counters`` surface them.
    """

    def __init__(self, max_entries: int = 64):
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, module: Module, key: str):
        """The cached result for (module content, config), or ``None``."""
        return self.lookup_fp(fingerprint_module(module), key)

    def lookup_fp(self, fp: str, key: str):
        """Like :meth:`lookup` with a precomputed module fingerprint."""
        result = self._entries.get((fp, key))
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
            self._entries.move_to_end((fp, key))
        return result

    def store(self, module: Module, key: str, result) -> None:
        """Record ``result`` for this module content and configuration."""
        self.store_fp(fingerprint_module(module), key, result)

    def store_fp(self, fp: str, key: str, result) -> None:
        """Like :meth:`store` with a precomputed module fingerprint."""
        if (fp, key) in self._entries:
            self._entries.move_to_end((fp, key))
        elif len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[(fp, key)] = result

    @property
    def counters(self) -> Dict[str, int]:
        """Hit/miss/eviction counters in ``ResilienceReport.counters`` form."""
        return {
            "cache.hits": self.hits,
            "cache.misses": self.misses,
            "cache.evictions": self.evictions,
            "cache.entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide cache used by ``evaluate.measure(memo=True)``.
DEFAULT_CACHE = CompileCache()
