"""Copy-on-write module snapshots for the guarded pass pipeline.

The PR-1 guard cloned the *entire* module before every pass — O(passes ×
module size) even when a pass touches one function. The
:class:`SnapshotStore` replaces that with per-function copy-on-write:

- it tracks a fingerprint (:mod:`repro.perf.fingerprint`) per live
  function, updated as passes report changes;
- it keeps at most one cached clone per function, keyed by fingerprint;
- taking a snapshot for a per-function pass re-clones **only** the
  functions whose cached clone is stale (i.e. the functions the previous
  pass actually changed) — everything else is reused from the cache;
- passes that override ``run_on_module`` lose per-function attribution,
  so they fall back to a full ``Module.clone()``.

Rolling back restores per function: cached clones are installed back
into the module (via :meth:`~repro.ir.function.Function.restore_from`
when the function object still exists, preserving identity), module
order is rebuilt, functions the pass added are dropped, and module-level
extras (``name``, data objects, any attribute a faulty pass invented)
are restored exhaustively.
"""

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.module import DataObject, Module
from repro.perf.fingerprint import fingerprint_function


class CowSnapshot:
    """One pass's restore point: function order, extras, fingerprints.

    The function *clones* themselves live in the owning
    :class:`SnapshotStore`'s cache (that is what makes them reusable
    across passes); this object records which fingerprints were live so
    the store can put the right clones back.
    """

    def __init__(
        self,
        order: List[str],
        fingerprints: Dict[str, str],
        extras: Dict[str, object],
        data: Dict[str, DataObject],
    ):
        self.order = order
        self.fingerprints = fingerprints
        self.extras = extras
        self.data = data


class SnapshotStore:
    """Fingerprint ledger + clone cache backing the guard's snapshots."""

    def __init__(self):
        #: Function name -> fingerprint of the *live* module state.
        self.fingerprints: Dict[str, str] = {}
        #: Function name -> (fingerprint, clone) — at most one per function.
        self._clones: Dict[str, Tuple[str, Function]] = {}
        self.counters: Dict[str, int] = {
            "snapshot.fn_cloned": 0,
            "snapshot.fn_reused": 0,
            "snapshot.full_clones": 0,
            "snapshot.restores": 0,
        }

    def _bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    # -- ledger --------------------------------------------------------------

    def prime(self, module: Module) -> None:
        """Fingerprint every function of the pristine module."""
        self.fingerprints = {
            name: fingerprint_function(fn) for name, fn in module.functions.items()
        }

    def refresh(self, module: Module, names: Optional[set] = None) -> set:
        """Re-fingerprint ``names`` (all functions when ``None``).

        Returns the set of function names whose content actually changed
        (including functions added or removed) — the guard uses this to
        shrink a pass's self-reported change set to the real one.
        """
        changed = set()
        if names is None:
            fresh = {
                name: fingerprint_function(fn)
                for name, fn in module.functions.items()
            }
            changed = {
                name
                for name in set(fresh) | set(self.fingerprints)
                if fresh.get(name) != self.fingerprints.get(name)
            }
            self.fingerprints = fresh
            return changed
        for name in names:
            fn = module.functions.get(name)
            if fn is None:
                if self.fingerprints.pop(name, None) is not None:
                    changed.add(name)
                continue
            fresh_fp = fingerprint_function(fn)
            if fresh_fp != self.fingerprints.get(name):
                changed.add(name)
            self.fingerprints[name] = fresh_fp
        return changed

    # -- snapshots -----------------------------------------------------------

    def take_cow(self, module: Module) -> CowSnapshot:
        """Snapshot for a per-function pass: clone only stale functions."""
        for name, fn in module.functions.items():
            fp = self.fingerprints.get(name)
            if fp is None:
                fp = fingerprint_function(fn)
                self.fingerprints[name] = fp
            cached = self._clones.get(name)
            if cached is None or cached[0] != fp:
                self._clones[name] = (fp, fn.clone())
                self._bump("snapshot.fn_cloned")
            else:
                self._bump("snapshot.fn_reused")
        extras = {
            key: value
            for key, value in module.__dict__.items()
            if key not in ("functions", "data")
        }
        data = {
            name: DataObject(obj.name, obj.size, list(obj.init), obj.volatile)
            for name, obj in module.data.items()
        }
        return CowSnapshot(
            order=list(module.functions),
            fingerprints=dict(self.fingerprints),
            extras=extras,
            data=data,
        )

    def take_full(self, module: Module) -> Module:
        """Full-module snapshot (``run_on_module`` passes, no attribution)."""
        self._bump("snapshot.full_clones")
        return module.clone()

    # -- restore -------------------------------------------------------------

    def restore_cow(
        self, module: Module, snapshot: CowSnapshot, preserve: bool = False
    ) -> None:
        """Roll ``module`` back to ``snapshot``, function by function.

        ``preserve`` keeps the clone cache intact (the retry policy rolls
        back, re-runs the pass, and may need to roll back *again*); the
        default consumes cache entries, since an installed clone becomes
        live and may be mutated by later passes.
        """
        self._bump("snapshot.restores")
        restored: Dict[str, Function] = {}
        for name in snapshot.order:
            want_fp = snapshot.fingerprints[name]
            live = module.functions.get(name)
            if live is not None and self.fingerprints.get(name) == want_fp:
                # Function untouched since the snapshot: keep it as is.
                restored[name] = live
                continue
            cached = self._clones.get(name)
            if cached is None or cached[0] != want_fp:  # pragma: no cover
                raise RuntimeError(
                    f"snapshot cache lost function {name!r}@{want_fp}"
                )
            fp, clone = cached
            if preserve:
                clone = clone.clone()
            else:
                del self._clones[name]
            if live is not None:
                # Preserve object identity for references into the module.
                live.restore_from(clone)
                restored[name] = live
            else:
                restored[name] = clone
        # Drop functions the pass added, restore order, extras and data.
        module.functions = restored
        for key in list(module.__dict__):
            if key in ("functions", "data"):
                continue
            if key not in snapshot.extras:
                del module.__dict__[key]
        for key, value in snapshot.extras.items():
            module.__dict__[key] = value
        module.data = snapshot.data if not preserve else {
            name: DataObject(obj.name, obj.size, list(obj.init), obj.volatile)
            for name, obj in snapshot.data.items()
        }
        self.fingerprints = dict(snapshot.fingerprints)

    def restore_full(
        self, module: Module, snapshot: Module, preserve: bool = False
    ) -> None:
        """Roll back from a full clone via ``Module.restore_from``."""
        self._bump("snapshot.restores")
        module.restore_from(snapshot.clone() if preserve else snapshot)

    def forget(self, names) -> None:
        """Invalidate cached clones (e.g. after an unattributed change)."""
        for name in names:
            self._clones.pop(name, None)
