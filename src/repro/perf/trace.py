"""Compile-time tracing in Chrome trace-event format.

A :class:`TraceRecorder` collects per-(pass, function) spans while the
pipeline runs and serialises them as the Trace Event JSON that
``chrome://tracing`` / Perfetto load directly: complete events
(``"ph": "X"``) with microsecond timestamps, one row (``tid``) per
worker thread so the ``jobs=N`` pipeline shows its parallelism, and
counter events (``"ph": "C"``) for the snapshot / memoization / profile
hit statistics.

The recorder is thread-safe (the function-parallel pass manager appends
spans from worker threads) and cheap when absent — every emit site
guards on ``if trace is not None``.

Usage::

    trace = TraceRecorder()
    result = compile_module(module, "vliw", trace=trace)
    trace.write("compile.trace.json")      # load in chrome://tracing
"""

import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional


class TraceRecorder:
    """Collects trace events; serialises to Chrome's trace-event JSON."""

    def __init__(self, process_name: str = "repro-compile"):
        self.process_name = process_name
        self.events: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._origin = time.perf_counter()
        self._tids: Dict[int, int] = {}

    # -- internals -----------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    def _tid(self) -> int:
        """Small stable per-thread id (0 = the main/compile thread)."""
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._tids:
                self._tids[ident] = len(self._tids)
            return self._tids[ident]

    def _append(self, event: Dict[str, object]) -> None:
        with self._lock:
            self.events.append(event)

    # -- emitting ------------------------------------------------------------

    @contextmanager
    def span(self, name: str, cat: str = "pass", **args):
        """Record a complete event around the ``with`` body."""
        start = self._now_us()
        try:
            yield
        finally:
            self.complete(name, start, self._now_us() - start, cat=cat, **args)

    def complete(
        self, name: str, start_us: float, dur_us: float, cat: str = "pass", **args
    ) -> None:
        event: Dict[str, object] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": round(start_us, 3),
            "dur": round(max(dur_us, 0.0), 3),
            "pid": 1,
            "tid": self._tid(),
        }
        if args:
            event["args"] = args
        self._append(event)

    def instant(self, name: str, cat: str = "event", **args) -> None:
        event: Dict[str, object] = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": round(self._now_us(), 3),
            "pid": 1,
            "tid": self._tid(),
        }
        if args:
            event["args"] = args
        self._append(event)

    def counter(self, name: str, values: Dict[str, int]) -> None:
        """Record a counter sample (snapshot/memo/profile statistics)."""
        self._append(
            {
                "name": name,
                "ph": "C",
                "ts": round(self._now_us(), 3),
                "pid": 1,
                "tid": self._tid(),
                "args": dict(values),
            }
        )

    # -- serialising ---------------------------------------------------------

    def _metadata(self) -> List[Dict[str, object]]:
        meta: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        ]
        with self._lock:
            tids = dict(self._tids)
        for ident, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": "compile" if tid == 0 else f"worker-{tid}"},
                }
            )
        return meta

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            events = list(self.events)
        return {
            "traceEvents": self._metadata() + events,
            "displayTimeUnit": "ms",
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
