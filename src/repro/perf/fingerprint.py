"""Structural content hashes for functions and modules.

A fingerprint is a short hex digest of everything semantically relevant
in a piece of IR — opcodes, operands, immediates, displacements, branch
targets, block labels and order, parameters, and the full ``attrs``
dict (the printer only shows ``!spec``, but pinning attrs like ``save``/
``restore``/``volatile`` change semantics too). Process-unique state is
excluded: instruction ``uid``\\ s, label counters and reserved-register
bookkeeping all differ between a function and its clone, yet a clone
must fingerprint identically to its original — the whole point is that
*content*, not identity, keys the caches built on top:

- :class:`~repro.perf.snapshot.SnapshotStore` reuses a cached clone as a
  pass snapshot whenever the live function still matches its fingerprint;
- :class:`~repro.robustness.guard.GuardedPassManager` skips re-verifying,
  diff-checking and sanitizing functions a pass left byte-identical;
- :class:`~repro.perf.memo.CompileCache` keys whole compiles by module
  fingerprint for ``evaluate.measure``.

Content addressing makes the caches rollback-safe for free: restoring a
snapshot restores the old fingerprint, and any result recorded against
that fingerprint is valid again.
"""

import hashlib
from typing import Dict

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.ir.module import Module

#: Digest size in bytes; 16 hex chars is plenty for per-compile caches.
_DIGEST_SIZE = 12


def _instr_text(instr: Instr) -> str:
    """Canonical one-line serialization of one instruction.

    Deliberately *not* the printer: the printer round-trips only the
    ``speculative`` attr, while semantics can hinge on any attr.
    """
    parts = [
        instr.opcode,
        str(instr.rd),
        str(instr.ra),
        str(instr.rb),
        str(instr.imm),
        str(instr.base),
        str(instr.disp),
        str(instr.crf),
        str(instr.cond),
        str(instr.target),
        str(instr.symbol),
        str(instr.nargs),
    ]
    if instr.attrs:
        parts.append(repr(sorted((str(k), repr(v)) for k, v in instr.attrs.items())))
    return "|".join(parts)


def _hash_function_into(hasher, fn: Function) -> None:
    hasher.update(fn.name.encode())
    hasher.update(("(" + ",".join(str(p) for p in fn.params) + ")").encode())
    for bb in fn.blocks:
        _hash_block_into(hasher, bb)


def _hash_block_into(hasher, bb: BasicBlock) -> None:
    hasher.update(("\n" + bb.label + ":").encode())
    for instr in bb.instrs:
        hasher.update(("\n" + _instr_text(instr)).encode())


def fingerprint_function(fn: Function) -> str:
    """Hex digest of a function's structural content."""
    hasher = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    _hash_function_into(hasher, fn)
    return hasher.hexdigest()


def fingerprint_module(module: Module) -> str:
    """Hex digest over every function (in order) plus the data objects."""
    hasher = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    hasher.update(module.name.encode())
    for name in sorted(module.data):
        obj = module.data[name]
        hasher.update(
            f"\ndata {obj.name} {obj.size} {obj.init} {obj.volatile}".encode()
        )
    for fn in module.functions.values():
        hasher.update(b"\n--\n")
        _hash_function_into(hasher, fn)
    return hasher.hexdigest()


def module_fingerprints(module: Module) -> Dict[str, str]:
    """Per-function fingerprints for the whole module."""
    return {name: fingerprint_function(fn) for name, fn in module.functions.items()}
