"""Command-line interface: compile, run, time and benchmark IR files.

Examples::

    python -m repro compile prog.ir --level vliw         # print optimised IR
    python -m repro run prog.ir --entry main --args 5,7  # interpret
    python -m repro time prog.ir --entry main --args 5 --model rs6000
    python -m repro bench                                # SPECint-style table
    python -m repro bench --pdf                          # with feedback
    python -m repro sanitize prog.ir --level vliw        # containment proof
    python -m repro fuzz --seeds 2000 --level vliw       # differential fuzzing
    python -m repro reduce failing.ir -o reduced.ir      # shrink a failure
    python -m repro serve --workers 4 --port 8077        # compile service
"""

import argparse
import sys
from typing import List

from repro.evaluate import (
    format_spec_table,
    geomean_speedup,
    measure,
    reference_value,
    specint_table,
    train_profile,
)
from repro.ir import format_module, parse_module, verify_module
from repro.machine import ENGINES, MEM_MODELS, run_function, time_trace
from repro.machine.model import PRESETS, RS6000
from repro.pipeline import compile_module
from repro.scheduling import PIPELINERS
from repro.workloads import suite


def _load(path: str):
    with open(path) as handle:
        module = parse_module(handle.read())
    verify_module(module)
    return module


def _parse_args_list(text: str) -> List[int]:
    return [int(v, 0) for v in text.split(",")] if text else []


def cmd_compile(args) -> int:
    module = _load(args.file)
    profile = plan = None
    if args.profile:
        profile, plan = _read_profile_file(args.profile)
    fault_plan = None
    if args.fault_plan:
        from repro.robustness import load_fault_plan

        fault_plan = load_fault_plan(args.fault_plan)
    trace = None
    if args.trace_out:
        from repro.perf import TraceRecorder

        trace = TraceRecorder(process_name=f"repro compile {args.file}")
    result = compile_module(
        module,
        args.level,
        profile=profile,
        plan=plan,
        pipeliner=args.pipeliner,
        resilience=args.resilience,
        fault_plan=fault_plan,
        pass_budget_seconds=args.pass_budget,
        sanitize=args.sanitize,
        diff_seed=args.diff_seed,
        mem_model=args.mem_model,
        engine=args.engine,
        jobs=args.jobs,
        trace=trace,
    )
    print(format_module(result.module))
    print(
        f"# {args.level}: {result.static_instructions} instructions, "
        f"compiled in {result.compile_seconds * 1e3:.1f} ms"
        + (" (profile-guided)" if profile else ""),
        file=sys.stderr,
    )
    if result.resilience is not None:
        print(f"# resilience: {result.resilience.summary()}", file=sys.stderr)
        if args.resilience_report:
            with open(args.resilience_report, "w") as handle:
                handle.write(result.resilience.to_json())
            print(f"# wrote {args.resilience_report}", file=sys.stderr)
    if trace is not None:
        trace.write(args.trace_out)
        print(
            f"# wrote {args.trace_out} ({len(trace.events)} trace events; "
            "load in chrome://tracing or ui.perfetto.dev)",
            file=sys.stderr,
        )
    return 0


def cmd_profile(args) -> int:
    """Pass 1 of PDF: instrument, run on training args, write the file."""
    import json

    from repro.pdf import collect_profile

    module = _load(args.file)
    runs = [tuple(_parse_args_list(a)) for a in (args.args or [""])]
    profile, plan = collect_profile(module, args.entry, runs)
    payload = json.dumps(
        {
            "profile": json.loads(profile.to_json()),
            "plan": json.loads(plan.to_json()),
        },
        indent=1,
    )
    with open(args.output, "w") as handle:
        handle.write(payload)
    counted = sum(len(v) for v in plan.counted.values())
    print(
        f"# wrote {args.output}: {counted} counted blocks, "
        f"{len(profile.edge_counts)} edges recovered",
        file=sys.stderr,
    )
    return 0


def _read_profile_file(path: str):
    import json

    from repro.pdf.instrument import InstrumentationPlan
    from repro.pdf.profile import ProfileData

    with open(path) as handle:
        raw = json.load(handle)
    profile = ProfileData.from_json(json.dumps(raw["profile"]))
    plan = InstrumentationPlan.from_json(json.dumps(raw["plan"]))
    return profile, plan


def cmd_run(args) -> int:
    module = _load(args.file)
    if args.level != "none":
        module = compile_module(module, args.level).module
    result = run_function(
        module,
        args.entry,
        _parse_args_list(args.args),
        max_steps=args.max_steps,
        mem_model=args.mem_model,
        engine=args.engine,
    )
    if result.output:
        for value in result.output:
            print(value)
    print(f"# returned {result.value} after {result.steps} instructions",
          file=sys.stderr)
    return 0


def cmd_time(args) -> int:
    module = _load(args.file)
    model = PRESETS[args.model]
    for level in args.levels.split(","):
        compiled = compile_module(module, level) if level != "none" else None
        target = compiled.module if compiled else module
        run = run_function(
            target,
            args.entry,
            _parse_args_list(args.args),
            record_trace=True,
            max_steps=args.max_steps,
            mem_model=args.mem_model,
            engine=args.engine,
        )
        report = time_trace(run.trace, model)
        print(
            f"{level:<6} {report.cycles:>10} cycles  "
            f"{report.instructions:>10} instrs  ipc {report.ipc:.2f}  "
            f"-> {run.value}"
        )
    return 0


def cmd_bench(args) -> int:
    model = PRESETS[args.model]
    if not args.pdf:
        rows = specint_table(model=model)
        print(format_spec_table(rows))
        return 0
    print(f"{'bench':<10} {'base':>8} {'vliw':>8} {'vliw+pdf':>9}")
    for wl in suite():
        ref = reference_value(wl)
        base = measure(wl, "base", model, check_against=ref)
        vliw = measure(wl, "vliw", model, check_against=ref)
        profile, plan = train_profile(wl)
        pdf = measure(
            wl, "vliw", model, profile=profile, plan=plan, check_against=ref
        )
        print(f"{wl.name:<10} {base.cycles:>8} {vliw.cycles:>8} {pdf.cycles:>9}")
    return 0


def cmd_sanitize(args) -> int:
    """Prove speculation containment: baseline vs optimized on paged memory."""
    from repro.robustness import SpeculationSanitizer

    module = _load(args.file)
    compiled = compile_module(module, args.level)
    sanitizer = SpeculationSanitizer(
        seed=args.seed,
        argsets_per_function=args.argsets,
        max_steps=args.max_steps,
    )
    result = sanitizer.run(module, compiled.module)
    for finding in result.findings:
        marker = "!!" if finding.classification == "violation" else "  "
        detail = f"  [{finding.detail}]" if finding.detail else ""
        print(
            f"{marker} {finding.classification:<12} {finding.fn}{finding.args} "
            f"baseline={finding.baseline} optimized={finding.optimized}{detail}"
        )
    print(f"# {result.summary()}", file=sys.stderr)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(result.to_json())
        print(f"# wrote {args.report}", file=sys.stderr)
    return 0 if result.ok else 1


def cmd_fuzz(args) -> int:
    """Differential fuzzing campaign; exit 1 when anything diverges."""
    from repro.fuzz import GenConfig, OracleConfig
    from repro.fuzz.corpus import case_from_finding, save_case
    from repro.fuzz.driver import run_fuzz

    oracle_cfg = OracleConfig(
        max_steps=args.max_steps,
        argsets_per_function=args.argsets,
        bisect=not args.no_bisect,
        quick=args.quick,
        engine=args.engine,
    )
    gen_cfg = GenConfig(size=args.size)
    config_keys = (
        tuple(k.strip() for k in args.configs.split(",") if k.strip())
        if args.configs
        else None
    )
    if args.xengine:
        # Executor-vs-executor campaign: cross-check the uncompiled
        # module plus every swept config's compiled form.
        from repro.fuzz.oracle import sweep_configs

        base_keys = config_keys or tuple(
            c.key for c in sweep_configs(args.level, quick=args.quick)
        )
        config_keys = ("xengine:none",) + tuple(
            key if key.startswith("xengine:") else f"xengine:{key}"
            for key in base_keys
        )
    if config_keys:
        from repro.fuzz.oracle import config_from_key

        try:
            for key in config_keys:
                config_from_key(key)
        except ValueError as exc:
            print(f"repro fuzz: {exc}", file=sys.stderr)
            return 2
    findings, stats = run_fuzz(
        seeds=args.seeds,
        level=args.level,
        start=args.start,
        jobs=args.jobs,
        time_budget=args.time_budget,
        seed_timeout=args.seed_timeout,
        oracle_cfg=oracle_cfg,
        gen_cfg=gen_cfg,
        log=lambda msg: print(msg, file=sys.stderr),
        config_keys=config_keys,
    )
    if args.save_failures and findings:
        from pathlib import Path

        for finding in findings:
            case = case_from_finding(finding, finding.source, status="xfail")
            path = save_case(case, Path(args.save_failures))
            print(f"# wrote {path}", file=sys.stderr)
    print(
        f"# fuzz: {stats.seeds_run} seeds at level {args.level!r} in "
        f"{stats.elapsed:.0f}s, {stats.findings} findings",
        file=sys.stderr,
    )
    for (kind, guilty), count in sorted(stats.by_signature.items()):
        print(
            f"#   {kind} in {guilty or '<unattributed>'}: {count}",
            file=sys.stderr,
        )
    return 1 if findings else 0


def cmd_reduce(args) -> int:
    """Shrink a failing IR file while preserving its failure signature."""
    from repro.fuzz import Oracle, OracleConfig
    from repro.fuzz.corpus import case_from_finding, parse_case
    from repro.fuzz.driver import signature_predicate
    from repro.fuzz.oracle import config_from_key, sweep_configs
    from repro.fuzz.reduce import instruction_count, reduce_module

    with open(args.file) as handle:
        text = handle.read()
    header = parse_case(text, None)
    module = parse_module(text)
    verify_module(module)
    seed = args.seed if args.seed is not None else header.seed

    config_key = args.config or (
        header.config if "# config:" in text else None
    )
    configs = (
        [config_from_key(config_key)]
        if config_key
        else sweep_configs(args.level)
    )
    oracle = Oracle(OracleConfig(max_steps=args.max_steps))
    findings = oracle.check_module(module, seed, args.level, configs=configs)
    if not findings:
        print("# no divergence reproduced; nothing to reduce", file=sys.stderr)
        return 1
    finding = findings[0]
    print(f"# reproducing: {finding.describe()}", file=sys.stderr)

    before = instruction_count(module)
    reduced = reduce_module(
        module,
        signature_predicate(finding),
        log=lambda msg: print(f"# {msg}", file=sys.stderr),
    )
    after = instruction_count(reduced)

    # Re-confirm on the reduced module and re-bisect the guilty pass.
    final = oracle.check_module(
        reduced, seed, args.level, configs=[config_from_key(finding.config)]
    )
    confirmed = final[0] if final else finding
    source = format_module(reduced)
    case = case_from_finding(confirmed, source, status=args.status)
    out_text = case.text()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(out_text)
        print(f"# wrote {args.output}", file=sys.stderr)
    else:
        print(out_text)
    shrink = 100.0 * (before - after) / before if before else 0.0
    print(
        f"# reduced {before} -> {after} instructions ({shrink:.0f}% smaller); "
        f"signature: {confirmed.kind} guilty={confirmed.guilty or '?'}",
        file=sys.stderr,
    )
    return 0


def cmd_serve(args) -> int:
    """Fault-contained, crash-durable compile service (docs/SERVING.md)."""
    import asyncio
    import json
    import signal

    from pathlib import Path

    from repro.perf.memo import CompileCache
    from repro.perf.store import PersistentCacheShard
    from repro.robustness import load_fault_plan
    from repro.robustness.chaosfs import REAL_FS, ChaosFs
    from repro.serve import (
        CircuitBreaker,
        CompileService,
        FlightRecorder,
        IsolatedTriageRunner,
        PassQuarantine,
        TriageIndex,
        TriageWorker,
        WorkerPool,
        WriteAheadJournal,
        serve_http,
        serve_stdin,
    )

    def log(msg):
        print(msg, file=sys.stderr)

    # A fault plan's chaos section turns the real filesystem into the
    # fault-injecting shim for *both* durable tiers (cache shard and
    # journal); pass-level faults still ride to workers as before.
    fs = REAL_FS
    default_options = {}
    if args.fault_plan:
        plan = load_fault_plan(args.fault_plan)
        if plan.chaos:
            fs = ChaosFs(plan.chaos, seed=args.chaos_seed)
            log(f"# repro serve: chaos fs armed ({len(plan.chaos)} specs, "
                f"seed {args.chaos_seed})")
        if plan.faults:
            # Drill mode: every request compiles under this fault plan
            # (lenient across ladder levels) so containment can be
            # watched live. Testing/demo only.
            default_options["fault_plan"] = args.fault_plan

    store = None
    if args.cache_dir:
        store = PersistentCacheShard(
            args.cache_dir,
            fs=fs,
            max_bytes=args.cache_max_mb * 1024 * 1024
            if args.cache_max_mb else None,
        )
    journal = None
    if args.state_dir:
        journal = WriteAheadJournal(
            args.state_dir, fs=fs, checkpoint_every=args.checkpoint_every
        )
    # Self-healing stack: flight recorder + background triage worker +
    # pass quarantine, rooted under the state dir (no state dir: the
    # quarantine still exists but nothing feeds it evidence).
    recorder = None
    if args.state_dir and not args.no_triage:
        recorder = FlightRecorder(Path(args.state_dir) / "triage", fs=fs)
    pool = WorkerPool(
        workers=args.workers,
        deadline=args.deadline,
        grace=args.grace,
        mem_headroom_bytes=args.worker_mem_mb * 1024 * 1024
        if args.worker_mem_mb else None,
    )
    service = CompileService(
        pool,
        cache=CompileCache(max_entries=args.cache_entries),
        store=store,
        max_pending=args.max_pending,
        deadline=args.deadline,
        breaker=CircuitBreaker(cooldown=args.breaker_cooldown),
        journal=journal,
        quarantine=PassQuarantine(
            threshold=args.quarantine_threshold,
            cooldown=args.quarantine_cooldown,
        ),
        recorder=recorder,
    )
    triage = None
    if recorder is not None:
        triage = TriageWorker(
            recorder,
            TriageIndex(Path(args.state_dir) / "triage", fs=fs),
            service.quarantine,
            runner=IsolatedTriageRunner(deadline=args.triage_deadline),
            promote_dir=args.promote_corpus,
            on_finding=service.checkpoint,
            on_quarantine=service.pass_quarantined,
            log=log,
        )
        service.triage = triage
    if default_options:
        original = service.compile

        def compile_with_defaults(request):
            merged = dict(default_options)
            merged.update(request.options)
            request.options = merged
            return original(request)

        service.compile = compile_with_defaults

    if journal is not None:
        summary = service.recover()
        log(f"# repro serve: journal recovery {json.dumps(summary)}")
    if triage is not None:
        triage.start()
        log("# repro serve: triage worker running "
            f"(quarantined: {sorted(service.quarantine.active()) or 'none'})")

    interrupted = False
    try:
        if args.stdin:
            # SIGTERM takes the same graceful path Ctrl-C does.
            if hasattr(signal, "SIGTERM"):
                signal.signal(
                    signal.SIGTERM,
                    lambda *_: (_ for _ in ()).throw(KeyboardInterrupt()),
                )
            serve_stdin(service, log=log)
        else:

            async def _run():
                shutdown = asyncio.Event()
                loop = asyncio.get_running_loop()
                for signame in ("SIGTERM", "SIGINT"):
                    if hasattr(signal, signame):
                        try:
                            loop.add_signal_handler(
                                getattr(signal, signame), shutdown.set
                            )
                        except (NotImplementedError, RuntimeError):
                            pass
                await serve_http(
                    service, args.host, args.port, log=log, shutdown=shutdown
                )

            asyncio.run(_run())
    except KeyboardInterrupt:
        interrupted = True
    finally:
        # Graceful shutdown: stop admission, drain in-flight requests
        # against the deadline, flush journal state, stop the pool —
        # and exit 0 so supervisors see an orderly stop, not a crash.
        service.begin_shutdown()
        drained = service.drain(args.drain_seconds)
        if not drained:
            log(f"# repro serve: drain deadline ({args.drain_seconds}s) "
                "expired with requests still in flight")
        if triage is not None:
            triage.stop()
        service.flush()
        pool.stop()
        log("# repro serve: drained and stopped"
            + (" (interrupted)" if interrupted else ""))
    return 0


def cmd_triage(args) -> int:
    """Offline triage of a serve state dir's pending crash bundles."""
    import json
    from pathlib import Path

    from repro.serve import (
        FlightRecorder,
        IsolatedTriageRunner,
        PassQuarantine,
        TriageIndex,
        TriageWorker,
    )

    root = Path(args.state_dir) / "triage"
    recorder = FlightRecorder(root)
    index = TriageIndex(root)
    quarantine = PassQuarantine(threshold=args.threshold)
    worker = TriageWorker(
        recorder,
        index,
        quarantine,
        runner=IsolatedTriageRunner(deadline=args.deadline),
        promote_dir=args.promote_corpus,
        log=lambda msg: print(msg, file=sys.stderr),
    )
    handled = worker.drain(timeout=args.time_budget)
    print(json.dumps({
        "bundles": handled,
        "worker": worker.stats(),
        "index": index.summary(),
        "quarantine_candidates": sorted(quarantine.active()),
    }, indent=2))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VLIW compilation techniques in a superscalar environment "
        "(PLDI 1994) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile an IR file and print it")
    p_compile.add_argument("file")
    p_compile.add_argument("--level", choices=("base", "vliw"), default="vliw")
    p_compile.add_argument(
        "--profile", help="profile file from `repro profile` (enables PDF)"
    )
    p_compile.add_argument(
        "--pipeliner",
        choices=PIPELINERS,
        default="swp",
        help="software-pipelining backend: legacy greedy rotations (swp), "
        "true modulo scheduling (modulo), or modulo scheduling with the "
        "bounded-exhaustive slot search (modulo-opt)",
    )
    p_compile.add_argument(
        "--resilience",
        choices=("strict", "rollback", "retry"),
        help="guard every pass with snapshot/rollback + differential checks",
    )
    p_compile.add_argument(
        "--fault-plan",
        help="inject faults: JSON plan file or compact 'pass:kind[:n]' spec "
        "(kinds: raise, corrupt-ir, skew, stall, speculate)",
    )
    p_compile.add_argument(
        "--resilience-report",
        help="write the per-pass JSON diagnostics report here",
    )
    p_compile.add_argument(
        "--pass-budget",
        type=float,
        help="wall-clock budget per pass in seconds (with --resilience)",
    )
    p_compile.add_argument(
        "--sanitize",
        action="store_true",
        help="run the paged-model speculation sanitizer after every pass "
        "(with --resilience)",
    )
    p_compile.add_argument(
        "--diff-seed",
        type=int,
        default=0,
        help="seed for the differential checker / sanitizer input sampling",
    )
    p_compile.add_argument(
        "--mem-model",
        choices=MEM_MODELS,
        default="flat",
        help="execution substrate for the differential checker",
    )
    p_compile.add_argument(
        "--engine",
        choices=ENGINES,
        default="tree",
        help="executor for the differential checker / sanitizer entries",
    )
    p_compile.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for per-function pass work "
        "(output is bit-identical to --jobs 1)",
    )
    p_compile.add_argument(
        "--trace-out",
        help="write per-(pass, function) compile spans as Chrome "
        "trace-event JSON (open in chrome://tracing)",
    )
    p_compile.set_defaults(func=cmd_compile)

    p_profile = sub.add_parser(
        "profile", help="PDF pass 1: instrument, run training input, write profile"
    )
    p_profile.add_argument("file")
    p_profile.add_argument("--entry", default="main")
    p_profile.add_argument(
        "--args",
        action="append",
        help="training argument list, repeatable (e.g. --args 5,7 --args 9)",
    )
    p_profile.add_argument("--output", "-o", default="repro.prof")
    p_profile.set_defaults(func=cmd_profile)

    p_run = sub.add_parser("run", help="interpret a function")
    p_run.add_argument("file")
    p_run.add_argument("--entry", default="main")
    p_run.add_argument("--args", default="")
    p_run.add_argument("--level", choices=("none", "base", "vliw"), default="none")
    p_run.add_argument("--max-steps", type=int, default=10_000_000)
    p_run.add_argument(
        "--mem-model",
        choices=MEM_MODELS,
        default="flat",
        help="'paged' makes unmapped accesses fault instead of reading 0",
    )
    p_run.add_argument(
        "--engine",
        choices=ENGINES,
        default="tree",
        help="executor: 'tree' (ground-truth interpreter) or 'closure' "
        "(compiled engine, ~5x faster, differentially cross-checked)",
    )
    p_run.set_defaults(func=cmd_run)

    p_time = sub.add_parser("time", help="cycle counts on a machine model")
    p_time.add_argument("file")
    p_time.add_argument("--entry", default="main")
    p_time.add_argument("--args", default="")
    p_time.add_argument("--levels", default="none,base,vliw")
    p_time.add_argument("--model", choices=sorted(PRESETS), default="rs6000")
    p_time.add_argument("--max-steps", type=int, default=10_000_000)
    p_time.add_argument(
        "--mem-model",
        choices=MEM_MODELS,
        default="flat",
        help="'paged' makes unmapped accesses fault instead of reading 0",
    )
    p_time.add_argument(
        "--engine",
        choices=ENGINES,
        default="tree",
        help="executor for the traced run (see 'repro run --engine')",
    )
    p_time.set_defaults(func=cmd_time)

    p_bench = sub.add_parser("bench", help="run the SPECint-style suite")
    p_bench.add_argument("--model", choices=sorted(PRESETS), default="rs6000")
    p_bench.add_argument("--pdf", action="store_true", help="include PDF column")
    p_bench.set_defaults(func=cmd_bench)

    p_sanitize = sub.add_parser(
        "sanitize",
        help="prove speculation containment on the paged memory model",
    )
    p_sanitize.add_argument("file")
    p_sanitize.add_argument("--level", choices=("base", "vliw"), default="vliw")
    p_sanitize.add_argument("--seed", type=int, default=0)
    p_sanitize.add_argument(
        "--argsets", type=int, default=3, help="seeded argument vectors per function"
    )
    p_sanitize.add_argument("--max-steps", type=int, default=200_000)
    p_sanitize.add_argument("--report", help="write the JSON findings report here")
    p_sanitize.set_defaults(func=cmd_sanitize)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated modules, unoptimized vs "
        "base/vliw across a config sweep, both memory models",
    )
    p_fuzz.add_argument("--seeds", type=int, default=200)
    p_fuzz.add_argument("--start", type=int, default=0, help="first seed")
    p_fuzz.add_argument("--level", choices=("base", "vliw"), default="vliw")
    p_fuzz.add_argument("--size", type=int, default=18,
                        help="statement budget per generated function")
    p_fuzz.add_argument("--argsets", type=int, default=3,
                        help="seeded argument vectors per function")
    p_fuzz.add_argument("--max-steps", type=int, default=200_000)
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the seed loop")
    p_fuzz.add_argument("--time-budget", type=float,
                        help="stop after this many seconds (CI smoke)")
    p_fuzz.add_argument("--seed-timeout", type=float,
                        help="per-seed wall-clock limit; an overrun is "
                        "recorded as a crash finding")
    p_fuzz.add_argument("--quick", action="store_true",
                        help="sweep only the two main configs per seed")
    p_fuzz.add_argument("--configs",
                        help="comma-separated sweep config keys (e.g. "
                        "vliw:u2:modulo,vliw:u2:modulo-opt) to check "
                        "instead of the level's default sweep")
    p_fuzz.add_argument("--engine", choices=ENGINES, default="tree",
                        help="executor for the oracle's observations")
    p_fuzz.add_argument("--xengine", action="store_true",
                        help="executor-vs-executor mode: run the tree-"
                        "walker and the closure engine on every config "
                        "and flag any divergence as an engine bug "
                        "(prefixes each sweep key with 'xengine:' and "
                        "adds 'xengine:none' for the uncompiled module)")
    p_fuzz.add_argument("--no-bisect", action="store_true",
                        help="skip the per-finding guilty-pass bisection")
    p_fuzz.add_argument("--save-failures",
                        help="write each finding's module here as a corpus-"
                        "format .ir file (status: xfail)")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_reduce = sub.add_parser(
        "reduce",
        help="delta-debug a failing IR file down to a minimal reproducer",
    )
    p_reduce.add_argument("file", help="IR file (plain or corpus format)")
    p_reduce.add_argument("--output", "-o",
                          help="write the reduced corpus-format case here "
                          "(default: stdout)")
    p_reduce.add_argument("--level", choices=("base", "vliw"), default="vliw")
    p_reduce.add_argument("--config",
                          help="sweep config key to reproduce under (e.g. "
                          "vliw:u2:swp); default: corpus header, else sweep")
    p_reduce.add_argument("--seed", type=int,
                          help="entry-derivation seed (default: corpus header)")
    p_reduce.add_argument("--status", choices=("fixed", "xfail"),
                          default="fixed",
                          help="status recorded in the emitted corpus header")
    p_reduce.add_argument("--max-steps", type=int, default=200_000)
    p_reduce.set_defaults(func=cmd_reduce)

    p_serve = sub.add_parser(
        "serve",
        help="fault-contained compile service: process-isolated workers, "
        "deadlines, retry-with-degradation, persistent cache",
    )
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker processes in the supervised pool")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8077)
    p_serve.add_argument("--stdin", action="store_true",
                         help="JSON-lines on stdin/stdout instead of HTTP")
    p_serve.add_argument("--deadline", type=float, default=10.0,
                         help="per-request wall-clock budget in seconds")
    p_serve.add_argument("--grace", type=float, default=1.0,
                         help="extra seconds before the supervisor kills "
                         "an unresponsive worker")
    p_serve.add_argument("--max-pending", type=int, default=64,
                         help="backpressure bound: shed (429) beyond this "
                         "many in-flight requests")
    p_serve.add_argument("--cache-dir",
                         help="persist the compile cache here (checksummed, "
                         "fingerprint-prefix sharded; survives restart)")
    p_serve.add_argument("--cache-entries", type=int, default=256,
                         help="in-memory LRU compile cache size")
    p_serve.add_argument("--cache-max-mb", type=int,
                         help="disk budget for --cache-dir in MiB; oldest "
                         "entries are evicted past it (plus on ENOSPC)")
    p_serve.add_argument("--state-dir",
                         help="crash durability: write-ahead journal of "
                         "accepted requests, breaker state and counters; "
                         "replayed on restart (SIGKILL loses no accepted "
                         "work)")
    p_serve.add_argument("--checkpoint-every", type=int, default=512,
                         help="journal appends between truncating "
                         "checkpoints")
    p_serve.add_argument("--drain-seconds", type=float, default=10.0,
                         help="graceful-shutdown deadline for in-flight "
                         "requests on SIGTERM/SIGINT")
    p_serve.add_argument("--worker-mem-mb", type=int,
                         help="per-worker memory headroom in MiB (rlimit = "
                         "startup footprint + this); an over-allocating "
                         "compile is contained as an 'oom' failure")
    p_serve.add_argument("--breaker-cooldown", type=float, default=60.0,
                         help="seconds before a poisoned (module, level) "
                         "pair may be retried")
    p_serve.add_argument("--fault-plan",
                         help="drill mode: apply this fault plan to every "
                         "request (compact 'pass:kind[:n]' spec; a 'chaos' "
                         "section / 'fs:kind' chunks arm the chaos "
                         "filesystem on the journal and cache shard)")
    p_serve.add_argument("--chaos-seed", type=int, default=0,
                         help="seed for probabilistic chaos-fs fault specs")
    p_serve.add_argument("--quarantine-threshold", type=int, default=2,
                         help="distinct triage indictments before a pass "
                         "is quarantined (ablated from vliw compiles)")
    p_serve.add_argument("--quarantine-cooldown", type=float, default=300.0,
                         help="seconds a quarantined pass stays ablated "
                         "before one probe compile re-tries it")
    p_serve.add_argument("--no-triage", action="store_true",
                         help="disable the flight recorder and background "
                         "triage worker (quarantine then never activates)")
    p_serve.add_argument("--triage-deadline", type=float, default=60.0,
                         help="wall-clock budget per crash-bundle replay "
                         "in the isolated triage process")
    p_serve.add_argument("--promote-corpus",
                         help="write reduced triage findings here as corpus-"
                         "format .ir cases (tests/fuzz/corpus layout)")
    p_serve.set_defaults(func=cmd_serve)

    p_triage = sub.add_parser(
        "triage",
        help="offline crash triage: replay/bisect/reduce the pending crash "
        "bundles under a serve --state-dir",
    )
    p_triage.add_argument("state_dir",
                          help="the serve --state-dir holding triage/pending")
    p_triage.add_argument("--deadline", type=float, default=60.0,
                          help="wall-clock budget per bundle replay")
    p_triage.add_argument("--time-budget", type=float, default=300.0,
                          help="overall drain budget in seconds")
    p_triage.add_argument("--threshold", type=int, default=2,
                          help="distinct indictments for the report's "
                          "quarantine-candidate list")
    p_triage.add_argument("--promote-corpus",
                          help="write reduced findings here as corpus-format "
                          ".ir cases")
    p_triage.set_defaults(func=cmd_triage)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
