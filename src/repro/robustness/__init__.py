"""Resilient compilation: per-pass sandboxing, differential semantic
checking, fault injection, and structured diagnostics.

The pipeline chains ten-plus aggressive CFG-restructuring transforms; one
bad pass used to abort the whole compile. This subsystem isolates each
pass behind a snapshot (:class:`GuardedPassManager`), validates its output
both structurally (the IR verifier) and dynamically (seeded interpreter
runs via :class:`DifferentialChecker`), and degrades gracefully — a
failing pass is rolled back and reported rather than fatal. The
:mod:`~repro.robustness.faults` harness injects deterministic failures so
tests can prove each failure class is actually contained.

Entry points: ``compile_module(..., resilience="rollback")`` and the
``--resilience`` / ``--fault-plan`` CLI flags.
"""

from repro.robustness.diffcheck import (
    ARG_PALETTE,
    DifferentialChecker,
    DiffVerdict,
    EntryOutcome,
    observe,
)
from repro.robustness.faults import (
    DANGLING_LABEL,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyPass,
    InjectedFault,
    load_fault_plan,
)
from repro.robustness.guard import (
    POLICIES,
    GuardedPassManager,
    PassBudgetExceeded,
    SemanticDivergenceError,
)
from repro.robustness.report import (
    FAILURE_KINDS,
    OUTCOMES,
    PassFailure,
    PassRecord,
    ResilienceReport,
)

__all__ = [
    "ARG_PALETTE",
    "DANGLING_LABEL",
    "DifferentialChecker",
    "DiffVerdict",
    "EntryOutcome",
    "FAILURE_KINDS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyPass",
    "GuardedPassManager",
    "InjectedFault",
    "OUTCOMES",
    "POLICIES",
    "PassBudgetExceeded",
    "PassFailure",
    "PassRecord",
    "ResilienceReport",
    "SemanticDivergenceError",
    "load_fault_plan",
    "observe",
]
