"""Resilient compilation: per-pass sandboxing, differential semantic
checking, fault injection, and structured diagnostics.

The pipeline chains ten-plus aggressive CFG-restructuring transforms; one
bad pass used to abort the whole compile. This subsystem isolates each
pass behind a snapshot (:class:`GuardedPassManager`), validates its output
both structurally (the IR verifier) and dynamically (seeded interpreter
runs via :class:`DifferentialChecker`), and degrades gracefully — a
failing pass is rolled back and reported rather than fatal. The
:mod:`~repro.robustness.faults` harness injects deterministic failures so
tests can prove each failure class is actually contained.

On top of the flat-model diff check, the :class:`SpeculationSanitizer`
re-runs the seeded entries on the *paged* (faulting) memory model and
proves every pass's speculation stays contained: a speculative load may
fault and poison its destination, but the poison must never reach a
non-speculative side effect. An optimized-only paged-model fault is a
``containment`` failure and rolls the pass back.

Entry points: ``compile_module(..., resilience="rollback")``, the
``repro sanitize`` subcommand, and the ``--resilience`` /
``--fault-plan`` / ``--diff-seed`` / ``--mem-model`` CLI flags.
"""

from repro.robustness.chaosfs import (
    FS_FAULT_KINDS,
    ChaosFs,
    ChaosSpec,
    RealFs,
    REAL_FS,
    SimulatedCrash,
)
from repro.robustness.diffcheck import (
    ARG_PALETTE,
    DifferentialChecker,
    DiffVerdict,
    EntryOutcome,
    derive_entries,
    observe,
)
from repro.robustness.faults import (
    DANGLING_LABEL,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyPass,
    InjectedFault,
    load_fault_plan,
)
from repro.robustness.guard import (
    POLICIES,
    ContainmentViolationError,
    GuardedPassManager,
    PassBudgetExceeded,
    SemanticDivergenceError,
)
from repro.robustness.report import (
    FAILURE_KINDS,
    OUTCOMES,
    REQUEST_FAILURE_KINDS,
    PassFailure,
    PassRecord,
    ResilienceReport,
)
from repro.robustness.sanitizer import (
    CLASSIFICATIONS,
    SanitizerFinding,
    SanitizerResult,
    SpeculationSanitizer,
)

__all__ = [
    "ARG_PALETTE",
    "CLASSIFICATIONS",
    "ChaosFs",
    "ChaosSpec",
    "ContainmentViolationError",
    "DANGLING_LABEL",
    "DifferentialChecker",
    "DiffVerdict",
    "EntryOutcome",
    "FAILURE_KINDS",
    "FAULT_KINDS",
    "FS_FAULT_KINDS",
    "REAL_FS",
    "RealFs",
    "SimulatedCrash",
    "FaultPlan",
    "FaultSpec",
    "FaultyPass",
    "GuardedPassManager",
    "InjectedFault",
    "OUTCOMES",
    "POLICIES",
    "PassBudgetExceeded",
    "PassFailure",
    "PassRecord",
    "REQUEST_FAILURE_KINDS",
    "ResilienceReport",
    "SanitizerFinding",
    "SanitizerResult",
    "SemanticDivergenceError",
    "SpeculationSanitizer",
    "derive_entries",
    "load_fault_plan",
    "observe",
]
