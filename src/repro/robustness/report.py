"""Per-pass resilience diagnostics.

Every pass attempt the :class:`~repro.robustness.guard.GuardedPassManager`
makes is recorded as a :class:`PassRecord` in a :class:`ResilienceReport`:
what the pass did (outcome), how long it took, whether the verifier and
the differential checker were happy, and — on failure — a structured
:class:`PassFailure` naming the exact failure class. The report
serialises to JSON so CI and the CLI can surface it.
"""

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Failure classes the guard distinguishes. ``containment`` means the
#: speculation sanitizer saw an optimized-only fault on the paged model;
#: ``stall`` means the pass blew through its wall-clock budget
#: (``pass_budget_seconds``) and its result was discarded.
FAILURE_KINDS = ("exception", "verifier", "divergence", "stall", "containment")

#: Failure classes the compile *service* distinguishes per request
#: attempt (see :mod:`repro.serve`): a worker process dying or a pass
#: raising is a ``crash``; a request blowing its wall-clock deadline —
#: whether the worker's own SIGALRM fired or the supervisor had to kill
#: it — is a ``timeout``; ``sanitizer-violation`` is a speculation
#: containment escape under ``sanitize=``; ``oom`` is a worker hitting
#: its RSS rlimit (``MemoryError`` contained in-process, the worker
#: survives); ``overload`` is load shedding (the request never reached
#: a worker).
REQUEST_FAILURE_KINDS = (
    "crash",
    "timeout",
    "sanitizer-violation",
    "oom",
    "overload",
)

#: What ultimately happened to a pass.
OUTCOMES = ("ok", "retried", "rolled-back", "raised")


@dataclass
class PassFailure:
    """One contained (or fatal) pass failure."""

    index: int
    pass_name: str
    #: One of :data:`FAILURE_KINDS`.
    kind: str
    detail: str
    retried: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "pass": self.pass_name,
            "kind": self.kind,
            "detail": self.detail,
            "retried": self.retried,
        }


@dataclass
class PassRecord:
    """Diagnostics for one pipeline position."""

    index: int
    name: str
    #: One of :data:`OUTCOMES`.
    outcome: str
    changed: bool
    seconds: float
    #: "ok" | "failed" | "skipped"
    verify: str
    #: "match" | "mismatch" | "inconclusive" | "skipped"
    diff: str
    #: Sanitizer verdict: "ok" | "masked" | "violation" | "skipped"
    sanitize: str = "skipped"
    failure: Optional[PassFailure] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "pass": self.name,
            "outcome": self.outcome,
            "changed": self.changed,
            "seconds": round(self.seconds, 6),
            "verify": self.verify,
            "diff": self.diff,
            "sanitize": self.sanitize,
            "failure": self.failure.to_dict() if self.failure else None,
        }


@dataclass
class ResilienceReport:
    """The guarded pipeline's full diagnostic record."""

    policy: str
    records: List[PassRecord] = field(default_factory=list)
    #: Seed used by the differential checker / sanitizer input sampling,
    #: echoed for reproducibility (None when neither was enabled).
    diff_seed: Optional[int] = None
    #: Compile-performance counters (see :mod:`repro.perf`): snapshot
    #: clone/reuse counts, verify/diff/sanitize memo hits, profile
    #: hit/miss counts. Legacy mode reports only the snapshot counters.
    counters: Dict[str, int] = field(default_factory=dict)

    def add(self, record: PassRecord) -> None:
        self.records.append(record)

    @property
    def failures(self) -> List[PassFailure]:
        return [r.failure for r in self.records if r.failure is not None]

    @property
    def rollbacks(self) -> int:
        return sum(1 for r in self.records if r.outcome == "rolled-back")

    @property
    def retries(self) -> int:
        return sum(1 for r in self.records if r.outcome == "retried")

    @property
    def containment_violations(self) -> int:
        """Passes whose failure was a speculation-containment violation."""
        return sum(
            1
            for r in self.records
            if r.failure is not None and r.failure.kind == "containment"
        )

    def failed_passes(self) -> List[str]:
        """Names of passes that failed, in pipeline order."""
        return [r.name for r in self.records if r.failure is not None]

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "passes": len(self.records),
            "rollbacks": self.rollbacks,
            "retries": self.retries,
            "containment_violations": self.containment_violations,
            "diff_seed": self.diff_seed,
            "counters": dict(self.counters),
            "failed_passes": self.failed_passes(),
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """One line for humans: ``policy=rollback passes=13 ok=12 rolled-back=1 (dce)``."""
        ok = sum(1 for r in self.records if r.outcome in ("ok", "retried"))
        text = (
            f"policy={self.policy} passes={len(self.records)} "
            f"ok={ok} rolled-back={self.rollbacks}"
        )
        failed = self.failed_passes()
        if failed:
            text += f" ({', '.join(failed)})"
        return text
