"""Deterministic fault injection into the pass pipeline.

Used by the robustness tests (and the ``--fault-plan`` CLI flag) to prove
that :class:`~repro.robustness.guard.GuardedPassManager` actually contains
each failure class. A :class:`FaultPlan` names passes and the sabotage to
apply when they run:

- ``raise``      — throw :class:`InjectedFault` from inside the pass
  (contained as an *exception* failure),
- ``corrupt-ir`` — after the real pass runs, point a branch at a label
  that does not exist (structurally invalid IR; contained as a
  *verifier* failure),
- ``skew``       — after the real pass runs, insert ``AI r3, r3, 1``
  before every ``RET`` (perfectly valid IR that computes the wrong
  answer; contained as a *divergence* failure by the diff checker),
- ``stall``      — sleep past the guard's wall-clock budget (contained
  as a *budget* failure),
- ``speculate``  — after the real pass runs, hoist the first load of a
  conditional successor above its guard branch and tag it
  ``speculative`` (valid IR, invisible to the flat-model diff check
  because unmapped flat loads read 0; the paged-model speculation
  sanitizer contains it as a *containment* failure).

Faults fire deterministically: each spec triggers on its first ``times``
activations across the whole pipeline (``times=0`` means every time), so
a ``retry`` policy can observe a fault that heals on the second attempt.

Plans may also carry a ``chaos`` section of *filesystem* fault specs
(see :mod:`repro.robustness.chaosfs`): ENOSPC, EIO, torn writes and
crash-before-fsync injected into the persistent cache shard and the
serve journal. One plan therefore composes pass-level, worker-level
and fs-level faults.

Plan sources: JSON (``{"faults": [{"pass": "dce", "kind": "raise"}],
"chaos": [{"op": "write", "kind": "enospc"}]}``) or the compact CLI
form ``"dce:raise,vliw-scheduling:stall:0.4,fs:enospc:2"``
(``pass:kind[:times-or-seconds]``; the reserved pass name ``fs``
makes a chaos spec ``fs:kind[:times]``).
"""

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.ir.instructions import Instr
from repro.ir.module import Module
from repro.ir.operands import gpr
from repro.robustness.chaosfs import ChaosSpec
from repro.transforms.pass_manager import Pass, PassContext

FAULT_KINDS = ("raise", "corrupt-ir", "skew", "stall", "speculate")

#: Label used for injected dangling branches; never defined anywhere.
DANGLING_LABEL = "__injected_dangling__"


class InjectedFault(RuntimeError):
    """The deliberate failure raised by ``raise``-kind faults."""


@dataclass
class FaultSpec:
    """One sabotage: which pass, what kind, how often."""

    pass_name: str
    kind: str
    #: Number of activations that trigger (0 = every activation).
    times: int = 1
    #: Stall duration for ``stall`` faults.
    seconds: float = 0.5
    #: Activations so far, shared across every pipeline occurrence of the
    #: pass (two DCE positions consume the same budget).
    _activations: int = field(default=0, repr=False, compare=False)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def should_fire(self) -> bool:
        self._activations += 1
        return self.times == 0 or self._activations <= self.times

    def reset(self) -> None:
        self._activations = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "kind": self.kind,
            "times": self.times,
            "seconds": self.seconds,
        }


@dataclass
class FaultPlan:
    """An ordered set of fault specs, applied to a pass list by wrapping."""

    faults: List[FaultSpec] = field(default_factory=list)
    #: Filesystem fault specs (see :mod:`repro.robustness.chaosfs`);
    #: applied by whoever owns the :class:`~repro.robustness.chaosfs.ChaosFs`
    #: (the serve CLI, the chaos soak), not by :meth:`apply`.
    chaos: List[ChaosSpec] = field(default_factory=list)
    #: With ``lenient=True`` specs naming passes absent from the pipeline
    #: are skipped instead of rejected. The serve layer needs this: one
    #: request-level plan targeting ``vliw-scheduling`` must still apply
    #: cleanly when the degradation ladder retries the request at
    #: ``base`` or ``none``, where that pass does not exist.
    lenient: bool = False

    def apply(self, passes: Sequence[Pass]) -> List[Pass]:
        """Wrap every pass a spec targets; reject typo'd pass names."""
        known = {p.name for p in passes}
        if self.lenient:
            specs = [s for s in self.faults if s.pass_name in known]
        else:
            for spec in self.faults:
                if spec.pass_name not in known:
                    raise ValueError(
                        f"fault plan targets unknown pass {spec.pass_name!r}; "
                        f"pipeline has: {', '.join(sorted(known))}"
                    )
            specs = self.faults
        wrapped: List[Pass] = []
        for pss in passes:
            for spec in specs:
                if spec.pass_name == pss.name:
                    pss = FaultyPass(pss, spec)
            wrapped.append(pss)
        return wrapped

    def reset(self) -> None:
        for spec in self.faults:
            spec.reset()
        for spec in self.chaos:
            spec.reset()

    # -- serialisation ------------------------------------------------------

    def to_json(self, indent: int = 1) -> str:
        payload: Dict[str, object] = {
            "faults": [s.to_dict() for s in self.faults]
        }
        if self.chaos:
            payload["chaos"] = [s.to_dict() for s in self.chaos]
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        raw = json.loads(text)
        faults = [
            FaultSpec(
                pass_name=entry["pass"],
                kind=entry["kind"],
                times=int(entry.get("times", 1)),
                seconds=float(entry.get("seconds", 0.5)),
            )
            for entry in raw.get("faults", [])
        ]
        chaos = [ChaosSpec.from_dict(entry) for entry in raw.get("chaos", [])]
        return cls(faults, chaos=chaos)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Compact form: ``pass:kind[:times-or-seconds][,pass:kind...]``.

        The reserved pass name ``fs`` makes a filesystem chaos spec:
        ``fs:enospc``, ``fs:torn-write:3``, ``fs:eio:0`` (every op).
        Op-/path-targeted or probabilistic chaos needs the JSON form.
        """
        faults = []
        chaos = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) < 2:
                raise ValueError(f"bad fault spec {chunk!r} (want pass:kind)")
            name, kind = parts[0], parts[1]
            if name == "fs":
                fs_spec = ChaosSpec(kind=kind)
                if len(parts) > 2:
                    fs_spec.times = int(parts[2])
                chaos.append(fs_spec)
                continue
            spec = FaultSpec(pass_name=name, kind=kind)
            if len(parts) > 2:
                if kind == "stall":
                    spec.seconds = float(parts[2])
                else:
                    spec.times = int(parts[2])
            faults.append(spec)
        return cls(faults, chaos=chaos)


def load_fault_plan(source: str) -> FaultPlan:
    """CLI helper: ``source`` is a JSON file path or a compact spec string."""
    import os

    if os.path.exists(source):
        with open(source) as handle:
            return FaultPlan.from_json(handle.read())
    return FaultPlan.parse(source)


class FaultyPass(Pass):
    """Wraps a real pass and sabotages it per its :class:`FaultSpec`."""

    def __init__(self, inner: Pass, spec: FaultSpec):
        self.inner = inner
        self.spec = spec
        self.name = inner.name

    def run_on_module(self, module: Module, ctx: PassContext) -> bool:
        active = self.spec.should_fire()
        if active and self.spec.kind == "raise":
            raise InjectedFault(f"injected exception in pass {self.name!r}")
        changed = bool(self.inner.run_on_module(module, ctx))
        if not active:
            return changed
        if self.spec.kind == "stall":
            time.sleep(self.spec.seconds)
            return changed
        if self.spec.kind == "corrupt-ir":
            return _corrupt_ir(module) or changed
        if self.spec.kind == "skew":
            return _skew_semantics(module) or changed
        if self.spec.kind == "speculate":
            return _speculate_unsafely(module) or changed
        return changed

    def __repr__(self) -> str:
        return f"<FaultyPass {self.name} kind={self.spec.kind}>"


def _corrupt_ir(module: Module) -> bool:
    """Make the IR structurally invalid (the verifier must catch this)."""
    for fn in module.functions.values():
        for bb in fn.blocks:
            for instr in bb.instrs:
                if instr.target is not None:
                    instr.target = DANGLING_LABEL
                    return True
    # No branches anywhere: an unknown opcode is just as invalid.
    for fn in module.functions.values():
        if fn.blocks:
            fn.blocks[0].instrs.insert(0, Instr("__BOGUS__"))
            return True
    return False


def _speculate_unsafely(module: Module) -> bool:
    """Hoist a guarded load above its branch without checking safety.

    This is exactly the bug a scheduler with a broken safety analysis
    would introduce: the load now executes on paths where its guard said
    not to. The flat model cannot see it (an unmapped load reads 0 and
    the destination is typically dead on the other path); only the paged
    model's speculation sanitizer can prove containment was violated.
    """
    for fn in module.functions.values():
        blocks = {bb.label: bb for bb in fn.blocks}
        for i, bb in enumerate(fn.blocks):
            term = bb.terminator
            if term is None or not term.is_cond_branch:
                continue
            succs = []
            target = blocks.get(term.target)
            if target is not None:
                succs.append(target)
            if i + 1 < len(fn.blocks):
                succs.append(fn.blocks[i + 1])
            for succ in succs:
                if not succ.instrs or succ.instrs[0].opcode != "L":
                    continue
                load = succ.instrs.pop(0)
                load.attrs["speculative"] = True
                bb.instrs.insert(len(bb.instrs) - 1, load)
                return True
    return False


def _skew_semantics(module: Module) -> bool:
    """Perturb behaviour while keeping the IR valid (diff check must catch).

    ``AI r3, r3, 1`` before every return bumps each function's result by
    one — invisible to the verifier, visible to any seeded execution.
    """
    changed = False
    for fn in module.functions.values():
        for bb in fn.blocks:
            for i in range(len(bb.instrs) - 1, -1, -1):
                if bb.instrs[i].is_return:
                    bb.instrs.insert(i, Instr("AI", rd=gpr(3), ra=gpr(3), imm=1))
                    changed = True
    return changed
