"""Per-pass sandboxing: snapshot, budget, verify, diff-check, rollback.

:class:`GuardedPassManager` wraps every pipeline position in a sandbox:

1. snapshot the module — **copy-on-write** by default: a per-function
   pass only forces clones of the functions the *previous* pass actually
   changed (everything else is reused from the
   :class:`~repro.perf.snapshot.SnapshotStore` cache); passes that
   override ``run_on_module`` fall back to a full ``Module.clone()``,
2. run the pass and charge its wall-clock time against an optional budget,
3. re-fingerprint what the pass claims it touched
   (:mod:`repro.perf.fingerprint`) and shrink the change set to the
   functions whose *content* actually changed,
4. re-verify the IR the pass touched,
5. differentially execute seeded inputs against the pre-pipeline baseline
   (:class:`~repro.robustness.diffcheck.DifferentialChecker`) and, when
   enabled, re-prove speculation containment
   (:class:`~repro.robustness.sanitizer.SpeculationSanitizer`) — both
   skip functions whose fingerprint they already validated, so a pass
   that leaves a function byte-identical costs nothing to re-check,
6. on any failure — pass exception, verifier rejection, semantic
   divergence, budget overrun — apply the policy:

   - ``strict``  — raise, exactly like the plain ``PassManager`` would,
   - ``rollback`` — restore the snapshot, record a structured
     :class:`~repro.robustness.report.PassFailure`, continue with the
     remaining passes (graceful degradation: the compile completes with
     whatever optimisations survived),
   - ``retry``   — restore the snapshot and re-run the pass once on the
     fresh state; if it fails again, fall back to rollback.

Restores are exhaustive: a full-clone rollback goes through
``Module.restore_from`` (every module attribute, not just ``functions``
and ``data``), and a COW rollback restores per function via
``Function.restore_from`` plus the module-level extras the snapshot
captured. ``cow_snapshots=False`` / ``memoize=False`` select the PR-1
whole-clone, re-check-everything behaviour (the compile-cost benchmark
uses them as its comparison baseline).

The wall-clock budget is checked after the pass returns (cooperative,
not preemptive — a Python pass cannot be safely interrupted mid-mutation;
what matters is that an over-budget result is discarded and reported).
"""

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.module import Module
from repro.perf.snapshot import SnapshotStore
from repro.robustness.diffcheck import DifferentialChecker
from repro.robustness.report import PassFailure, PassRecord, ResilienceReport
from repro.robustness.sanitizer import SpeculationSanitizer
from repro.transforms.pass_manager import (
    Pass,
    PassContext,
    PassManager,
    is_module_pass,
)

POLICIES = ("strict", "rollback", "retry")


class PassBudgetExceeded(RuntimeError):
    """A pass blew through its wall-clock budget (strict policy only)."""


class SemanticDivergenceError(RuntimeError):
    """A pass changed observable behaviour (strict policy only)."""


class ContainmentViolationError(RuntimeError):
    """The speculation sanitizer saw an optimized-only fault on the paged
    model (strict policy only)."""


class _Attempt:
    """Everything one sandboxed execution of a pass produced."""

    def __init__(self):
        self.failure: Optional[PassFailure] = None
        self.exception: Optional[BaseException] = None
        self.seconds = 0.0
        self.changed = False
        self.changed_fns: Optional[Set[str]] = None
        self.verify_status = "skipped"
        self.diff_status = "skipped"
        self.sanitize_status = "skipped"


class GuardedPassManager(PassManager):
    """A :class:`PassManager` that contains pass failures instead of dying."""

    def __init__(
        self,
        passes: List[Pass],
        policy: str = "rollback",
        verify: bool = True,
        budget_seconds: Optional[float] = None,
        checker: Optional[DifferentialChecker] = None,
        sanitizer: Optional[SpeculationSanitizer] = None,
        jobs: int = 1,
        trace=None,
        cow_snapshots: bool = True,
        memoize: bool = True,
    ):
        super().__init__(passes, verify=verify, jobs=jobs, trace=trace)
        if policy not in POLICIES:
            raise ValueError(f"unknown resilience policy {policy!r}")
        self.policy = policy
        self.budget_seconds = budget_seconds
        self.checker = checker
        self.sanitizer = sanitizer
        self.cow_snapshots = cow_snapshots
        self.memoize = memoize
        self.snapshots = SnapshotStore()
        self.report = ResilienceReport(policy=policy)
        if checker is not None:
            self.report.diff_seed = checker.seed
        elif sanitizer is not None:
            self.report.diff_seed = sanitizer.seed
        self.failures: List[PassFailure] = []

    @property
    def _track(self) -> bool:
        """Whether the fingerprint ledger is being maintained."""
        return self.cow_snapshots or self.memoize

    def run(self, module: Module, ctx: Optional[PassContext] = None) -> PassContext:
        ctx = ctx if ctx is not None else PassContext(module)
        if self.checker is not None:
            self.checker.prepare(module, lazy=self.memoize)
        if self.sanitizer is not None:
            self.sanitizer.prepare(module, lazy=self.memoize)
        if self._track:
            self.snapshots.prime(module)
        try:
            for index, pss in enumerate(self.passes):
                self._guarded_step(index, pss, module, ctx)
            if self.verify:
                # Same final barrier as the plain manager: a pass that
                # mutated the module while reporting no change escaped
                # its per-pass verification and cannot be rolled back
                # (the snapshots trusted the same report), so surface it.
                self._verify_final(module)
        finally:
            self._shutdown_executor()
            self._finalize_counters(ctx)
        return ctx

    # -- one sandboxed pipeline position ------------------------------------

    def _guarded_step(
        self, index: int, pss: Pass, module: Module, ctx: PassContext
    ) -> None:
        use_cow = self.cow_snapshots and not is_module_pass(pss)
        if self.trace is not None:
            with self.trace.span(f"snapshot:{pss.name}", cat="snapshot"):
                snapshot = self._take_snapshot(module, use_cow)
        else:
            snapshot = self._take_snapshot(module, use_cow)
        fps_before = dict(self.snapshots.fingerprints) if self._track else {}
        stats_before = dict(ctx.stats)
        attempt = self._attempt(index, pss, module, ctx)
        retried = False
        if attempt.failure is not None and self.policy == "retry":
            # Keep the snapshot pristine (preserve=True) so a second
            # failure can still roll all the way back.
            self._restore(module, snapshot, use_cow, fps_before, attempt, True)
            ctx.stats.clear()
            ctx.stats.update(stats_before)
            retried = True
            attempt = self._attempt(index, pss, module, ctx)

        if attempt.failure is None:
            self._note_changes(
                pss, ctx, attempt.changed, attempt.changed_fns, len(module.functions)
            )
            self.report.add(
                PassRecord(
                    index=index,
                    name=pss.name,
                    outcome="retried" if retried else "ok",
                    changed=attempt.changed,
                    seconds=attempt.seconds,
                    verify=attempt.verify_status,
                    diff=attempt.diff_status,
                    sanitize=attempt.sanitize_status,
                )
            )
            return

        failure = attempt.failure
        failure.retried = retried
        self.failures.append(failure)
        if self.policy == "strict":
            self.report.add(
                PassRecord(
                    index=index,
                    name=pss.name,
                    outcome="raised",
                    changed=attempt.changed,
                    seconds=attempt.seconds,
                    verify=attempt.verify_status,
                    diff=attempt.diff_status,
                    sanitize=attempt.sanitize_status,
                    failure=failure,
                )
            )
            raise self._strict_exception(failure, attempt.exception)
        self._restore(module, snapshot, use_cow, fps_before, attempt, False)
        ctx.stats.clear()
        ctx.stats.update(stats_before)
        self.report.add(
            PassRecord(
                index=index,
                name=pss.name,
                outcome="rolled-back",
                changed=False,
                seconds=attempt.seconds,
                verify=attempt.verify_status,
                diff=attempt.diff_status,
                sanitize=attempt.sanitize_status,
                failure=failure,
            )
        )

    # -- snapshot / restore ---------------------------------------------------

    def _take_snapshot(self, module: Module, use_cow: bool):
        if use_cow:
            return self.snapshots.take_cow(module)
        return self.snapshots.take_full(module)

    def _restore(
        self,
        module: Module,
        snapshot,
        use_cow: bool,
        fps_before: Dict[str, str],
        attempt: _Attempt,
        preserve: bool,
    ) -> None:
        if (
            self._track
            and attempt.failure is not None
            and attempt.failure.kind == "exception"
        ):
            # The pass died mid-mutation, so the ledger was never
            # refreshed; re-fingerprint everything so the COW restore
            # can tell which live functions are actually dirty.
            self.snapshots.refresh(module, None)
        if self.trace is not None:
            with self.trace.span("restore", cat="snapshot"):
                self._restore_inner(module, snapshot, use_cow, fps_before, preserve)
        else:
            self._restore_inner(module, snapshot, use_cow, fps_before, preserve)

    def _restore_inner(
        self, module, snapshot, use_cow, fps_before, preserve
    ) -> None:
        if use_cow:
            self.snapshots.restore_cow(module, snapshot, preserve=preserve)
        else:
            self.snapshots.restore_full(module, snapshot, preserve=preserve)
            if self._track:
                self.snapshots.fingerprints = dict(fps_before)

    # -- one attempt ----------------------------------------------------------

    def _attempt(
        self, index: int, pss: Pass, module: Module, ctx: PassContext
    ) -> _Attempt:
        attempt = _Attempt()
        start = time.perf_counter()
        try:
            attempt.changed, attempt.changed_fns = self._run_pass(pss, module, ctx)
        except Exception as exc:
            attempt.seconds = time.perf_counter() - start
            self._charge(pss, attempt.seconds)
            attempt.exception = exc
            attempt.failure = PassFailure(
                index, pss.name, "exception", f"{type(exc).__name__}: {exc}"
            )
            return attempt
        attempt.seconds = time.perf_counter() - start
        self._charge(pss, attempt.seconds)

        if self._track and attempt.changed:
            # Shrink the pass's self-reported change set to the functions
            # whose content hash actually moved. For run_on_module passes
            # (changed_fns is None) this *recovers* attribution that the
            # plain manager never had.
            real_changed = self.snapshots.refresh(module, attempt.changed_fns)
            if self.memoize:
                if attempt.changed_fns is not None:
                    skipped = len(attempt.changed_fns) - len(real_changed)
                    if skipped > 0:
                        ctx.bump("memo.reported_but_identical", skipped)
                attempt.changed_fns = real_changed

        if self.budget_seconds is not None and attempt.seconds > self.budget_seconds:
            attempt.failure = PassFailure(
                index,
                pss.name,
                "stall",
                f"took {attempt.seconds:.3f}s, budget {self.budget_seconds:.3f}s",
            )
            return attempt

        validate = attempt.changed and (
            attempt.changed_fns is None or len(attempt.changed_fns) > 0
        )
        fingerprints = self.snapshots.fingerprints if self.memoize else None

        if self.verify and validate:
            try:
                self._verify_after(pss, module, attempt.changed_fns)
                attempt.verify_status = "ok"
            except RuntimeError as exc:
                attempt.verify_status = "failed"
                attempt.exception = exc
                attempt.failure = PassFailure(index, pss.name, "verifier", str(exc))
                return attempt

        if self.checker is not None and validate:
            if self.trace is not None:
                with self.trace.span(f"diffcheck:{pss.name}", cat="diffcheck"):
                    verdict = self.checker.check(module, fingerprints=fingerprints)
            else:
                verdict = self.checker.check(module, fingerprints=fingerprints)
            attempt.diff_status = verdict.kind
            if verdict.kind == "mismatch":
                attempt.failure = PassFailure(
                    index, pss.name, "divergence", verdict.detail
                )
                return attempt

        if self.sanitizer is not None and validate:
            if self.trace is not None:
                with self.trace.span(f"sanitize:{pss.name}", cat="sanitize"):
                    outcome = self.sanitizer.check(module, fingerprints=fingerprints)
            else:
                outcome = self.sanitizer.check(module, fingerprints=fingerprints)
            if outcome.violations:
                attempt.sanitize_status = "violation"
                first = outcome.violations[0]
                attempt.failure = PassFailure(
                    index,
                    pss.name,
                    "containment",
                    f"{first.fn}{first.args}: {first.detail}",
                )
                return attempt
            attempt.sanitize_status = "masked" if outcome.masked else "ok"

        return attempt

    # -- accounting -----------------------------------------------------------

    def _finalize_counters(self, ctx: PassContext) -> None:
        """Fold snapshot/memo/profile counters into the report and trace."""
        counters: Dict[str, int] = dict(self.snapshots.counters)
        if self.checker is not None:
            counters.update(self.checker.counters)
        if self.sanitizer is not None:
            counters.update(self.sanitizer.counters)
        for key, value in sorted(ctx.stats.items()):
            if key.startswith("profile.") or key.startswith("memo."):
                counters[key] = value
        self.report.counters = counters
        if self.trace is not None:
            self.trace.counter(
                "snapshots",
                {k.split(".", 1)[1]: v for k, v in counters.items()
                 if k.startswith("snapshot.")},
            )
            memo = {k: v for k, v in counters.items()
                    if k.startswith(("diff.", "sanitize.", "memo."))}
            if memo:
                self.trace.counter("memoization", memo)
            profile = {k.split(".", 1)[1]: v for k, v in counters.items()
                       if k.startswith("profile.")}
            if profile:
                self.trace.counter("profile-lookups", profile)

    def _charge(self, pss: Pass, seconds: float) -> None:
        self.timings[pss.name] = self.timings.get(pss.name, 0.0) + seconds

    def _strict_exception(
        self, failure: PassFailure, original: Optional[BaseException]
    ) -> BaseException:
        if failure.kind in ("exception", "verifier") and original is not None:
            return original
        if failure.kind == "stall":
            return PassBudgetExceeded(
                f"pass {failure.pass_name!r}: {failure.detail}"
            )
        if failure.kind == "containment":
            return ContainmentViolationError(
                f"pass {failure.pass_name!r}: {failure.detail}"
            )
        return SemanticDivergenceError(
            f"pass {failure.pass_name!r}: {failure.detail}"
        )
