"""Per-pass sandboxing: snapshot, budget, verify, diff-check, rollback.

:class:`GuardedPassManager` wraps every pipeline position in a sandbox:

1. snapshot the module (``Module.clone()``) and the stats counters,
2. run the pass and charge its wall-clock time against an optional budget,
3. re-verify the IR the pass touched,
4. differentially execute seeded inputs against the pre-pipeline baseline
   (:class:`~repro.robustness.diffcheck.DifferentialChecker`),
5. on any failure — pass exception, verifier rejection, semantic
   divergence, budget overrun — apply the policy:

   - ``strict``  — raise, exactly like the plain ``PassManager`` would,
   - ``rollback`` — restore the snapshot, record a structured
     :class:`~repro.robustness.report.PassFailure`, continue with the
     remaining passes (graceful degradation: the compile completes with
     whatever optimisations survived),
   - ``retry``   — restore the snapshot and re-run the pass once on the
     fresh clone; if it fails again, fall back to rollback.

The wall-clock budget is checked after the pass returns (cooperative,
not preemptive — a Python pass cannot be safely interrupted mid-mutation;
what matters is that an over-budget result is discarded and reported).
"""

import time
from typing import List, Optional, Set, Tuple

from repro.ir.module import Module
from repro.robustness.diffcheck import DifferentialChecker
from repro.robustness.report import PassFailure, PassRecord, ResilienceReport
from repro.robustness.sanitizer import SpeculationSanitizer
from repro.transforms.pass_manager import Pass, PassContext, PassManager

POLICIES = ("strict", "rollback", "retry")


class PassBudgetExceeded(RuntimeError):
    """A pass blew through its wall-clock budget (strict policy only)."""


class SemanticDivergenceError(RuntimeError):
    """A pass changed observable behaviour (strict policy only)."""


class ContainmentViolationError(RuntimeError):
    """The speculation sanitizer saw an optimized-only fault on the paged
    model (strict policy only)."""


class _Attempt:
    """Everything one sandboxed execution of a pass produced."""

    def __init__(self):
        self.failure: Optional[PassFailure] = None
        self.exception: Optional[BaseException] = None
        self.seconds = 0.0
        self.changed = False
        self.changed_fns: Optional[Set[str]] = None
        self.verify_status = "skipped"
        self.diff_status = "skipped"
        self.sanitize_status = "skipped"


def _restore(module: Module, snapshot: Module) -> None:
    """Make ``module`` the snapshot again, in place (callers hold the ref)."""
    module.functions = snapshot.functions
    module.data = snapshot.data


class GuardedPassManager(PassManager):
    """A :class:`PassManager` that contains pass failures instead of dying."""

    def __init__(
        self,
        passes: List[Pass],
        policy: str = "rollback",
        verify: bool = True,
        budget_seconds: Optional[float] = None,
        checker: Optional[DifferentialChecker] = None,
        sanitizer: Optional[SpeculationSanitizer] = None,
    ):
        super().__init__(passes, verify=verify)
        if policy not in POLICIES:
            raise ValueError(f"unknown resilience policy {policy!r}")
        self.policy = policy
        self.budget_seconds = budget_seconds
        self.checker = checker
        self.sanitizer = sanitizer
        self.report = ResilienceReport(policy=policy)
        if checker is not None:
            self.report.diff_seed = checker.seed
        elif sanitizer is not None:
            self.report.diff_seed = sanitizer.seed
        self.failures: List[PassFailure] = []

    def run(self, module: Module, ctx: Optional[PassContext] = None) -> PassContext:
        ctx = ctx if ctx is not None else PassContext(module)
        if self.checker is not None:
            self.checker.prepare(module)
        if self.sanitizer is not None:
            self.sanitizer.prepare(module)
        for index, pss in enumerate(self.passes):
            self._guarded_step(index, pss, module, ctx)
        return ctx

    # -- one sandboxed pipeline position ------------------------------------

    def _guarded_step(
        self, index: int, pss: Pass, module: Module, ctx: PassContext
    ) -> None:
        snapshot = module.clone()
        stats_before = dict(ctx.stats)
        attempt = self._attempt(index, pss, module, ctx)
        retried = False
        if attempt.failure is not None and self.policy == "retry":
            # Fresh clone for the second try; keep `snapshot` pristine so a
            # second failure can still roll all the way back.
            _restore(module, snapshot.clone())
            ctx.stats.clear()
            ctx.stats.update(stats_before)
            retried = True
            attempt = self._attempt(index, pss, module, ctx)

        if attempt.failure is None:
            self._note_changes(
                pss, ctx, attempt.changed, attempt.changed_fns, len(module.functions)
            )
            self.report.add(
                PassRecord(
                    index=index,
                    name=pss.name,
                    outcome="retried" if retried else "ok",
                    changed=attempt.changed,
                    seconds=attempt.seconds,
                    verify=attempt.verify_status,
                    diff=attempt.diff_status,
                    sanitize=attempt.sanitize_status,
                )
            )
            return

        failure = attempt.failure
        failure.retried = retried
        self.failures.append(failure)
        if self.policy == "strict":
            self.report.add(
                PassRecord(
                    index=index,
                    name=pss.name,
                    outcome="raised",
                    changed=attempt.changed,
                    seconds=attempt.seconds,
                    verify=attempt.verify_status,
                    diff=attempt.diff_status,
                    sanitize=attempt.sanitize_status,
                    failure=failure,
                )
            )
            raise self._strict_exception(failure, attempt.exception)
        _restore(module, snapshot)
        ctx.stats.clear()
        ctx.stats.update(stats_before)
        self.report.add(
            PassRecord(
                index=index,
                name=pss.name,
                outcome="rolled-back",
                changed=False,
                seconds=attempt.seconds,
                verify=attempt.verify_status,
                diff=attempt.diff_status,
                sanitize=attempt.sanitize_status,
                failure=failure,
            )
        )

    def _attempt(
        self, index: int, pss: Pass, module: Module, ctx: PassContext
    ) -> _Attempt:
        attempt = _Attempt()
        start = time.perf_counter()
        try:
            attempt.changed, attempt.changed_fns = self._run_pass(pss, module, ctx)
        except Exception as exc:
            attempt.seconds = time.perf_counter() - start
            self._charge(pss, attempt.seconds)
            attempt.exception = exc
            attempt.failure = PassFailure(
                index, pss.name, "exception", f"{type(exc).__name__}: {exc}"
            )
            return attempt
        attempt.seconds = time.perf_counter() - start
        self._charge(pss, attempt.seconds)

        if self.budget_seconds is not None and attempt.seconds > self.budget_seconds:
            attempt.failure = PassFailure(
                index,
                pss.name,
                "budget",
                f"took {attempt.seconds:.3f}s, budget {self.budget_seconds:.3f}s",
            )
            return attempt

        if self.verify and attempt.changed:
            try:
                self._verify_after(pss, module, attempt.changed_fns)
                attempt.verify_status = "ok"
            except RuntimeError as exc:
                attempt.verify_status = "failed"
                attempt.exception = exc
                attempt.failure = PassFailure(index, pss.name, "verifier", str(exc))
                return attempt

        if self.checker is not None and attempt.changed:
            verdict = self.checker.check(module)
            attempt.diff_status = verdict.kind
            if verdict.kind == "mismatch":
                attempt.failure = PassFailure(
                    index, pss.name, "divergence", verdict.detail
                )
                return attempt

        if self.sanitizer is not None and attempt.changed:
            outcome = self.sanitizer.check(module)
            if outcome.violations:
                attempt.sanitize_status = "violation"
                first = outcome.violations[0]
                attempt.failure = PassFailure(
                    index,
                    pss.name,
                    "containment",
                    f"{first.fn}{first.args}: {first.detail}",
                )
                return attempt
            attempt.sanitize_status = "masked" if outcome.masked else "ok"

        return attempt

    def _charge(self, pss: Pass, seconds: float) -> None:
        self.timings[pss.name] = self.timings.get(pss.name, 0.0) + seconds

    def _strict_exception(
        self, failure: PassFailure, original: Optional[BaseException]
    ) -> BaseException:
        if failure.kind in ("exception", "verifier") and original is not None:
            return original
        if failure.kind == "budget":
            return PassBudgetExceeded(
                f"pass {failure.pass_name!r}: {failure.detail}"
            )
        if failure.kind == "containment":
            return ContainmentViolationError(
                f"pass {failure.pass_name!r}: {failure.detail}"
            )
        return SemanticDivergenceError(
            f"pass {failure.pass_name!r}: {failure.detail}"
        )
