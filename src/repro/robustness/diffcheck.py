"""Differential semantic checking against the interpreter.

The interpreter is the semantic ground truth (see
``machine/interpreter.py``); this module turns the test suite's
differential-execution idea into an always-on pipeline defense. A
:class:`DifferentialChecker` captures the observable behaviour (return
value, I/O, final memory) of a module on a battery of seeded inputs
*before* the pipeline starts, and re-checks the current module against
that baseline after every pass.

Failure contracts (``machine/interpreter.py`` / ``machine/memory.py``):

- :class:`~repro.machine.interpreter.ExecutionError` and its fault
  subclasses (``MemoryFault``, ``ArithmeticFault``, ``SpeculationFault``)
  — execution went wrong. Each outcome records the **concrete subclass
  name**: if both the baseline and the transformed module fail an entry
  with the *same* fault class, that is agreement (deterministic faulting
  behaviour was preserved), not divergence. If the baseline ran fine and
  the transformed module raises, the pass broke the program: **mismatch**.
- :class:`~repro.machine.interpreter.ExecutionLimit` — the step budget
  ran out. The program may be fine but slow (unrolling legitimately
  changes step counts), so this is **inconclusive, keep**, never a
  rollback trigger.

The checker runs on either memory model (``mem_model=``): the flat model
checks value semantics, the paged model additionally compares faulting
behaviour.

Two compile-performance features (see :mod:`repro.perf`) keep the
always-on defense affordable:

- **Lazy baselines** (``prepare(module, lazy=True)``): instead of
  executing every seeded entry up front, a pristine clone is kept and a
  baseline outcome is computed the first time its entry is actually
  compared — functions the pipeline never changes never execute at all.
- **Fingerprint memoization** (``check(module, fingerprints=...)``):
  the per-function verdict is cached keyed by the function's structural
  content hash. A pass that leaves a function byte-identical re-uses the
  previous verdict without re-executing anything; because execution is
  deterministic and the key is content-addressed, rollbacks restore
  cache validity for free.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.machine.interpreter import ExecutionError, ExecutionLimit, run_function

#: Seed values argument vectors are drawn from: small positives drive
#: loop trip counts, negatives and zero hit the boundary branches.
ARG_PALETTE = (0, 1, 2, 3, 5, 7, 13, 40, -1, -3)


@dataclass
class EntryOutcome:
    """What happened when one seeded entry was interpreted."""

    #: "ok" | "limit" | "error"
    kind: str
    detail: str = ""
    #: Concrete exception class name for "limit"/"error" outcomes
    #: (e.g. ``MemoryFault``, ``SpeculationFault``, ``ExecutionError``).
    error_class: str = ""
    value: int = 0
    output: List[int] = field(default_factory=list)
    memory: Dict[int, int] = field(default_factory=dict)
    #: Speculative faults converted into poison during the run (paged
    #: model only; the sanitizer uses this to classify masked runs).
    poison_events: int = 0

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        if self.kind == "ok":
            out["value"] = self.value
            if self.poison_events:
                out["poison_events"] = self.poison_events
        else:
            out["error_class"] = self.error_class
            out["detail"] = self.detail
        return out


@dataclass
class DiffVerdict:
    """The checker's judgement on one module state."""

    #: "match" | "mismatch" | "inconclusive"
    kind: str
    detail: str = ""
    compared: int = 0
    inconclusive: int = 0

    def __bool__(self) -> bool:
        return self.kind != "mismatch"


def observe(
    module: Module,
    fn_name: str,
    args: Sequence[int],
    max_steps: int,
    mem_model: str = "flat",
    engine: str = "tree",
) -> EntryOutcome:
    """Interpret one entry and classify the outcome."""
    if fn_name not in module.functions:
        return EntryOutcome("error", f"no function {fn_name}", error_class="KeyError")
    try:
        result = run_function(
            module,
            fn_name,
            list(args),
            max_steps=max_steps,
            mem_model=mem_model,
            engine=engine,
        )
    except ExecutionLimit as exc:  # must precede ExecutionError (subclass)
        return EntryOutcome("limit", str(exc), error_class=type(exc).__name__)
    except ExecutionError as exc:
        return EntryOutcome("error", str(exc), error_class=type(exc).__name__)
    except Exception as exc:  # malformed IR can break the interpreter itself
        return EntryOutcome(
            "error", f"{type(exc).__name__}: {exc}", error_class=type(exc).__name__
        )
    return EntryOutcome(
        "ok",
        value=result.value,
        output=list(result.output),
        memory=result.state.snapshot_mem(),
        poison_events=result.state.poison_events,
    )


def derive_entries(
    module: Module, seed: int, argsets_per_function: int
) -> List[Tuple[str, Tuple[int, ...]]]:
    """Deterministic seeded entries: every function gets an all-zeros
    vector plus ``argsets_per_function - 1`` vectors from the palette."""
    entries: List[Tuple[str, Tuple[int, ...]]] = []
    for name in sorted(module.functions):
        nparams = len(module.functions[name].params)
        # Seeding with a string keys the RNG off (seed, function) in a
        # process-independent way (str seeds avoid PYTHONHASHSEED).
        rng = random.Random(f"diffcheck:{seed}:{name}")
        seen = {(name, (0,) * nparams)}
        entries.append((name, (0,) * nparams))
        for _ in range(max(1, argsets_per_function) - 1):
            args = tuple(rng.choice(ARG_PALETTE) for _ in range(nparams))
            if (name, args) not in seen:
                seen.add((name, args))
                entries.append((name, args))
    return entries


class DifferentialChecker:
    """Seeded before/after execution comparison for a pipeline run.

    ``entries`` is a list of ``(function_name, argsets)`` pairs; when
    omitted, entries are derived deterministically from the module via
    :func:`derive_entries`. ``mem_model`` selects the execution substrate
    for both sides of every comparison.
    """

    def __init__(
        self,
        entries: Optional[Sequence[Tuple[str, Sequence[Sequence[int]]]]] = None,
        seed: int = 0,
        argsets_per_function: int = 3,
        max_steps: int = 200_000,
        check_memory: bool = True,
        mem_model: str = "flat",
        engine: str = "tree",
    ):
        self.explicit_entries = list(entries) if entries is not None else None
        self.seed = seed
        self.argsets_per_function = max(1, argsets_per_function)
        self.max_steps = max_steps
        self.check_memory = check_memory
        self.mem_model = mem_model
        self.engine = engine
        self.entries: List[Tuple[str, Tuple[int, ...]]] = []
        self.baseline: Dict[Tuple[str, Tuple[int, ...]], EntryOutcome] = {}
        #: Pristine pre-pipeline clone for lazily-computed baselines.
        self._reference: Optional[Module] = None
        self._prepared = False
        #: (fn name, fingerprint) -> cached per-function verdict.
        self._memo: Dict[Tuple[str, str], Tuple] = {}
        self.counters: Dict[str, int] = {
            "diff.entries_run": 0,
            "diff.entries_memoized": 0,
            "diff.fns_memoized": 0,
            "diff.baselines_lazy": 0,
        }

    # -- baseline -----------------------------------------------------------

    def prepare(self, module: Module, lazy: bool = False) -> None:
        """Capture the reference behaviour of the pre-pipeline module.

        With ``lazy=True`` only a pristine clone is captured; each
        entry's baseline outcome is computed on first comparison.
        """
        self.entries = self._resolve_entries(module)
        self._memo.clear()
        self._prepared = True
        if lazy:
            self._reference = module.clone()
            self.baseline = {}
            return
        self._reference = None
        self.baseline = {
            (fn, args): observe(module, fn, args, self.max_steps, self.mem_model, self.engine)
            for fn, args in self.entries
        }

    def _baseline_for(self, fn: str, args: Tuple[int, ...]) -> EntryOutcome:
        key = (fn, args)
        outcome = self.baseline.get(key)
        if outcome is None:
            # Lazy mode: first comparison of this entry — run the pristine
            # reference now and cache it for the rest of the pipeline.
            self.counters["diff.baselines_lazy"] += 1
            outcome = observe(
                self._reference, fn, args, self.max_steps, self.mem_model, self.engine
            )
            self.baseline[key] = outcome
        return outcome

    def _resolve_entries(self, module: Module) -> List[Tuple[str, Tuple[int, ...]]]:
        if self.explicit_entries is not None:
            flat = []
            for fn, argsets in self.explicit_entries:
                for args in argsets:
                    flat.append((fn, tuple(args)))
            return flat
        return derive_entries(module, self.seed, self.argsets_per_function)

    # -- checking -----------------------------------------------------------

    def check(
        self, module: Module, fingerprints: Optional[Dict[str, str]] = None
    ) -> DiffVerdict:
        """Compare ``module`` against the prepared baseline.

        ``fingerprints`` maps function names to their current structural
        content hash; when supplied, a function whose hash was already
        checked re-uses that verdict without executing anything.
        """
        if not self._prepared:
            return DiffVerdict("inconclusive", "no baseline prepared")
        groups: Dict[str, List[Tuple[str, Tuple[int, ...]]]] = {}
        for fn, args in self.entries:
            groups.setdefault(fn, []).append((fn, args))
        compared = 0
        inconclusive = 0
        for fn, entries in groups.items():
            fp = fingerprints.get(fn) if fingerprints is not None else None
            outcome = self._memo.get((fn, fp)) if fp is not None else None
            if outcome is not None:
                self.counters["diff.fns_memoized"] += 1
                self.counters["diff.entries_memoized"] += len(entries)
            else:
                outcome = self._check_fn(module, entries)
                if fp is not None:
                    self._memo[(fn, fp)] = outcome
            if outcome[0] == "mismatch":
                return DiffVerdict(
                    "mismatch",
                    outcome[1],
                    compared=compared,
                    inconclusive=inconclusive,
                )
            compared += outcome[1]
            inconclusive += outcome[2]
        if compared == 0:
            return DiffVerdict(
                "inconclusive",
                "no seeded entry was runnable on both sides",
                inconclusive=inconclusive,
            )
        return DiffVerdict(
            "match",
            f"{compared} entries compared",
            compared=compared,
            inconclusive=inconclusive,
        )

    def _check_fn(
        self, module: Module, entries: List[Tuple[str, Tuple[int, ...]]]
    ) -> Tuple:
        """Check one function's entries.

        Returns ``("mismatch", detail)`` or ``("ok", compared,
        inconclusive)`` — a self-contained record that can be memoized
        against the function's content hash (execution is deterministic,
        so identical content always reproduces it).
        """
        compared = 0
        inconclusive = 0
        for fn, args in entries:
            base = self._baseline_for(fn, args)
            if base.kind == "limit":
                # The reference itself ran out of budget: nothing to
                # conclude from this input either way.
                inconclusive += 1
                continue
            self.counters["diff.entries_run"] += 1
            if base.kind == "error":
                # The reference faults on this input. If the transformed
                # module faults with the *same* class, deterministic
                # faulting behaviour was preserved: agreement. Anything
                # else (no fault, different fault) is inconclusive — a
                # pass may legitimately remove a fault it proved dead.
                after = observe(module, fn, args, self.max_steps, self.mem_model, self.engine)
                if after.kind == "error" and after.error_class == base.error_class:
                    compared += 1
                else:
                    inconclusive += 1
                continue
            after = observe(module, fn, args, self.max_steps, self.mem_model, self.engine)
            if after.kind == "limit":
                # Budget exhaustion is "inconclusive, keep" — see module
                # docstring — not "mismatch, rollback".
                inconclusive += 1
                continue
            if after.kind == "error":
                return (
                    "mismatch",
                    f"{fn}{tuple(args)}: ran on the baseline but now fails "
                    f"with {after.error_class}: {after.detail}",
                )
            if after.value != base.value:
                return (
                    "mismatch",
                    f"{fn}{tuple(args)}: value {after.value} != {base.value}",
                )
            if after.output != base.output:
                return ("mismatch", f"{fn}{tuple(args)}: output diverged")
            if self.check_memory and after.memory != base.memory:
                return ("mismatch", f"{fn}{tuple(args)}: final memory diverged")
            compared += 1
        return ("ok", compared, inconclusive)
