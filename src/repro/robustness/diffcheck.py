"""Differential semantic checking against the interpreter.

The interpreter is the semantic ground truth (see
``machine/interpreter.py``); this module turns the test suite's
differential-execution idea into an always-on pipeline defense. A
:class:`DifferentialChecker` captures the observable behaviour (return
value, I/O, final memory) of a module on a battery of seeded inputs
*before* the pipeline starts, and re-checks the current module against
that baseline after every pass.

Failure contracts (``machine/interpreter.py`` / ``machine/memory.py``):

- :class:`~repro.machine.interpreter.ExecutionError` and its fault
  subclasses (``MemoryFault``, ``ArithmeticFault``, ``SpeculationFault``)
  — execution went wrong. Each outcome records the **concrete subclass
  name**: if both the baseline and the transformed module fail an entry
  with the *same* fault class, that is agreement (deterministic faulting
  behaviour was preserved), not divergence. If the baseline ran fine and
  the transformed module raises, the pass broke the program: **mismatch**.
- :class:`~repro.machine.interpreter.ExecutionLimit` — the step budget
  ran out. The program may be fine but slow (unrolling legitimately
  changes step counts), so this is **inconclusive, keep**, never a
  rollback trigger.

The checker runs on either memory model (``mem_model=``): the flat model
checks value semantics, the paged model additionally compares faulting
behaviour.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.machine.interpreter import ExecutionError, ExecutionLimit, run_function

#: Seed values argument vectors are drawn from: small positives drive
#: loop trip counts, negatives and zero hit the boundary branches.
ARG_PALETTE = (0, 1, 2, 3, 5, 7, 13, 40, -1, -3)


@dataclass
class EntryOutcome:
    """What happened when one seeded entry was interpreted."""

    #: "ok" | "limit" | "error"
    kind: str
    detail: str = ""
    #: Concrete exception class name for "limit"/"error" outcomes
    #: (e.g. ``MemoryFault``, ``SpeculationFault``, ``ExecutionError``).
    error_class: str = ""
    value: int = 0
    output: List[int] = field(default_factory=list)
    memory: Dict[int, int] = field(default_factory=dict)
    #: Speculative faults converted into poison during the run (paged
    #: model only; the sanitizer uses this to classify masked runs).
    poison_events: int = 0

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        if self.kind == "ok":
            out["value"] = self.value
            if self.poison_events:
                out["poison_events"] = self.poison_events
        else:
            out["error_class"] = self.error_class
            out["detail"] = self.detail
        return out


@dataclass
class DiffVerdict:
    """The checker's judgement on one module state."""

    #: "match" | "mismatch" | "inconclusive"
    kind: str
    detail: str = ""
    compared: int = 0
    inconclusive: int = 0

    def __bool__(self) -> bool:
        return self.kind != "mismatch"


def observe(
    module: Module,
    fn_name: str,
    args: Sequence[int],
    max_steps: int,
    mem_model: str = "flat",
) -> EntryOutcome:
    """Interpret one entry and classify the outcome."""
    if fn_name not in module.functions:
        return EntryOutcome("error", f"no function {fn_name}", error_class="KeyError")
    try:
        result = run_function(
            module, fn_name, list(args), max_steps=max_steps, mem_model=mem_model
        )
    except ExecutionLimit as exc:  # must precede ExecutionError (subclass)
        return EntryOutcome("limit", str(exc), error_class=type(exc).__name__)
    except ExecutionError as exc:
        return EntryOutcome("error", str(exc), error_class=type(exc).__name__)
    except Exception as exc:  # malformed IR can break the interpreter itself
        return EntryOutcome(
            "error", f"{type(exc).__name__}: {exc}", error_class=type(exc).__name__
        )
    return EntryOutcome(
        "ok",
        value=result.value,
        output=list(result.output),
        memory=result.state.snapshot_mem(),
        poison_events=result.state.poison_events,
    )


def derive_entries(
    module: Module, seed: int, argsets_per_function: int
) -> List[Tuple[str, Tuple[int, ...]]]:
    """Deterministic seeded entries: every function gets an all-zeros
    vector plus ``argsets_per_function - 1`` vectors from the palette."""
    entries: List[Tuple[str, Tuple[int, ...]]] = []
    for name in sorted(module.functions):
        nparams = len(module.functions[name].params)
        # Seeding with a string keys the RNG off (seed, function) in a
        # process-independent way (str seeds avoid PYTHONHASHSEED).
        rng = random.Random(f"diffcheck:{seed}:{name}")
        seen = {(name, (0,) * nparams)}
        entries.append((name, (0,) * nparams))
        for _ in range(max(1, argsets_per_function) - 1):
            args = tuple(rng.choice(ARG_PALETTE) for _ in range(nparams))
            if (name, args) not in seen:
                seen.add((name, args))
                entries.append((name, args))
    return entries


class DifferentialChecker:
    """Seeded before/after execution comparison for a pipeline run.

    ``entries`` is a list of ``(function_name, argsets)`` pairs; when
    omitted, entries are derived deterministically from the module via
    :func:`derive_entries`. ``mem_model`` selects the execution substrate
    for both sides of every comparison.
    """

    def __init__(
        self,
        entries: Optional[Sequence[Tuple[str, Sequence[Sequence[int]]]]] = None,
        seed: int = 0,
        argsets_per_function: int = 3,
        max_steps: int = 200_000,
        check_memory: bool = True,
        mem_model: str = "flat",
    ):
        self.explicit_entries = list(entries) if entries is not None else None
        self.seed = seed
        self.argsets_per_function = max(1, argsets_per_function)
        self.max_steps = max_steps
        self.check_memory = check_memory
        self.mem_model = mem_model
        self.entries: List[Tuple[str, Tuple[int, ...]]] = []
        self.baseline: Dict[Tuple[str, Tuple[int, ...]], EntryOutcome] = {}

    # -- baseline -----------------------------------------------------------

    def prepare(self, module: Module) -> None:
        """Capture the reference behaviour of the pre-pipeline module."""
        self.entries = self._resolve_entries(module)
        self.baseline = {
            (fn, args): observe(module, fn, args, self.max_steps, self.mem_model)
            for fn, args in self.entries
        }

    def _resolve_entries(self, module: Module) -> List[Tuple[str, Tuple[int, ...]]]:
        if self.explicit_entries is not None:
            flat = []
            for fn, argsets in self.explicit_entries:
                for args in argsets:
                    flat.append((fn, tuple(args)))
            return flat
        return derive_entries(module, self.seed, self.argsets_per_function)

    # -- checking -----------------------------------------------------------

    def check(self, module: Module) -> DiffVerdict:
        """Compare ``module`` against the prepared baseline."""
        if not self.baseline:
            return DiffVerdict("inconclusive", "no baseline prepared")
        compared = 0
        inconclusive = 0
        for (fn, args), base in self.baseline.items():
            if base.kind == "limit":
                # The reference itself ran out of budget: nothing to
                # conclude from this input either way.
                inconclusive += 1
                continue
            if base.kind == "error":
                # The reference faults on this input. If the transformed
                # module faults with the *same* class, deterministic
                # faulting behaviour was preserved: agreement. Anything
                # else (no fault, different fault) is inconclusive — a
                # pass may legitimately remove a fault it proved dead.
                after = observe(module, fn, args, self.max_steps, self.mem_model)
                if after.kind == "error" and after.error_class == base.error_class:
                    compared += 1
                else:
                    inconclusive += 1
                continue
            after = observe(module, fn, args, self.max_steps, self.mem_model)
            if after.kind == "limit":
                # Budget exhaustion is "inconclusive, keep" — see module
                # docstring — not "mismatch, rollback".
                inconclusive += 1
                continue
            if after.kind == "error":
                return DiffVerdict(
                    "mismatch",
                    f"{fn}{tuple(args)}: ran on the baseline but now fails "
                    f"with {after.error_class}: {after.detail}",
                    compared=compared,
                    inconclusive=inconclusive,
                )
            if after.value != base.value:
                return DiffVerdict(
                    "mismatch",
                    f"{fn}{tuple(args)}: value {after.value} != {base.value}",
                    compared=compared,
                    inconclusive=inconclusive,
                )
            if after.output != base.output:
                return DiffVerdict(
                    "mismatch",
                    f"{fn}{tuple(args)}: output diverged",
                    compared=compared,
                    inconclusive=inconclusive,
                )
            if self.check_memory and after.memory != base.memory:
                return DiffVerdict(
                    "mismatch",
                    f"{fn}{tuple(args)}: final memory diverged",
                    compared=compared,
                    inconclusive=inconclusive,
                )
            compared += 1
        if compared == 0:
            return DiffVerdict(
                "inconclusive",
                "no seeded entry was runnable on both sides",
                inconclusive=inconclusive,
            )
        return DiffVerdict(
            "match",
            f"{compared} entries compared",
            compared=compared,
            inconclusive=inconclusive,
        )
