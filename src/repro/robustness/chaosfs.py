"""Injectable filesystem shim: deterministic fs faults and crash modeling.

The pass-level fault harness (:mod:`repro.robustness.faults`) proves the
guard contains bad *compiler* behaviour; this module does the same for
bad *environment* behaviour. Everything in the serve layer that touches
disk — the persistent cache shard (:mod:`repro.perf.store`) and the
write-ahead journal (:mod:`repro.serve.journal`) — goes through a tiny
filesystem interface (:class:`RealFs`) that :class:`ChaosFs` can
substitute to inject, deterministically and seeded:

- ``enospc``     — the write/replace raises ``OSError(ENOSPC)`` (disk
  full); callers must evict-and-retry or degrade, never corrupt;
- ``eio``        — the operation raises ``OSError(EIO)`` (dying media);
  repeated EIO is how a shard earns whole-shard quarantine;
- ``torn-write`` — the write *appears* to succeed but only a seeded
  prefix of the data reaches the file, exactly what a crash mid-write
  leaves behind; checksums must catch it on the next read;
- ``crash``      — :class:`SimulatedCrash` is raised *before* the
  operation takes effect, modeling power loss. Crucially, ChaosFs
  tracks which bytes were actually made **durable** (fsynced) versus
  merely written to the page cache, and :meth:`ChaosFs.apply_crash`
  rewinds the real directory tree to the durable view — un-fsynced
  writes vanish, un-fsynced renames un-happen. Code that publishes
  with ``write; rename`` but no fsync loses data here just like it
  would on a real power cut.

Fault specs live in the ``chaos`` section of the existing
:class:`~repro.robustness.faults.FaultPlan` format, so one plan can
compose pass-level sabotage, worker-level drills and fs-level faults::

    {"faults": [{"pass": "dce", "kind": "raise"}],
     "chaos":  [{"op": "write", "kind": "enospc", "times": 1},
                {"op": "any", "kind": "eio", "path": "*shard*", "p": 0.1}]}

Compact CLI form: ``fs:<kind>[:times]`` alongside the usual
``pass:kind`` chunks (e.g. ``"dce:raise,fs:enospc:2"``); op- and
path-targeted specs need the JSON form. Probability-based specs
(``p``) draw from a ``random.Random(seed)`` owned by the ChaosFs, so
a given (plan, seed) always injects the same faults in the same order.
"""

import errno
import fnmatch
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Injectable filesystem fault kinds.
FS_FAULT_KINDS = ("enospc", "eio", "torn-write", "crash")

#: Operations a spec may target (``any`` matches all of them).
FS_OPS = ("read", "write", "fsync", "fsync-dir", "replace", "remove", "any")


class SimulatedCrash(BaseException):
    """Power loss injected by a ``crash``-kind chaos spec.

    Derives from ``BaseException`` so the service's catch-all request
    handling (``except Exception``) cannot absorb a simulated power cut
    — a real one would not be absorbable either.
    """


@dataclass
class ChaosSpec:
    """One fs sabotage: which op, what kind, how often."""

    kind: str
    op: str = "any"
    #: Glob matched against the full path (``fnmatch``).
    path: str = "*"
    #: Number of matching operations that trigger (0 = every one);
    #: ignored when ``p`` is set.
    times: int = 1
    #: Probability per matching op (seeded); ``None`` = deterministic.
    p: Optional[float] = None
    _activations: int = field(default=0, repr=False, compare=False)

    def __post_init__(self):
        if self.kind not in FS_FAULT_KINDS:
            raise ValueError(f"unknown fs fault kind {self.kind!r}")
        if self.op not in FS_OPS:
            raise ValueError(f"unknown fs op {self.op!r}")

    def matches(self, op: str, path: str, rng: random.Random) -> bool:
        if self.op != "any" and self.op != op:
            return False
        if not fnmatch.fnmatch(path, self.path):
            return False
        if self.p is not None:
            return rng.random() < self.p
        self._activations += 1
        return self.times == 0 or self._activations <= self.times

    def reset(self) -> None:
        self._activations = 0

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "op": self.op}
        if self.path != "*":
            out["path"] = self.path
        if self.p is not None:
            out["p"] = self.p
        else:
            out["times"] = self.times
        return out

    @classmethod
    def from_dict(cls, raw: Dict) -> "ChaosSpec":
        return cls(
            kind=raw["kind"],
            op=raw.get("op", "any"),
            path=raw.get("path", "*"),
            times=int(raw.get("times", 1)),
            p=raw.get("p"),
        )


class RealFs:
    """The pass-through filesystem the production code runs on.

    Durable publication is two fsyncs: the data file *before* the
    rename (otherwise the rename can reach disk ahead of the bytes it
    names) and the parent directory *after* it (otherwise the rename
    itself may not survive). :class:`ChaosFs` models exactly that.
    """

    def read_bytes(self, path) -> bytes:
        return Path(path).read_bytes()

    def read_text(self, path) -> str:
        return self.read_bytes(path).decode()

    def write_bytes(self, path, data: bytes) -> None:
        Path(path).write_bytes(data)

    def write_text(self, path, text: str) -> None:
        self.write_bytes(path, text.encode())

    def append_bytes(self, path, data: bytes) -> None:
        with open(path, "ab") as handle:
            handle.write(data)

    def fsync(self, path) -> None:
        fd = os.open(str(path), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, path) -> None:
        # Windows cannot open directories; directory durability is a
        # POSIX concept and a no-op there.
        try:
            fd = os.open(str(path), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, src, dst) -> None:
        os.replace(str(src), str(dst))

    def remove(self, path) -> None:
        os.remove(str(path))


#: Shared default instance; stateless, safe across threads.
REAL_FS = RealFs()


class ChaosFs(RealFs):
    """A :class:`RealFs` that injects faults and models power loss.

    Every tracked path has two views: the **live** view (what the real
    filesystem currently holds — what running code reads back) and the
    **durable** view (what would still be there after power loss). A
    plain write changes only the live view; ``fsync`` promotes the
    live bytes to durable; ``replace`` moves the live file at once but
    its durable effect is *staged* until the parent directory is
    fsynced. :meth:`apply_crash` rewrites the tree to the durable view.

    ``counters`` records every injected fault by kind plus the total
    op count, so a soak can prove its fault mix was really applied.
    """

    #: Sentinel durable state for "file did not exist".
    _ABSENT = None

    def __init__(self, specs: Optional[List[ChaosSpec]] = None, seed: int = 0):
        self.specs = list(specs or [])
        self.rng = random.Random(seed)
        self.ops = 0
        self.injected: Dict[str, int] = {kind: 0 for kind in FS_FAULT_KINDS}
        #: path -> durable content (bytes) or _ABSENT. Only paths
        #: touched through this shim are tracked.
        self._durable: Dict[str, Optional[bytes]] = {}
        #: dir -> list of (src, dst, src-durable-at-replace) renames
        #: whose durability is still pending that dir's fsync.
        self._staged: Dict[str, List] = {}
        self.crashed = False

    # -- injection -----------------------------------------------------------

    def _inject(self, op: str, path) -> Optional[str]:
        """The fault kind to apply to this op, if any."""
        self.ops += 1
        for spec in self.specs:
            if spec.matches(op, str(path), self.rng):
                self.injected[spec.kind] += 1
                return spec.kind
        return None

    def _raise_for(self, kind: Optional[str], op: str, path) -> None:
        if kind == "enospc":
            raise OSError(errno.ENOSPC, f"injected ENOSPC on {op} {path}")
        if kind == "eio":
            raise OSError(errno.EIO, f"injected EIO on {op} {path}")
        if kind == "crash":
            self.crashed = True
            raise SimulatedCrash(f"injected power loss before {op} {path}")

    # -- durable-view bookkeeping --------------------------------------------

    def _track(self, path) -> None:
        """First touch of ``path``: its current on-disk bytes are durable.

        A file that predates the shim is assumed fsynced (it survived
        until now); everything after this point must earn durability.
        """
        key = str(path)
        if key in self._durable:
            return
        try:
            self._durable[key] = Path(path).read_bytes()
        except OSError:
            self._durable[key] = self._ABSENT

    # -- operations ----------------------------------------------------------

    def read_bytes(self, path) -> bytes:
        self._raise_for(self._inject("read", path), "read", path)
        return super().read_bytes(path)

    def write_bytes(self, path, data: bytes) -> None:
        self._track(path)
        kind = self._inject("write", path)
        if kind == "torn-write":
            # A seeded prefix lands; the caller sees success. Only the
            # next reader's checksum can tell.
            cut = self.rng.randrange(0, max(1, len(data)))
            super().write_bytes(path, data[:cut])
            return
        self._raise_for(kind, "write", path)
        super().write_bytes(path, data)

    def append_bytes(self, path, data: bytes) -> None:
        self._track(path)
        kind = self._inject("write", path)
        if kind == "torn-write":
            cut = self.rng.randrange(0, max(1, len(data)))
            super().append_bytes(path, data[:cut])
            return
        self._raise_for(kind, "write", path)
        super().append_bytes(path, data)

    def fsync(self, path) -> None:
        kind = self._inject("fsync", path)
        self._raise_for(kind, "fsync", path)
        super().fsync(path)
        try:
            self._durable[str(path)] = Path(path).read_bytes()
        except OSError:
            self._durable[str(path)] = self._ABSENT

    def fsync_dir(self, path) -> None:
        kind = self._inject("fsync-dir", path)
        self._raise_for(kind, "fsync-dir", path)
        super().fsync_dir(path)
        # Commit staged renames under this directory.
        for src, dst, durable_src in self._staged.pop(str(path), []):
            self._durable[dst] = durable_src
            self._durable[src] = self._ABSENT

    def replace(self, src, dst) -> None:
        self._track(src)
        self._track(dst)
        kind = self._inject("replace", src)
        self._raise_for(kind, "replace", src)
        durable_src = self._durable.get(str(src), self._ABSENT)
        super().replace(src, dst)
        # The rename is visible immediately but durable only after the
        # parent directory is fsynced — and even then the *content* that
        # survives is only what was fsynced into src beforehand.
        parent = str(Path(dst).parent)
        self._staged.setdefault(parent, []).append(
            (str(src), str(dst), durable_src)
        )

    def remove(self, path) -> None:
        self._track(path)
        kind = self._inject("remove", path)
        self._raise_for(kind, "remove", path)
        super().remove(path)
        # Unlink durability also rides the next dir fsync; model the
        # conservative (survives-until-fsync) case by leaving the
        # durable view alone — apply_crash may resurrect the file,
        # which recovery code must tolerate anyway.

    # -- the crash -----------------------------------------------------------

    def apply_crash(self) -> List[str]:
        """Rewind the real tree to the durable view; returns changed paths.

        Call after catching :class:`SimulatedCrash` (or at any point to
        model an abrupt power cut): un-fsynced writes are rolled back,
        staged renames are undone, files that were never durable are
        deleted. The shim then starts a fresh epoch — current disk
        state is the new durable baseline.
        """
        changed = []
        for key, durable in self._durable.items():
            path = Path(key)
            try:
                live = path.read_bytes()
            except OSError:
                live = self._ABSENT
            if live == durable:
                continue
            changed.append(key)
            if durable is self._ABSENT:
                try:
                    os.remove(key)
                except OSError:
                    pass
            else:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_bytes(durable)
        self._durable.clear()
        self._staged.clear()
        self.crashed = False
        return changed

    # -- introspection -------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        out = {"fs.ops": self.ops}
        for kind, count in self.injected.items():
            out[f"fs.injected.{kind.replace('-', '_')}"] = count
        out["fs.injected.total"] = sum(self.injected.values())
        return out

    def reset(self) -> None:
        for spec in self.specs:
            spec.reset()
