"""Speculation-containment sanitizer.

The optimizer is allowed to *create* speculation — loads hoisted above
their guards by the global scheduler, loop-memory-motion's preheader
loads — but only because the paged machine model contains mis-speculation:
a faulting speculative load poisons its destination, and the poison traps
only if it reaches a non-speculative side effect. The
:class:`SpeculationSanitizer` proves that contract holds for a concrete
baseline/optimized module pair by executing both over seeded inputs **on
the paged model** and classifying every entry:

==============  ============================================================
``clean``       both sides ran, observables agree, no poison was produced
``benign``      the *baseline* faults on this input too — the program, not
                the optimizer, is at fault (matching or not)
``masked``      the optimized module produced poison (a speculative fault
                occurred) but contained it: no side effect consumed it and
                the observables still agree — speculation worked as designed
``violation``   the optimized module faults (or diverges) on an input the
                baseline handles — **containment failed**; the offending
                pass must be rolled back
``inconclusive``  a step budget ran out on either side
==============  ============================================================

Wired into :class:`~repro.robustness.guard.GuardedPassManager` the
sanitizer runs after every pass like the differential checker; a
``violation`` is recorded as a ``containment`` failure in the
:class:`~repro.robustness.report.ResilienceReport` and triggers rollback
under the ``rollback``/``retry`` policies. Standalone use::

    result = SpeculationSanitizer().run(baseline, optimized)
    assert not result.violations, result.summary()
"""

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.robustness.diffcheck import EntryOutcome, derive_entries, observe

#: Per-entry classifications, most to least severe.
CLASSIFICATIONS = ("violation", "masked", "benign", "clean", "inconclusive")


@dataclass
class SanitizerFinding:
    """One seeded entry's classification."""

    fn: str
    args: Tuple[int, ...]
    #: One of :data:`CLASSIFICATIONS`.
    classification: str
    detail: str = ""
    #: Outcome capsule for each side: "ok", or the fault class name.
    baseline: str = "ok"
    optimized: str = "ok"

    def to_dict(self) -> Dict[str, object]:
        return {
            "fn": self.fn,
            "args": list(self.args),
            "classification": self.classification,
            "detail": self.detail,
            "baseline": self.baseline,
            "optimized": self.optimized,
        }


@dataclass
class SanitizerResult:
    """All findings of one baseline/optimized comparison."""

    findings: List[SanitizerFinding] = field(default_factory=list)
    seed: int = 0

    def _of(self, classification: str) -> List[SanitizerFinding]:
        return [f for f in self.findings if f.classification == classification]

    @property
    def violations(self) -> List[SanitizerFinding]:
        return self._of("violation")

    @property
    def masked(self) -> List[SanitizerFinding]:
        return self._of("masked")

    @property
    def benign(self) -> List[SanitizerFinding]:
        return self._of("benign")

    @property
    def clean(self) -> List[SanitizerFinding]:
        return self._of("clean")

    @property
    def ok(self) -> bool:
        """True when containment held on every seeded entry."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def counts(self) -> Dict[str, int]:
        out = {c: 0 for c in CLASSIFICATIONS}
        for f in self.findings:
            out[f.classification] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        text = " ".join(f"{c}={counts[c]}" for c in CLASSIFICATIONS if counts[c])
        first = self.violations[0] if self.violations else None
        tail = f" first-violation: {first.fn}{first.args}: {first.detail}" if first else ""
        return f"sanitize[{len(self.findings)} entries] {text or 'no entries'}{tail}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "entries": len(self.findings),
            "counts": self.counts(),
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class SpeculationSanitizer:
    """Baseline-vs-optimized execution on the paged model.

    ``entries`` is a list of ``(function_name, argsets)`` pairs; when
    omitted, seeded entries are derived exactly like the differential
    checker's (:func:`~repro.robustness.diffcheck.derive_entries`).
    """

    def __init__(
        self,
        entries: Optional[Sequence[Tuple[str, Sequence[Sequence[int]]]]] = None,
        seed: int = 0,
        argsets_per_function: int = 3,
        max_steps: int = 200_000,
        engine: str = "tree",
    ):
        self.explicit_entries = list(entries) if entries is not None else None
        self.seed = seed
        self.argsets_per_function = max(1, argsets_per_function)
        self.max_steps = max_steps
        self.engine = engine
        self.entries: List[Tuple[str, Tuple[int, ...]]] = []
        self.baseline: Dict[Tuple[str, Tuple[int, ...]], EntryOutcome] = {}
        #: Pristine pre-pipeline clone for lazily-computed baselines.
        self._reference: Optional[Module] = None
        #: (fn name, fingerprint) -> cached findings for that function.
        self._memo: Dict[Tuple[str, str], List[SanitizerFinding]] = {}
        self.counters: Dict[str, int] = {
            "sanitize.entries_run": 0,
            "sanitize.entries_memoized": 0,
            "sanitize.entries_skipped": 0,
            "sanitize.fns_memoized": 0,
            "sanitize.baselines_lazy": 0,
        }

    # -- baseline -----------------------------------------------------------

    def prepare(self, module: Module, lazy: bool = False) -> None:
        """Capture the pre-pipeline module's paged-model behaviour.

        With ``lazy=True`` only a pristine clone is captured; each
        entry's baseline outcome is computed on first comparison.
        """
        if self.explicit_entries is not None:
            self.entries = [
                (fn, tuple(args))
                for fn, argsets in self.explicit_entries
                for args in argsets
            ]
        else:
            self.entries = derive_entries(
                module, self.seed, self.argsets_per_function
            )
        self._memo.clear()
        if lazy:
            self._reference = module.clone()
            self.baseline = {}
            return
        self._reference = None
        self.baseline = {
            (fn, args): observe(
                module, fn, args, self.max_steps, "paged", self.engine
            )
            for fn, args in self.entries
        }

    def _baseline_for(self, fn: str, args: Tuple[int, ...]) -> EntryOutcome:
        key = (fn, args)
        outcome = self.baseline.get(key)
        if outcome is None:
            self.counters["sanitize.baselines_lazy"] += 1
            outcome = observe(
                self._reference, fn, args, self.max_steps, "paged", self.engine
            )
            self.baseline[key] = outcome
        return outcome

    # -- classification ------------------------------------------------------

    def check(
        self, module: Module, fingerprints: Optional[Dict[str, str]] = None
    ) -> SanitizerResult:
        """Classify every prepared entry against ``module``.

        ``fingerprints`` maps function names to structural content
        hashes; a function whose hash was classified before re-uses its
        findings without executing (classification is deterministic).
        """
        result = SanitizerResult(seed=self.seed)
        groups: Dict[str, List[Tuple[str, Tuple[int, ...]]]] = {}
        for fn, args in self.entries:
            groups.setdefault(fn, []).append((fn, args))
        for fn, entries in groups.items():
            fp = fingerprints.get(fn) if fingerprints is not None else None
            findings = self._memo.get((fn, fp)) if fp is not None else None
            if findings is not None:
                self.counters["sanitize.fns_memoized"] += 1
                self.counters["sanitize.entries_memoized"] += len(entries)
            else:
                findings = []
                for fn_name, args in entries:
                    base = self._baseline_for(fn_name, args)
                    if fingerprints is not None and base.kind != "ok":
                        # The baseline alone decides these entries — a
                        # limit baseline is "inconclusive" and a faulting
                        # baseline is "benign" no matter what the
                        # optimized side does — so the fast path skips
                        # executing the optimized side (the legacy cost
                        # model runs it and lets _classify discard it).
                        if base.kind == "limit":
                            classification, detail = (
                                "inconclusive",
                                "step budget exhausted",
                            )
                        else:
                            classification, detail = (
                                "benign",
                                f"baseline faults too ({base.error_class})",
                            )
                        self.counters["sanitize.entries_skipped"] += 1
                        findings.append(
                            SanitizerFinding(
                                fn_name,
                                tuple(args),
                                classification,
                                detail=detail,
                                baseline=base.error_class,
                                optimized="skipped",
                            )
                        )
                        continue
                    self.counters["sanitize.entries_run"] += 1
                    after = observe(
                        module, fn_name, args, self.max_steps, "paged", self.engine
                    )
                    findings.append(self._classify(fn_name, args, base, after))
                if fp is not None:
                    self._memo[(fn, fp)] = findings
            result.findings.extend(findings)
        return result

    def run(self, baseline: Module, optimized: Module) -> SanitizerResult:
        """Convenience: prepare on ``baseline``, check ``optimized``."""
        self.prepare(baseline)
        return self.check(optimized)

    def _classify(
        self,
        fn: str,
        args: Tuple[int, ...],
        base: EntryOutcome,
        after: EntryOutcome,
    ) -> SanitizerFinding:
        base_cap = "ok" if base.kind == "ok" else base.error_class
        after_cap = "ok" if after.kind == "ok" else after.error_class
        finding = SanitizerFinding(
            fn, tuple(args), "clean", baseline=base_cap, optimized=after_cap
        )
        if base.kind == "limit" or after.kind == "limit":
            finding.classification = "inconclusive"
            finding.detail = "step budget exhausted"
            return finding
        if base.kind == "error":
            # The program faults before any optimization: whatever the
            # optimized module does on this input, the optimizer did not
            # *introduce* the fault.
            finding.classification = "benign"
            finding.detail = f"baseline faults too ({base.error_class})"
            return finding
        if after.kind == "error":
            finding.classification = "violation"
            finding.detail = (
                f"optimized-only fault {after.error_class}: {after.detail}"
            )
            return finding
        if (
            after.value != base.value
            or after.output != base.output
            or after.memory != base.memory
        ):
            # Not a fault, but still an optimized-only behaviour change
            # observed under the containment model: treat as a violation
            # (the differential checker would call it a mismatch).
            finding.classification = "violation"
            finding.detail = (
                f"observables diverged (value {after.value} != {base.value})"
                if after.value != base.value
                else "observables diverged (output or memory)"
            )
            return finding
        if after.poison_events > base.poison_events:
            finding.classification = "masked"
            finding.detail = (
                f"{after.poison_events} poison event(s) produced and contained"
            )
            return finding
        return finding
