"""compress: open-addressing hash table probe/insert loop.

compress's hot loop hashes a (prefix, char) code pair and probes its
table, inserting on an empty slot and resetting on collision — a blend
of multiplicative hashing, data-dependent loads and unpredictable
branches. Techniques exercised: global scheduling across the probe
diamond, unspeculation of the insert path, PDF reordering.
"""

import random

from repro.ir.module import Module
from repro.ir.parser import parse_module

TABLE_WORDS = 256  # power of two so masking works

_SOURCE = """
data table: size={table_size}
data codes: size={codes_size}

func lookup_insert(r3, r4):
    # r3 = key (nonzero), r4 = table base. Returns 1 on hit, 0 on insert.
    MULI r5, r3, 2654435761
    SRI r5, r5, 8
    ANDI r5, r5, {mask}
probe:
    SLI r6, r5, 2
    A r6, r6, r4
    L r7, 0(r6)
    CI cr0, r7, 0
    BT empty, cr0.eq
    C cr1, r7, r3
    BT hit, cr1.eq
    AI r5, r5, 1
    ANDI r5, r5, {mask}
    B probe
empty:
    ST 0(r6), r3
    LI r3, 0
    RET
hit:
    LI r3, 1
    RET

func main(r3):
    LR r20, r3
    LA r21, codes
    LI r22, 0
    LI r23, 0
mloop:
    C cr2, r22, r20
    BF mdone, cr2.lt
    L r3, 0(r21)
    LA r4, table
    CALL lookup_insert, 2
    A r23, r23, r3
    AI r21, r21, 4
    AI r22, r22, 1
    B mloop
mdone:
    LR r3, r23
    RET
"""


def build(n_codes: int = 96, seed: int = 13) -> Module:
    """``n_codes`` lookups against a {TABLE_WORDS}-slot table."""
    rng = random.Random(seed)
    module = parse_module(
        _SOURCE.format(
            table_size=4 * TABLE_WORDS,
            codes_size=max(4 * n_codes, 4),
            mask=TABLE_WORDS - 1,
        )
    )
    # A zipfish code stream: lots of repeats so hits and misses mix.
    alphabet = [rng.randrange(1, 1 << 20) for _ in range(max(n_codes // 3, 4))]
    codes = [
        alphabet[rng.randrange(len(alphabet))]
        if rng.random() < 0.7
        else rng.randrange(1, 1 << 20)
        for _ in range(n_codes)
    ]
    module.data["codes"].init = codes
    return module
