"""li: the paper's ``xlygetvalue`` association-list search.

A driver loops over a key array, calling ``xlygetvalue`` for each key
against a cons-cell list whose cars point at (cell, value) pairs —
exactly the structure of the paper's SPEC li example. Techniques
exercised: unrolling, renaming, global scheduling, software pipelining
(the dependent-load chain), and the loop-exit copies.
"""

import random

from repro.ir.module import Module
from repro.ir.parser import parse_module

_SOURCE = """
data nodes: size={nodes_size}
data cells: size={cells_size}
data keys: size={keys_size}

func xlygetvalue(r3, r4):
    LR r8, r4
loop:
    L r4, 4(r8)
    L r5, 4(r4)
    C cr0, r5, r3
    BT found, cr0.eq
    L r8, 8(r8)
    CI cr1, r8, 0
    BF loop, cr1.eq
endofchain:
    LI r3, 0
    RET
found:
    LR r3, r4
    RET

func main(r3):
    LR r20, r3
    LA r21, keys
    LI r22, 0
    LI r23, 0
mloop:
    C cr2, r22, r20
    BF mdone, cr2.lt
    L r3, 0(r21)
    LA r4, nodes
    CALL xlygetvalue, 2
    CI cr3, r3, 0
    BT mnext, cr3.eq
    L r5, 4(r3)
    A r23, r23, r5
mnext:
    AI r21, r21, 4
    AI r22, r22, 1
    B mloop
mdone:
    LR r3, r23
    RET
"""


def build(n_nodes: int = 64, n_keys: int = 32, seed: int = 7) -> Module:
    """Build the module with an ``n_nodes``-long list and a key array."""
    rng = random.Random(seed)
    module = parse_module(
        _SOURCE.format(
            nodes_size=max(12 * n_nodes, 4),
            cells_size=max(8 * n_nodes, 4),
            keys_size=max(4 * n_keys, 4),
        )
    )
    layout = module.layout()
    nodes, cells = layout["nodes"], layout["cells"]

    node_init = [0] * (3 * n_nodes)
    cell_init = [0] * (2 * n_nodes)
    values = []
    for i in range(n_nodes):
        value = 1000 + i * 3
        values.append(value)
        node_init[3 * i + 1] = cells + 8 * i
        node_init[3 * i + 2] = nodes + 12 * (i + 1) if i + 1 < n_nodes else 0
        cell_init[2 * i + 1] = value
    module.data["nodes"].init = node_init
    module.data["cells"].init = cell_init

    keys = []
    for _ in range(n_keys):
        if rng.random() < 0.8:
            keys.append(values[rng.randrange(len(values))])
        else:
            keys.append(rng.randrange(5000))  # mostly misses the list
    module.data["keys"].init = keys
    return module
