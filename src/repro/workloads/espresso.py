"""espresso: bit-set cube operations.

espresso's core loops intersect and unite cube bit-vectors word by
word, counting non-empty intersections. Techniques exercised: the
straight-line loads/ALU mix that local and global scheduling overlap,
speculative counting under a branch (unspeculation candidates), and the
BCT-closed inner loop that unrolling and pipelining compact.
"""

import random

from repro.ir.module import Module
from repro.ir.parser import parse_module

_SOURCE = """
data cubes_a: size={size}
data cubes_b: size={size}
data unions: size={size}

func sweep(r3, r4, r5, r6):
    # r3 = a base, r4 = b base, r5 = out base, r6 = word count.
    # Returns the number of words whose intersection is non-empty.
    MTCTR r6
    LI r7, 0
    AI r3, r3, -4
    AI r4, r4, -4
    AI r5, r5, -4
loop:
    LU r8, 4(r3)
    LU r9, 4(r4)
    AND r10, r8, r9
    OR r11, r8, r9
    STU 4(r5), r11
    CI cr0, r10, 0
    BT next, cr0.eq
    AI r7, r7, 1
next:
    BCT loop
done:
    LR r3, r7
    RET

func main(r3):
    # r3 = number of sweeps over the cube arrays.
    LR r20, r3
    LI r22, 0
    LI r23, 0
mloop:
    C cr2, r22, r20
    BF mdone, cr2.lt
    LA r3, cubes_a
    LA r4, cubes_b
    LA r5, unions
    LI r6, {words}
    CALL sweep, 4
    A r23, r23, r3
    AI r22, r22, 1
    B mloop
mdone:
    LR r3, r23
    RET
"""


def build(n_words: int = 64, seed: int = 17) -> Module:
    rng = random.Random(seed)
    module = parse_module(
        _SOURCE.format(size=max(4 * n_words, 4), words=n_words)
    )
    # Sparse cubes: intersections are non-empty about a third of the time.
    module.data["cubes_a"].init = [
        rng.getrandbits(16) if rng.random() < 0.6 else 0 for _ in range(n_words)
    ]
    module.data["cubes_b"].init = [
        rng.getrandbits(16) if rng.random() < 0.6 else 0 for _ in range(n_words)
    ]
    return module
