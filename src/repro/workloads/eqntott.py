"""eqntott: the paper's term-comparison inner loop (``cmppt``).

The flow graph matches the paper's profiling figure (BB1..BB8): load an
element from each term with update-form loads, normalise the don't-care
value 2 to 0 on both sides, compare, exit early on a difference, and
close the loop with ``BCT``. Techniques exercised: profiling counter
placement and invariant counter motion (BB1/BB2/BB4 are the counted
blocks in the paper), local scheduling around the compare chain, PDF
branch statistics.
"""

import random

from repro.ir.module import Module
from repro.ir.parser import parse_module

_SOURCE = """
data terma: size={term_size}
data termb: size={term_size}

func cmppt(r3, r4, r5):
    MTCTR r5
    AI r3, r3, -4
    AI r4, r4, -4
loop:
    LU r6, 4(r3)
    LU r7, 4(r4)
    CI cr0, r6, 2
    BF bb3, cr0.eq
bb2:
    LI r6, 0
bb3:
    CI cr1, r7, 2
    BF bb5, cr1.eq
bb4:
    LI r7, 0
bb5:
    C cr2, r6, r7
    BT diff, cr2.ne
bb6:
    BCT loop
equal:
    LI r3, 0
    RET
diff:
    S r3, r6, r7
    RET

func main(r3):
    LR r20, r3
    LI r22, 0
    LI r23, 0
mloop:
    C cr2, r22, r20
    BF mdone, cr2.lt
    LA r3, terma
    MULI r5, r22, {pair_bytes}
    A r3, r3, r5
    LA r4, termb
    A r4, r4, r5
    LI r5, {pair_words}
    CALL cmppt, 3
    CI cr3, r3, 0
    BT mnext, cr3.eq
    AI r23, r23, 1
mnext:
    AI r22, r22, 1
    B mloop
mdone:
    LR r3, r23
    RET
"""


def build(n_pairs: int = 24, pair_words: int = 16, seed: int = 11) -> Module:
    """``n_pairs`` term pairs of ``pair_words`` words each."""
    rng = random.Random(seed)
    term_size = max(4 * n_pairs * pair_words, 4)
    module = parse_module(
        _SOURCE.format(
            term_size=term_size,
            pair_bytes=4 * pair_words,
            pair_words=pair_words,
        )
    )
    terma = []
    termb = []
    for p in range(n_pairs):
        differs_at = rng.randrange(pair_words * 2)  # ~half pairs equal
        for w in range(pair_words):
            a = rng.choice((0, 1, 2, 2))
            # b matches a modulo don't-care normalisation, except at the
            # chosen difference position.
            b = rng.choice((a, 2 if a == 0 else a))
            if w == differs_at:
                b = 1 if (a in (0, 2)) else 0
            terma.append(a)
            termb.append(b)
    module.data["terma"].init = terma
    module.data["termb"].init = termb
    return module
