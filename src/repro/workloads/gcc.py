"""gcc: opcode dispatch with compare chains.

gcc's RTL walkers branch on small opcode numbers; the kernel dispatches
over an opcode stream through a compare chain whose cases each end in an
unconditional branch back to the loop bottom — exactly the "untaken
conditional branch followed immediately by a taken unconditional branch"
stall pattern that basic block expansion removes, and prime material for
PDF re-ordering and branch reversal.
"""

import random

from repro.ir.module import Module
from repro.ir.parser import parse_module

_SOURCE = """
data ops: size={ops_size}
data regs: size=64

func dispatch(r3, r4):
    # r3 = ops base, r4 = op count. Returns the accumulator.
    MTCTR r4
    LI r5, 0
    LI r6, 1
    AI r3, r3, -4
loop:
    LU r7, 4(r3)
    CI cr0, r7, 1
    BT case_add, cr0.eq
    CI cr1, r7, 2
    BT case_sub, cr1.eq
    CI cr2, r7, 3
    BT case_shift, cr2.eq
    CI cr3, r7, 4
    BT case_store, cr3.eq
case_default:
    XOR r5, r5, r7
    B bottom
case_add:
    A r5, r5, r6
    AI r6, r6, 1
    B bottom
case_sub:
    S r5, r5, r6
    B bottom
case_shift:
    SLI r5, r5, 1
    ANDI r5, r5, 65535
    B bottom
case_store:
    LA r8, regs
    ANDI r9, r5, 15
    SLI r9, r9, 2
    A r8, r8, r9
    ST 0(r8), r5
bottom:
    BCT loop
done:
    LR r3, r5
    RET

func main(r3):
    LR r20, r3
    LI r23, 0
mloop:
    CI cr2, r20, 0
    BT mdone, cr2.eq
    LA r3, ops
    LI r4, {nops}
    CALL dispatch, 2
    A r23, r23, r3
    AI r20, r20, -1
    B mloop
mdone:
    LR r3, r23
    RET
"""


def build(n_ops: int = 80, seed: int = 23) -> Module:
    rng = random.Random(seed)
    module = parse_module(
        _SOURCE.format(ops_size=max(4 * n_ops, 4), nops=n_ops)
    )
    # Skewed opcode mix (case_add dominates) so PDF has something to find.
    weights = [(1, 50), (2, 15), (3, 12), (4, 8), (9, 15)]
    population = [op for op, w in weights for _ in range(w)]
    module.data["ops"].init = [
        population[rng.randrange(len(population))] for _ in range(n_ops)
    ]
    return module
