"""Synthetic SPECint92-like workloads.

The paper evaluates on the six SPECint92 benchmarks. We cannot run SPEC,
so each kernel reproduces the dominant inner-loop character of its
benchmark — two of them (li's ``xlygetvalue`` list search and eqntott's
compare loop) are transcribed directly from the paper's own listings:

========== =========================================================
espresso   bit-set cube intersection/union over word arrays
li         the paper's ``xlygetvalue`` linked-list search
eqntott    the paper's BB1..BB8 term-comparison loop (``cmppt``)
compress   open-addressing hash table probe/insert loop
sc         spreadsheet cell recalculation with a global accumulator
gcc        opcode dispatch with compare chains and branchy cases
========== =========================================================

Each workload provides a module builder, an entry point, reference and
training arguments, and a short note on which of the paper's techniques
it exercises.
"""

from repro.workloads.suite import Workload, suite, workload_by_name

__all__ = ["Workload", "suite", "workload_by_name"]
