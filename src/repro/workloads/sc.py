"""sc: spreadsheet cell recalculation.

Each cell is [value, dependency index, dirty flag]; a recalc pass walks
the sheet, recomputing dirty cells from their dependency and adding the
change into a global total — a conditionally executed load/store of a
TOC-addressed global inside the loop, the exact pattern the paper's
speculative load/store motion targets (the ``a(r4,12)`` example).
"""

import random

from repro.ir.module import Module
from repro.ir.parser import parse_module

_SOURCE = """
data cells: size={cells_size}
data total: size=4 init=[0]

func recalc(r3):
    # r3 = number of cells.
    MTCTR r3
    LA r9, total
    LA r3, cells
    LA r10, cells
    AI r3, r3, -12
loop:
    LU r5, 12(r3)
    L r6, 8(r3)
    CI cr0, r6, 0
    BT next, cr0.eq
dirty:
    L r7, 4(r3)
    MULI r7, r7, 12
    A r12, r7, r10
    L r8, 0(r12)
    AI r8, r8, 1
    ST 0(r3), r8
    L r11, 0(r9)
    A r11, r11, r8
    ST 0(r9), r11
next:
    BCT loop
done:
    L r3, 0(r9)
    RET

func main(r3):
    # r3 = recalc passes.
    LR r20, r3
    LI r23, 0
mloop:
    CI cr2, r20, 0
    BT mdone, cr2.eq
    LI r3, {ncells}
    CALL recalc, 1
    LR r23, r3
    AI r20, r20, -1
    B mloop
mdone:
    LR r3, r23
    RET
"""


def build(n_cells: int = 48, seed: int = 19) -> Module:
    rng = random.Random(seed)
    module = parse_module(
        _SOURCE.format(cells_size=max(12 * n_cells, 4), ncells=n_cells)
    )
    init = []
    for i in range(n_cells):
        init.append(rng.randrange(100))          # value
        init.append(rng.randrange(n_cells))      # dependency index
        init.append(1 if rng.random() < 0.4 else 0)  # dirty flag
    module.data["cells"].init = init
    return module
