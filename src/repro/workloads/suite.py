"""The workload suite used by the experiments."""

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.ir.module import Module
from repro.workloads import compress, eqntott, espresso, gcc, li, sc


@dataclass(frozen=True)
class Workload:
    """One benchmark: builder, entry point, reference/training inputs."""

    name: str
    build: Callable[[], Module]
    entry: str
    args: Tuple[int, ...]
    train_args: Tuple[int, ...]
    description: str

    def fresh_module(self) -> Module:
        return self.build()


def suite() -> Tuple[Workload, ...]:
    """The six SPECint92-like workloads, reference-sized."""
    return (
        Workload(
            name="espresso",
            build=lambda: espresso.build(n_words=64),
            entry="main",
            args=(40,),
            train_args=(6,),
            description="bit-set cube intersection/union sweeps",
        ),
        Workload(
            name="li",
            build=lambda: li.build(n_nodes=64, n_keys=32),
            entry="main",
            args=(32,),
            train_args=(8,),
            description="xlygetvalue association-list search (paper listing)",
        ),
        Workload(
            name="eqntott",
            build=lambda: eqntott.build(n_pairs=24, pair_words=16),
            entry="main",
            args=(24,),
            train_args=(6,),
            description="cmppt term comparison loop (paper listing)",
        ),
        Workload(
            name="compress",
            build=lambda: compress.build(n_codes=96),
            entry="main",
            args=(96,),
            train_args=(24,),
            description="open-addressing hash probe/insert",
        ),
        Workload(
            name="sc",
            build=lambda: sc.build(n_cells=48),
            entry="main",
            args=(20,),
            train_args=(4,),
            description="spreadsheet recalculation with global total",
        ),
        Workload(
            name="gcc",
            build=lambda: gcc.build(n_ops=80),
            entry="main",
            args=(30,),
            train_args=(5,),
            description="opcode dispatch compare chains",
        ),
    )


def workload_by_name(name: str) -> Workload:
    for wl in suite():
        if wl.name == name:
            return wl
    raise KeyError(f"no workload named {name!r}")
