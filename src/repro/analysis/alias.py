"""Memory disambiguation ("advanced memory disambiguation techniques ...
enhancements of those used in the Bulldog compiler").

Two complementary mechanisms, both matching what the paper's conditions
need:

1. **Base-register provenance.** A register with exactly one definition in
   the function, whose value chains back to ``LA symbol`` (possibly via
   ``LR`` copies and ``AI`` constant offsets) or ``LI``, denotes a known
   region. References into *different* data symbols never alias; two
   references into the same symbol alias only when their byte ranges
   overlap. This resolves the paper's canonical pattern — the base loaded
   from the TOC in the loop preheader.

2. **Same-base displacement rule.** Two references through the *same*
   single-definition base register with displacements at least a word
   apart are disjoint even when the region itself is unknown.

Everything else conservatively may-alias. Volatile objects are tracked so
that load/store motion can refuse them (condition 3 of the paper's
load/store motion rule).
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.ir.module import Module
from repro.ir.operands import Reg

WORD = 4


@dataclass(frozen=True)
class MemRef:
    """An abstract memory reference: region plus byte offset.

    ``offset`` is the base register's resolved offset within ``symbol``,
    or None when the base provably stays within the symbol but at an
    unknown offset (an induction pointer walking an array).
    """

    base: Reg
    disp: int
    symbol: Optional[str] = None  # known data object, if resolved
    offset: Optional[int] = 0  # base offset within symbol; None = unknown
    single_def_base: bool = False

    @property
    def resolved(self) -> bool:
        return self.symbol is not None

    @property
    def addr_in_symbol(self) -> Optional[int]:
        if self.symbol is None or self.offset is None:
            return None
        return self.offset + self.disp


class MemoryModel:
    """Per-function memory disambiguation against a module's data."""

    def __init__(self, fn: Function, module: Optional[Module] = None):
        self.fn = fn
        self.module = module
        self._def_counts: Dict[Reg, int] = {}
        self._single_defs: Dict[Reg, Instr] = {}
        self._provenance: Dict[Reg, Tuple[str, int]] = {}
        self._summaries = None
        self._analyze()

    @property
    def summaries(self):
        """Inter-procedural call-effect summaries (lazy, module-wide)."""
        if self._summaries is None and self.module is not None:
            from repro.analysis.summaries import compute_summaries

            self._summaries = compute_summaries(self.module)
        return self._summaries or {}

    # -- analysis ---------------------------------------------------------

    def _analyze(self) -> None:
        counts: Dict[Reg, int] = {}
        single: Dict[Reg, Instr] = {}
        for instr in self.fn.instructions():
            for reg in instr.defs():
                counts[reg] = counts.get(reg, 0) + 1
                if counts[reg] == 1:
                    single[reg] = instr
                else:
                    single.pop(reg, None)
        # Parameters count as an (external) definition.
        for reg in self.fn.params:
            counts[reg] = counts.get(reg, 0) + 1
            single.pop(reg, None)
        self._def_counts = counts
        self._single_defs = single

        # Resolve LA/LR/AI chains over single-def registers to
        # (symbol, offset). Iterate to a fixed point (chains are short).
        prov: Dict[Reg, Tuple[str, int]] = {}
        changed = True
        while changed:
            changed = False
            for reg, instr in single.items():
                if reg in prov:
                    continue
                resolved: Optional[Tuple[str, int]] = None
                if instr.opcode == "LA":
                    resolved = (instr.symbol, 0)
                elif instr.opcode == "LR" and instr.ra in prov:
                    resolved = prov[instr.ra]
                elif instr.opcode == "AI" and instr.ra in prov:
                    sym, off = prov[instr.ra]
                    resolved = (sym, off + instr.imm)
                if resolved is not None:
                    prov[reg] = resolved
                    changed = True
        self._provenance = prov

        # Region pointers at unknown offsets: a register whose every
        # definition keeps it inside one data object — region roots
        # (``LA sym``, copies of resolved registers), self-translations
        # (``AI r, r, imm``; LU/STU base updates), and index arithmetic
        # adding an arbitrary value to a pointer already known to be in
        # the object (``A rd, ptr, idx``). The last rule is the
        # Bulldog-style type-safety assumption: a pointer derived from an
        # array stays within that array. Computed to a fixed point so
        # pointer-of-pointer chains resolve.
        roaming: Dict[Reg, str] = {}
        defs_by_reg: Dict[Reg, List[Instr]] = {}
        for instr in self.fn.instructions():
            for reg in instr.defs():
                defs_by_reg.setdefault(reg, []).append(instr)

        def region_of(reg: Optional[Reg]) -> Optional[str]:
            if reg is None:
                return None
            if reg in prov:
                return prov[reg][0]
            return roaming.get(reg)

        changed = True
        while changed:
            changed = False
            for reg, defs in defs_by_reg.items():
                if reg in prov or reg in roaming or reg in self.fn.params:
                    continue
                root_symbol: Optional[str] = None
                ok = True
                for instr in defs:
                    symbol: Optional[str] = None
                    if instr.opcode == "LA" and instr.rd == reg:
                        symbol = instr.symbol
                    elif instr.opcode == "AI" and instr.rd == reg and instr.ra == reg:
                        continue  # self-translation
                    elif (
                        instr.opcode in ("LU", "STU")
                        and instr.base == reg
                        and instr.rd != reg
                    ):
                        continue  # base update is a self-translation
                    elif instr.opcode == "LR" and instr.rd == reg:
                        symbol = region_of(instr.ra)
                    elif instr.opcode == "A" and instr.rd == reg:
                        ra_sym = region_of(instr.ra)
                        rb_sym = region_of(instr.rb)
                        if (ra_sym is None) == (rb_sym is None):
                            ok = False  # zero or two pointer operands
                            break
                        symbol = ra_sym or rb_sym
                    else:
                        ok = False
                        break
                    if symbol is None:
                        ok = False
                        break
                    if root_symbol is None:
                        root_symbol = symbol
                    elif root_symbol != symbol:
                        ok = False
                        break
                if ok and root_symbol is not None:
                    roaming[reg] = root_symbol
                    changed = True
        self._roaming = roaming

    # -- queries ---------------------------------------------------------

    def is_single_def(self, reg: Reg) -> bool:
        return self._def_counts.get(reg, 0) == 1 and reg in self._single_defs

    def single_def_of(self, reg: Reg) -> Optional[Instr]:
        """The unique defining instruction of ``reg``, if there is one."""
        return self._single_defs.get(reg) if self.is_single_def(reg) else None

    def memref(self, instr: Instr) -> MemRef:
        """The abstract reference of a load or store."""
        if not instr.is_memory:
            raise ValueError(f"not a memory instruction: {instr}")
        base = instr.base
        single = self.is_single_def(base)
        prov = self._provenance.get(base) if single else None
        if prov is not None:
            return MemRef(base, instr.disp, prov[0], prov[1], True)
        roaming = self._roaming.get(base)
        if roaming is not None:
            return MemRef(base, instr.disp, roaming, None, False)
        return MemRef(base, instr.disp, None, 0, single)

    def may_alias(self, a: MemRef, b: MemRef) -> bool:
        """Conservative may-alias between two references."""
        if a.resolved and b.resolved:
            if a.symbol != b.symbol:
                return False
            addr_a, addr_b = a.addr_in_symbol, b.addr_in_symbol
            if addr_a is None or addr_b is None:
                return True  # same object, at least one unknown offset
            return abs(addr_a - addr_b) < WORD
        if a.resolved != b.resolved:
            # One side is a known data object; an unresolved reference may
            # still point anywhere, including into that object.
            return True
        # Both unresolved: the same-base displacement rule.
        if a.base == b.base and a.single_def_base and b.single_def_base:
            return abs(a.disp - b.disp) < WORD
        return True

    def instr_may_alias(self, x: Instr, y: Instr) -> bool:
        return self.may_alias(self.memref(x), self.memref(y))

    def is_volatile_ref(self, instr: Instr) -> bool:
        """Volatile if flagged on the instruction or targeting volatile data."""
        if instr.is_volatile:
            return True
        if self.module is None or not instr.is_memory:
            return False
        ref = self.memref(instr)
        if ref.symbol is not None:
            obj = self.module.data.get(ref.symbol)
            return obj is not None and obj.volatile
        return False

    def provably_safe(self, instr: Instr) -> bool:
        """True when the access provably stays inside a known data object.

        This is the paper's condition 5(a): the base register holds "the
        address constant of an external variable of sufficient size", so
        executing the access speculatively can never fault.
        """
        if self.module is None:
            return False
        ref = self.memref(instr)
        if ref.symbol is None:
            return False
        obj = self.module.data.get(ref.symbol)
        if obj is None:
            return False
        addr = ref.addr_in_symbol
        if addr is None:
            return False  # inside the object, but at an unknown offset
        return 0 <= addr and addr + WORD <= obj.size
