"""Single-entry single-exit groups of consecutive blocks.

The paper's unspeculation operates on "(groups of) instructions", where a
group is "possibly a number of basic blocks with a single entry and exit —
single exit loops and nested if-then-else-endif statements are examples".
After the reverse-postorder re-layout (step 1 of the algorithm) such
constructs occupy consecutive layout positions, so we model a group as a
maximal consecutive run of blocks with:

- external control entering only at the first block, and
- every edge leaving the run landing on the block immediately following
  it in layout (and no RET inside).

Such a run can be cut out of the layout and dropped onto a branch edge as
a unit.
"""

from typing import List, Optional, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


def is_sese_run(fn: Function, start: int, end: int) -> bool:
    """True if blocks[start..end] form a single-entry single-exit run."""
    if start < 0 or end >= len(fn.blocks) - 1 or start > end:
        # The run must be followed by a block (the single exit target).
        return False
    run = fn.blocks[start : end + 1]
    run_labels = {bb.label for bb in run}
    follow = fn.blocks[end + 1]
    preds = fn.predecessor_map()

    for k, bb in enumerate(run):
        # No RET inside a movable group.
        term = bb.terminator
        if term is not None and term.is_return:
            return False
        # Entry only at the first block.
        if k > 0:
            for p in preds[bb.label]:
                if p.label not in run_labels:
                    return False
        # Exits only to the follow block.
        for succ in fn.successors(bb):
            if succ.label not in run_labels and succ is not follow:
                return False
    return True


def consecutive_sese_groups(fn: Function, end: int) -> List[Tuple[int, int]]:
    """All SESE runs ending exactly at layout index ``end``.

    Returned smallest-first: ``[(end, end), (end-1, end), ...]`` filtered
    to valid runs. Unspeculation tries the smallest movable unit first.
    """
    groups: List[Tuple[int, int]] = []
    for start in range(end, -1, -1):
        if is_sese_run(fn, start, end):
            groups.append((start, end))
    return groups


def run_instructions(fn: Function, start: int, end: int):
    """All instructions in blocks[start..end]."""
    for bb in fn.blocks[start : end + 1]:
        yield from bb.instrs
