"""Dataflow and structural analyses over the IR.

These are the substrate analyses every pass in the paper relies on:
reverse-postorder enumeration (unspeculation step 1, PDF re-ordering),
dominators/postdominators, liveness (unspeculation's dead-register
condition, renaming), natural loops (load/store motion, pipelining),
single-entry/single-exit regions (unspeculation's "groups"), memory
disambiguation (the Bulldog-style reference analysis) and dependence
DAGs (scheduling).
"""

from repro.analysis.cfg import (
    depth_first_order,
    postorder,
    reachable_blocks,
    reverse_postorder,
)
from repro.analysis.dominators import Dominators, compute_dominators, compute_postdominators
from repro.analysis.liveness import Liveness, compute_liveness, live_after_instr
from repro.analysis.loops import Loop, find_natural_loops
from repro.analysis.regions import consecutive_sese_groups
from repro.analysis.alias import MemoryModel, MemRef
from repro.analysis.dependence import DependenceDAG, build_dag

__all__ = [
    "DependenceDAG",
    "Dominators",
    "Liveness",
    "Loop",
    "MemRef",
    "MemoryModel",
    "build_dag",
    "compute_dominators",
    "compute_liveness",
    "compute_postdominators",
    "consecutive_sese_groups",
    "depth_first_order",
    "find_natural_loops",
    "live_after_instr",
    "postorder",
    "reachable_blocks",
    "reverse_postorder",
]
