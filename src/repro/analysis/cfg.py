"""CFG traversal orders.

The paper uses two enumerations explicitly:

- *reverse post-order* for unspeculation's physical block re-ordering
  (step 1 of the algorithm), which lays SESE constructs out consecutively;
- a *most-frequent-successor-first depth-first order* for PDF basic block
  re-ordering, which straightens the hot path.
"""

from typing import Callable, Dict, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


def reachable_blocks(fn: Function) -> Set[str]:
    """Labels of blocks reachable from the entry."""
    seen: Set[str] = set()
    stack = [fn.entry]
    while stack:
        bb = stack.pop()
        if bb.label in seen:
            continue
        seen.add(bb.label)
        stack.extend(fn.successors(bb))
    return seen


def postorder(fn: Function) -> List[BasicBlock]:
    """Postorder over reachable blocks (iterative, deterministic)."""
    seen: Set[str] = set()
    order: List[BasicBlock] = []
    # Stack holds (block, successor iterator index) frames.
    stack = [(fn.entry, 0)]
    seen.add(fn.entry.label)
    succs_cache: Dict[str, List[BasicBlock]] = {}
    while stack:
        block, idx = stack[-1]
        succs = succs_cache.get(block.label)
        if succs is None:
            succs = fn.successors(block)
            succs_cache[block.label] = succs
        if idx < len(succs):
            stack[-1] = (block, idx + 1)
            nxt = succs[idx]
            if nxt.label not in seen:
                seen.add(nxt.label)
                stack.append((nxt, 0))
        else:
            order.append(block)
            stack.pop()
    return order


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Reverse postorder over reachable blocks (entry first)."""
    return list(reversed(postorder(fn)))


def depth_first_order(
    fn: Function,
    successor_priority: Optional[Callable[[BasicBlock, BasicBlock], float]] = None,
) -> List[BasicBlock]:
    """Pre-order DFS; at each block the highest-priority successor is
    visited first (PDF re-ordering passes edge frequencies as priority).

    Without a priority function the taken target is preferred, matching
    the paper's default static ordering.
    """
    seen: Set[str] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [block]
        while stack:
            bb = stack.pop()
            if bb.label in seen:
                continue
            seen.add(bb.label)
            order.append(bb)
            succs = [s for s in fn.successors(bb) if s.label not in seen]
            if successor_priority is not None:
                succs.sort(key=lambda s: successor_priority(bb, s))
            else:
                succs.reverse()
            # Highest priority must be popped first.
            stack.extend(succs)

    visit(fn.entry)
    # Unreachable blocks keep their relative order at the end so that the
    # re-ordering passes do not lose them before unreachable-code removal.
    for bb in fn.blocks:
        if bb.label not in seen:
            seen.add(bb.label)
            order.append(bb)
    return order
