"""Natural loop discovery.

Loads/stores move out of loops, software pipelining compacts loops, and
profiling counters migrate to loop preheaders/exits — all of it starts
from natural loops (back edges whose target dominates their source).
"""

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import make_b
from repro.analysis.dominators import compute_dominators


@dataclass
class Loop:
    """One natural loop: header plus body labels (header included)."""

    header: str
    body: Set[str] = field(default_factory=set)
    back_edges: List[Tuple[str, str]] = field(default_factory=list)
    parent: Optional["Loop"] = None

    @property
    def depth(self) -> int:
        depth = 1
        loop = self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def contains(self, label: str) -> bool:
        return label in self.body

    def blocks(self, fn: Function) -> List[BasicBlock]:
        """Body blocks in layout order."""
        return [bb for bb in fn.blocks if bb.label in self.body]

    def exit_edges(self, fn: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
        """Edges leaving the loop body."""
        edges = []
        for bb in self.blocks(fn):
            for succ in fn.successors(bb):
                if succ.label not in self.body:
                    edges.append((bb, succ))
        return edges

    def entry_edges(self, fn: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
        """Edges entering the header from outside the loop."""
        edges = []
        for bb in fn.predecessors(fn.block(self.header)):
            if bb.label not in self.body:
                edges.append((bb, fn.block(self.header)))
        return edges

    def __repr__(self) -> str:
        return f"<Loop header={self.header} blocks={len(self.body)}>"


def find_natural_loops(fn: Function) -> List[Loop]:
    """All natural loops, innermost first; parent links set by inclusion."""
    dom = compute_dominators(fn)
    preds = fn.predecessor_map()

    # Collect back edges: tail -> header where header dominates tail.
    raw: dict = {}
    for bb in fn.blocks:
        for succ in fn.successors(bb):
            if dom.dominates(succ.label, bb.label):
                raw.setdefault(succ.label, []).append(bb.label)

    loops: List[Loop] = []
    for header, tails in raw.items():
        body: Set[str] = {header}
        stack = list(tails)
        while stack:
            label = stack.pop()
            if label in body:
                continue
            body.add(label)
            for p in preds.get(label, []):
                stack.append(p.label)
        loops.append(
            Loop(
                header=header,
                body=body,
                back_edges=[(t, header) for t in tails],
            )
        )

    # Nesting: a loop's parent is the smallest strictly containing loop.
    loops.sort(key=lambda lp: len(lp.body))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1 :]:
            if inner.header in outer.body and inner.body <= outer.body and inner is not outer:
                inner.parent = outer
                break
    return loops


def redirect_fallthrough(fn: Function, pred: BasicBlock, new_dst: str) -> None:
    """Make the fallthrough edge leaving ``pred`` go to ``new_dst`` instead.

    If ``pred`` has no terminator an explicit branch is appended. If it
    ends with a conditional branch, a trampoline block is inserted
    immediately after it in layout so the untaken path reaches ``new_dst``.
    Straightening later removes any redundant branches this creates.
    """
    term = pred.terminator
    if term is None:
        pred.append(make_b(new_dst))
        return
    if not pred.falls_through:
        raise ValueError(f"{pred.label} has no fallthrough edge")
    tramp = BasicBlock(fn.new_label(f"ft.{pred.label}"))
    tramp.append(make_b(new_dst))
    fn.blocks.insert(fn.block_index(pred) + 1, tramp)


def get_or_create_preheader(fn: Function, loop: Loop) -> BasicBlock:
    """A block that is the unique out-of-loop predecessor of the header.

    Reuses an existing block when the header has exactly one external
    predecessor whose only successor is the header. Otherwise a fresh
    preheader ending in ``B header`` is appended to the function and all
    entry edges are redirected to it (uniform and layout-safe; the
    straightening pass later removes redundant branches).
    """
    header = fn.block(loop.header)
    entries = loop.entry_edges(fn)
    if len(entries) == 1:
        pred = entries[0][0]
        succs = fn.successors(pred)
        if len(succs) == 1 and succs[0] is header:
            return pred

    pre = BasicBlock(fn.new_label(f"pre.{loop.header}"))
    pre.append(make_b(header.label))
    fn.blocks.append(pre)
    for pred, _ in entries:
        term = pred.terminator
        if term is not None and term.target == header.label:
            term.target = pre.label
        if fn.layout_successor(pred) is header and pred.falls_through:
            redirect_fallthrough(fn, pred, pre.label)
    return pre


def split_edge(fn: Function, src: BasicBlock, dst: BasicBlock) -> BasicBlock:
    """Insert a new block on the edge src->dst and return it.

    The new block ends with ``B dst`` (or falls through for a fallthrough
    split), so callers must insert code *before* its terminator.
    """
    mid = BasicBlock(fn.new_label(f"edge.{src.label}.{dst.label}"))
    term = src.terminator
    if term is not None and term.target == dst.label:
        # Branch edge: retarget the branch and append the trampoline at the
        # end of the function where it cannot disturb any fallthrough.
        term.target = mid.label
        mid.append(make_b(dst.label))
        fn.blocks.append(mid)
    else:
        if fn.layout_successor(src) is not dst or not src.falls_through:
            raise ValueError(f"no edge {src.label} -> {dst.label}")
        # Fallthrough edge: slot the new block between the two.
        fn.blocks.insert(fn.block_index(dst), mid)
    return mid


def insert_before_terminator(block: BasicBlock, instr) -> None:
    """Insert ``instr`` at the end of ``block`` but before its terminator."""
    if block.terminator is not None:
        block.insert(len(block.instrs) - 1, instr)
    else:
        block.append(instr)
