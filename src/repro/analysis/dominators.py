"""Dominator and postdominator analysis (iterative set-based).

Functions in this system are small (tens of blocks), so the simple
O(n^2) iterative dataflow formulation is plenty fast and easy to trust.
"""

from typing import Dict, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.analysis.cfg import reachable_blocks, reverse_postorder


class Dominators:
    """Dominator sets plus convenience queries, keyed by block label."""

    def __init__(self, dom: Dict[str, Set[str]], entry_label: str):
        self._dom = dom
        self.entry_label = entry_label

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b``."""
        return a in self._dom.get(b, set())

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def dominators_of(self, label: str) -> Set[str]:
        return set(self._dom.get(label, set()))

    def immediate_dominator(self, label: str) -> Optional[str]:
        """The unique closest strict dominator, or None for the entry."""
        strict = self._dom.get(label, set()) - {label}
        # The idom is the strict dominator dominated by all other strict
        # dominators.
        for cand in strict:
            if all(self.dominates(other, cand) for other in strict):
                return cand
        return None


def _iterative_dominators(
    nodes: List[BasicBlock],
    entry: BasicBlock,
    preds_of,
) -> Dict[str, Set[str]]:
    labels = [bb.label for bb in nodes]
    all_labels = set(labels)
    dom: Dict[str, Set[str]] = {label: set(all_labels) for label in labels}
    dom[entry.label] = {entry.label}
    changed = True
    while changed:
        changed = False
        for bb in nodes:
            if bb.label == entry.label:
                continue
            preds = [p for p in preds_of(bb) if p.label in all_labels]
            if preds:
                new = set(all_labels)
                for p in preds:
                    new &= dom[p.label]
            else:
                new = set()
            new.add(bb.label)
            if new != dom[bb.label]:
                dom[bb.label] = new
                changed = True
    return dom


def compute_dominators(fn: Function) -> Dominators:
    """Dominator sets for all reachable blocks."""
    nodes = reverse_postorder(fn)
    preds = fn.predecessor_map()
    reachable = reachable_blocks(fn)

    def preds_of(bb: BasicBlock) -> List[BasicBlock]:
        return [p for p in preds[bb.label] if p.label in reachable]

    dom = _iterative_dominators(nodes, fn.entry, preds_of)
    return Dominators(dom, fn.entry.label)


def compute_postdominators(fn: Function) -> Dominators:
    """Postdominator sets, using a virtual exit joining all RET blocks.

    Blocks that cannot reach any RET (infinite loops) postdominate
    nothing useful; they are given empty sets.
    """
    reachable = reachable_blocks(fn)
    nodes = [bb for bb in fn.blocks if bb.label in reachable]
    exits = [bb for bb in nodes if bb.terminator is not None and bb.terminator.is_return]
    if not exits:
        return Dominators({bb.label: set() for bb in nodes}, "<none>")

    # Reverse CFG with a virtual exit.
    succs = {bb.label: [s for s in fn.successors(bb) if s.label in reachable] for bb in nodes}
    virtual = "<exit>"
    rev_preds: Dict[str, List[str]] = {bb.label: [] for bb in nodes}
    rev_preds[virtual] = [bb.label for bb in exits]
    for bb in nodes:
        for s in succs[bb.label]:
            rev_preds.setdefault(bb.label, [])
    # rev edge: b -> p for each CFG edge p -> b; i.e. preds in reverse CFG
    # of node n are its CFG successors (plus virtual for RET blocks).
    label_to_block = {bb.label: bb for bb in nodes}

    all_labels = {bb.label for bb in nodes} | {virtual}
    pdom: Dict[str, Set[str]] = {label: set(all_labels) for label in all_labels}
    pdom[virtual] = {virtual}
    changed = True
    while changed:
        changed = False
        for bb in nodes:
            label = bb.label
            rsuccs = [s.label for s in succs[label]]
            if bb.terminator is not None and bb.terminator.is_return:
                rsuccs.append(virtual)
            if rsuccs:
                new = set(all_labels)
                for s in rsuccs:
                    new &= pdom[s]
            else:
                new = set()
            new.add(label)
            if new != pdom[label]:
                pdom[label] = new
                changed = True
    pdom.pop(virtual, None)
    for label in pdom:
        pdom[label].discard(virtual)
    return Dominators(pdom, virtual)
