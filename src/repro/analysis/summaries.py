"""Inter-procedural call-effect summaries.

The paper's load/store motion special-cases known I/O library procedures
and notes: "This strategy can be extended to general procedures, using
an inter-procedural analysis tool (that has access to library routines
as well) to extract the relevant information about accesses to memory
locations." This module is that tool for our IR:

- for every module function, compute whether it (transitively) reads or
  writes memory, performs I/O, and — when all its references resolve —
  *which data symbols* it can touch;
- a reference through an unresolved pointer (a parameter, a loaded
  value) makes the touched-symbol set unknown (``None``);
- library callees contribute their declared effect summaries; calls to
  unknown names poison the summary.

The fixpoint starts optimistic (everything pure) and grows effects
monotonically, so mutual recursion converges to a sound result.

Consumers: the dependence DAG lets memory operations cross calls to
provably memory-silent functions, and loop load/store motion keeps a
cached location in its register across calls that provably cannot touch
that location's symbol.
"""

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.ir.module import Module
from repro.machine.libcalls import call_effects


@dataclass
class FunctionSummary:
    """Transitive memory/I-O behaviour of one function."""

    reads_memory: bool = False
    writes_memory: bool = False
    does_io: bool = False
    calls_unknown: bool = False
    #: Data symbols the function may touch; None = unknown (any memory).
    touched_symbols: Optional[FrozenSet[str]] = frozenset()

    @property
    def touches_memory(self) -> bool:
        return self.reads_memory or self.writes_memory

    @property
    def is_memory_silent(self) -> bool:
        """No memory traffic, no I/O, nothing unknown."""
        return not (
            self.touches_memory or self.does_io or self.calls_unknown
        )

    def may_touch_symbol(self, symbol: Optional[str]) -> bool:
        """Could the function access the given data symbol?

        ``symbol=None`` means "an unresolved location": anything that
        touches memory at all may touch it.
        """
        if not self.touches_memory and not self.calls_unknown:
            return False
        if self.calls_unknown:
            return True
        if symbol is None or self.touched_symbols is None:
            return True
        return symbol in self.touched_symbols

    def _merge(self, other: "FunctionSummary") -> "FunctionSummary":
        if self.touched_symbols is None or other.touched_symbols is None:
            symbols = None
        else:
            symbols = self.touched_symbols | other.touched_symbols
        return FunctionSummary(
            reads_memory=self.reads_memory or other.reads_memory,
            writes_memory=self.writes_memory or other.writes_memory,
            does_io=self.does_io or other.does_io,
            calls_unknown=self.calls_unknown or other.calls_unknown,
            touched_symbols=symbols,
        )

    def __eq__(self, other):
        return (
            self.reads_memory == other.reads_memory
            and self.writes_memory == other.writes_memory
            and self.does_io == other.does_io
            and self.calls_unknown == other.calls_unknown
            and self.touched_symbols == other.touched_symbols
        )


def _library_summary(symbol: str) -> Optional[FunctionSummary]:
    effects = call_effects(symbol)
    if effects is None:
        return None
    touched: Optional[FrozenSet[str]]
    if effects.reads_memory or effects.writes_memory:
        # Memory reachable through pointer arguments: unknown symbols.
        touched = None
    else:
        touched = frozenset()
    return FunctionSummary(
        reads_memory=effects.reads_memory,
        writes_memory=effects.writes_memory,
        does_io=effects.is_io,
        calls_unknown=False,
        touched_symbols=touched,
    )


def compute_summaries(module: Module) -> Dict[str, FunctionSummary]:
    """Fixpoint summaries for every function in ``module``."""
    from repro.analysis.alias import MemoryModel

    summaries: Dict[str, FunctionSummary] = {
        name: FunctionSummary() for name in module.functions
    }
    # Per-function local facts are loop-invariant: precompute them.
    local: Dict[str, FunctionSummary] = {}
    callees: Dict[str, list] = {}
    for name, fn in module.functions.items():
        memory = MemoryModel(fn, module)
        summary = FunctionSummary()
        calls = []
        for instr in fn.instructions():
            if instr.is_memory:
                ref = memory.memref(instr)
                symbols = (
                    frozenset([ref.symbol]) if ref.symbol is not None else None
                )
                summary = summary._merge(
                    FunctionSummary(
                        reads_memory=instr.is_load,
                        writes_memory=instr.is_store,
                        touched_symbols=symbols,
                    )
                )
            elif instr.is_call:
                calls.append(instr.symbol)
        local[name] = summary
        callees[name] = calls

    changed = True
    while changed:
        changed = False
        for name in module.functions:
            merged = local[name]
            for callee in callees[name]:
                if callee in summaries:
                    merged = merged._merge(summaries[callee])
                else:
                    lib = _library_summary(callee)
                    if lib is None:
                        merged = merged._merge(
                            FunctionSummary(calls_unknown=True, touched_symbols=None)
                        )
                    else:
                        merged = merged._merge(lib)
            if merged != summaries[name]:
                summaries[name] = merged
                changed = True
    return summaries
