"""Dependence DAG construction for instruction scheduling.

Builds the data/memory/control dependence graph over a straight-line
instruction sequence (a basic block, or a linearised region). Edge
latencies come from the machine model so list scheduling can honour
load-use and compare-to-branch distances.
"""

from typing import Dict, List, Optional, Set

from repro.ir.instructions import Instr
from repro.analysis.alias import MemoryModel
from repro.machine.libcalls import call_effects
from repro.machine.model import MachineModel, RS6000


class DependenceDAG:
    """Dependences over ``instrs``; node ids are list indices."""

    def __init__(self, instrs: List[Instr]):
        self.instrs = instrs
        n = len(instrs)
        self.succs: List[Dict[int, int]] = [dict() for _ in range(n)]
        self.preds: List[Set[int]] = [set() for _ in range(n)]

    def add_edge(self, src: int, dst: int, latency: int) -> None:
        if src == dst:
            return
        current = self.succs[src].get(dst)
        if current is None or latency > current:
            self.succs[src][dst] = latency
        self.preds[dst].add(src)

    def critical_heights(self) -> List[int]:
        """Longest path (by latency) from each node to any sink."""
        n = len(self.instrs)
        heights = [0] * n
        for i in range(n - 1, -1, -1):
            best = 0
            for j, lat in self.succs[i].items():
                cand = lat + heights[j]
                if cand > best:
                    best = cand
            heights[i] = best
        return heights

    def topological_check(self) -> bool:
        """Edges must all point forward (construction guarantees it)."""
        return all(all(j > i for j in self.succs[i]) for i in range(len(self.instrs)))


def _producer_latency(producer: Instr, consumer: Instr, model: MachineModel) -> int:
    if producer.is_load:
        return model.load_latency
    if producer.is_compare and consumer.is_cond_branch:
        return model.cmp_to_branch
    if producer.opcode == "MTCTR" and consumer.opcode == "BCT":
        return model.ctr_to_branch
    return model.alu_latency


def _is_memory_barrier(instr: Instr, memory: Optional[MemoryModel] = None) -> bool:
    """Calls whose memory behaviour we cannot bound order all memory ops."""
    if not instr.is_call:
        return False
    effects = call_effects(instr.symbol)
    if effects is not None:
        return effects.reads_memory or effects.writes_memory or effects.is_io
    # Internal callee: consult the inter-procedural summary; a provably
    # memory-silent function does not order memory operations.
    if memory is not None:
        summary = memory.summaries.get(instr.symbol)
        if summary is not None and summary.is_memory_silent:
            return False
    return True  # unknown callee: full barrier


def build_dag(
    instrs: List[Instr],
    memory: Optional[MemoryModel] = None,
    model: MachineModel = RS6000,
) -> DependenceDAG:
    """Dependence DAG over ``instrs`` (program order preserved by edges)."""
    dag = DependenceDAG(instrs)
    last_def: Dict = {}
    uses_since_def: Dict = {}
    open_stores: List[int] = []
    open_loads: List[int] = []
    last_barrier: Optional[int] = None
    last_ordered: Optional[int] = None  # calls/volatile: totally ordered

    def may_alias(i: int, j: int) -> bool:
        a, b = instrs[i], instrs[j]
        if memory is None:
            return True
        return memory.instr_may_alias(a, b)

    for i, instr in enumerate(instrs):
        # Register dependences.
        for reg in instr.uses():
            if reg in last_def:
                src = last_def[reg]
                dag.add_edge(src, i, _producer_latency(instrs[src], instr, model))
        for reg in instr.defs():
            if reg in last_def:
                dag.add_edge(last_def[reg], i, 1)  # WAW
            for use_idx in uses_since_def.get(reg, ()):
                dag.add_edge(use_idx, i, 0)  # WAR
        for reg in instr.uses():
            uses_since_def.setdefault(reg, []).append(i)
        for reg in instr.defs():
            last_def[reg] = i
            uses_since_def[reg] = []

        # Memory and side-effect ordering.
        volatile = instr.is_volatile or (
            memory is not None and instr.is_memory and memory.is_volatile_ref(instr)
        )
        barrier = _is_memory_barrier(instr, memory)
        io_like = barrier or volatile or (instr.is_call and call_effects(instr.symbol) is None)

        if instr.is_store or barrier:
            for j in open_loads:
                if barrier or may_alias(j, i):
                    dag.add_edge(j, i, 0)  # WAR on memory
            for j in open_stores:
                if barrier or may_alias(j, i):
                    dag.add_edge(j, i, 1)  # WAW on memory
        if instr.is_load or barrier:
            for j in open_stores:
                if barrier or may_alias(j, i):
                    dag.add_edge(j, i, 1)  # RAW through memory

        if last_barrier is not None and (instr.is_memory or instr.is_call):
            dag.add_edge(last_barrier, i, 1)
        if io_like and last_ordered is not None:
            dag.add_edge(last_ordered, i, 1)

        if instr.is_store:
            open_stores.append(i)
        if instr.is_load:
            open_loads.append(i)
        if barrier:
            # Ops after the barrier order against it via last_barrier; the
            # open lists restart (their members already got edges to i).
            last_barrier = i
            open_stores = []
            open_loads = []
        if io_like:
            last_ordered = i

        # Control: a terminator stays after everything before it.
        if instr.is_terminator:
            for j in range(i):
                if i not in dag.succs[j]:
                    latency = _producer_latency(instrs[j], instr, model)
                    needed = (
                        latency
                        if any(reg in instrs[j].defs() for reg in instr.uses())
                        else 0
                    )
                    dag.add_edge(j, i, needed)
    return dag
