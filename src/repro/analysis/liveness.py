"""Register liveness (backward dataflow).

Unspeculation's key condition is "the destination registers of I are all
dead in one of the targets of the conditional branch, but not on the
other"; renaming needs live ranges at loop exits; prolog tailoring needs
first-set/last-use information. All of these reduce to block-level
live-in/live-out sets plus an in-block backward walk.
"""

from typing import Dict, Iterable, List, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instr
from repro.ir.operands import Reg


class Liveness:
    """Live-in/live-out register sets per block label."""

    def __init__(self, live_in: Dict[str, Set[Reg]], live_out: Dict[str, Set[Reg]]):
        self.live_in = live_in
        self.live_out = live_out

    def live_at_block_entry(self, label: str) -> Set[Reg]:
        return set(self.live_in.get(label, set()))

    def live_at_block_exit(self, label: str) -> Set[Reg]:
        return set(self.live_out.get(label, set()))

    def live_on_edge(self, fn: Function, src: BasicBlock, dst: BasicBlock) -> Set[Reg]:
        """Registers live along the edge src->dst.

        With block-level precision this is the live-in of the destination;
        it is what the paper's renaming uses when inserting copies "at that
        exit edge before live range renaming".
        """
        return self.live_at_block_entry(dst.label)


def block_use_def(block: BasicBlock) -> Tuple[Set[Reg], Set[Reg]]:
    """(upward-exposed uses, defs) of a block."""
    uses: Set[Reg] = set()
    defs: Set[Reg] = set()
    for instr in block.instrs:
        for reg in instr.uses():
            if reg not in defs:
                uses.add(reg)
        defs.update(instr.defs())
    return uses, defs


def compute_liveness(fn: Function) -> Liveness:
    """Iterative backward liveness over the CFG."""
    use: Dict[str, Set[Reg]] = {}
    define: Dict[str, Set[Reg]] = {}
    for bb in fn.blocks:
        use[bb.label], define[bb.label] = block_use_def(bb)

    live_in: Dict[str, Set[Reg]] = {bb.label: set() for bb in fn.blocks}
    live_out: Dict[str, Set[Reg]] = {bb.label: set() for bb in fn.blocks}
    succs = {bb.label: [s.label for s in fn.successors(bb)] for bb in fn.blocks}

    changed = True
    while changed:
        changed = False
        for bb in reversed(fn.blocks):
            label = bb.label
            out: Set[Reg] = set()
            for s in succs[label]:
                out |= live_in[s]
            inn = use[label] | (out - define[label])
            if out != live_out[label] or inn != live_in[label]:
                live_out[label] = out
                live_in[label] = inn
                changed = True
    return Liveness(live_in, live_out)


def live_after_instr(
    block: BasicBlock, index: int, live_out: Set[Reg]
) -> Set[Reg]:
    """Registers live immediately after ``block.instrs[index]``.

    ``live_out`` is the block's live-out set; the walk runs backward from
    the end of the block to the requested point.
    """
    live = set(live_out)
    for i in range(len(block.instrs) - 1, index, -1):
        instr = block.instrs[i]
        live -= set(instr.defs())
        live |= set(instr.uses())
    return live


def liveness_per_instr(
    block: BasicBlock, live_out: Set[Reg]
) -> List[Set[Reg]]:
    """live-after set for each instruction position in ``block``."""
    result: List[Set[Reg]] = [set() for _ in block.instrs]
    live = set(live_out)
    for i in range(len(block.instrs) - 1, -1, -1):
        result[i] = set(live)
        instr = block.instrs[i]
        live -= set(instr.defs())
        live |= set(instr.uses())
    return result


def defs_in(instrs: Iterable[Instr]) -> Set[Reg]:
    regs: Set[Reg] = set()
    for instr in instrs:
        regs.update(instr.defs())
    return regs


def uses_in(instrs: Iterable[Instr]) -> Set[Reg]:
    regs: Set[Reg] = set()
    for instr in instrs:
        regs.update(instr.uses())
    return regs
