"""Profile-guided branch reversal.

"Any conditional branches that are taken most of the time are reversed,
so they are not taken most of the time": ``BT CL.1`` (mostly taken)
becomes ``BF CL.2`` over a new trampoline ``B CL.1``, and basic block
expansion then copies code from ``CL.1`` in place of the trampoline's
unconditional branch, removing it from the hot trace entirely.
"""

from typing import List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import make_b
from repro.transforms.bb_expansion import BasicBlockExpansion
from repro.transforms.pass_manager import Pass, PassContext


class BranchReversal(Pass):
    """Reverse mostly-taken conditional branches, then expand."""

    name = "pdf-branch-reversal"

    def __init__(self, threshold: float = 0.7, expand: bool = True):
        self.threshold = threshold
        self.expand = expand

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        if ctx.edge_profile is None:
            return False
        changed = False
        for bb in list(fn.blocks):
            term = bb.terminator
            if term is None or term.opcode not in ("BT", "BF"):
                continue
            succs = fn.successors(bb)
            if len(succs) != 2:
                continue
            taken_label = term.target
            fall = succs[1]
            taken = ctx.edge_count(fn.name, bb.label, taken_label) or 0
            fallc = ctx.edge_count(fn.name, bb.label, fall.label) or 0
            total = taken + fallc
            if total == 0 or taken / total < self.threshold:
                continue
            # A backward branch that closes a loop must stay (reversing it
            # would put the loop body behind a taken branch every
            # iteration); the paper's example reverses forward branches.
            if fn.block_index(fn.block(taken_label)) <= fn.block_index(bb):
                continue

            # BT L (mostly taken), fallthrough F  ==>
            #   BF F; <tramp: B L>   with F now the taken target.
            term.opcode = "BF" if term.opcode == "BT" else "BT"
            term.target = fall.label
            tramp = BasicBlock(fn.new_label(f"rev.{bb.label}"))
            tramp.append(make_b(taken_label))
            fn.blocks.insert(fn.block_index(bb) + 1, tramp)
            changed = True
            ctx.bump("pdf.branches-reversed")

        if changed and self.expand:
            BasicBlockExpansion().run_on_function(fn, ctx)
        return changed
