"""Counting-point selection and instrumentation.

"We use a constraint-propagation algorithm ... for finding (and possibly
creating) the basic blocks for counting code insertion. The idea is to
have just enough counts, so that all the remaining edge and basic block
counts in the flow graph can be uniquely determined from the gathered
counts."

The propagation rules over the flow-conservation system are:

- a block whose incoming (or outgoing) edge counts are all known has a
  known count;
- a block with a known count and all-but-one incoming (outgoing) edge
  known determines the remaining edge.

Planning greedily adds counting blocks until propagation saturates; if
every block count is known but some edge remains ambiguous (parallel
join/branch webs), the edge is split with a dummy block which is then
counted ("it is sometimes necessary to create new (dummy) basic blocks
during PDF").

Instrumentation inserts real counting instructions. Outside loops each
counted block costs three instructions (load counter word, add one,
store back). For counted blocks inside loops, each counter is cached in
a register: the load happens in the loop preheader, the store on every
loop exit, and the block itself pays one ``AI`` — the optimisation the
paper demonstrates on the eqntott inner loop. All inserted instructions
are marked with ``attrs['counter']`` so no other pass moves, duplicates
or deletes them.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import make_alui, make_la, make_load, make_store
from repro.ir.module import Module
from repro.analysis.cfg import reachable_blocks, reverse_postorder
from repro.analysis.loops import (
    find_natural_loops,
    get_or_create_preheader,
    insert_before_terminator,
    split_edge,
)

#: Name of the per-module counter table data object.
COUNTS_SYMBOL = "__bbcounts"


@dataclass
class InstrumentationPlan:
    """Which blocks to count and which edges need dummy blocks."""

    #: function -> labels of blocks that receive counting code (dummy
    #: blocks are named after planning and included here).
    counted: Dict[str, List[str]] = field(default_factory=dict)
    #: function -> edges (src label, dst label) to split before counting.
    split_edges: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    #: (function, label) -> slot index in the counts table.
    slots: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def slot_count(self) -> int:
        return len(self.slots)

    def to_json(self) -> str:
        import json

        return json.dumps(
            {
                "counted": self.counted,
                "split_edges": {
                    fn: [list(edge) for edge in edges]
                    for fn, edges in self.split_edges.items()
                },
                "slots": [
                    [fn, label, slot] for (fn, label), slot in sorted(self.slots.items())
                ],
            },
            indent=1,
        )

    @classmethod
    def from_json(cls, text: str) -> "InstrumentationPlan":
        import json

        raw = json.loads(text)
        plan = cls()
        plan.counted = {fn: list(labels) for fn, labels in raw["counted"].items()}
        plan.split_edges = {
            fn: [tuple(edge) for edge in edges]
            for fn, edges in raw["split_edges"].items()
        }
        plan.slots = {(fn, label): slot for fn, label, slot in raw["slots"]}
        return plan


# --------------------------------------------------------------------------
# Propagation (shared by planning and numeric recovery)
# --------------------------------------------------------------------------


def _edges_of(fn: Function) -> List[Tuple[str, str]]:
    reachable = reachable_blocks(fn)
    return [
        (bb.label, succ.label)
        for bb in fn.blocks
        if bb.label in reachable
        for succ in fn.successors(bb)
        if succ.label in reachable
    ]


def propagate_known(
    fn: Function, known_blocks: Set[str]
) -> Tuple[Set[str], Set[Tuple[str, str]]]:
    """Close ``known_blocks`` under the flow-conservation rules.

    Returns (known block labels, known edges). Entry and exit blocks get
    no special treatment: the function-invocation count is known exactly
    when some counted block determines it.
    """
    edges = _edges_of(fn)
    reachable = reachable_blocks(fn)
    in_edges: Dict[str, List[Tuple[str, str]]] = {b: [] for b in reachable}
    out_edges: Dict[str, List[Tuple[str, str]]] = {b: [] for b in reachable}
    for e in edges:
        out_edges[e[0]].append(e)
        in_edges[e[1]].append(e)

    known_b = set(known_blocks) & reachable
    known_e: Set[Tuple[str, str]] = set()
    changed = True
    while changed:
        changed = False
        for b in reachable:
            ins, outs = in_edges[b], out_edges[b]
            if b not in known_b:
                if ins and all(e in known_e for e in ins):
                    known_b.add(b)
                    changed = True
                elif outs and all(e in known_e for e in outs):
                    known_b.add(b)
                    changed = True
            if b in known_b:
                for group in (ins, outs):
                    unknown = [e for e in group if e not in known_e]
                    if len(unknown) == 1:
                        known_e.add(unknown[0])
                        changed = True
    return known_b, known_e


# --------------------------------------------------------------------------
# Planning
# --------------------------------------------------------------------------


def _plan_function(fn: Function) -> Tuple[List[str], List[Tuple[str, str]]]:
    """(blocks to count, edges to split) for one function.

    Edge splitting is simulated on a clone so the real function is not
    modified during planning; the caller re-applies the same splits
    deterministically.
    """
    work = fn.clone()
    counted: List[str] = []
    split: List[Tuple[str, str]] = []
    # Map from clone dummy label to (src, dst) original edge.
    for _ in range(len(work.blocks) * 4 + 8):  # bounded fixpoint
        reachable = reachable_blocks(work)
        known_b, known_e = propagate_known(work, set(counted))
        edges = set(_edges_of(work))
        if known_b >= reachable and edges <= known_e:
            break
        unknown_blocks = [
            bb.label
            for bb in reverse_postorder(work)
            if bb.label not in known_b
        ]
        if unknown_blocks:
            # Prefer static predictions: count the block least likely to
            # be hot — the one at the greatest loop depth is the *worst*
            # choice, so pick minimal loop depth among unknowns.
            loops = find_natural_loops(work)

            def depth(label: str) -> int:
                return sum(1 for lp in loops if label in lp.body)

            unknown_blocks.sort(key=lambda lb: (depth(lb),))
            counted.append(unknown_blocks[0])
            continue
        # All block counts known, some edge ambiguous: split one.
        ambiguous = sorted(edges - known_e)
        src_label, dst_label = ambiguous[0]
        src = work.block(src_label)
        dst = work.block(dst_label)
        dummy = split_edge(work, src, dst)
        split.append((src_label, dst_label))
        counted.append(dummy.label)
    return counted, split


def plan_instrumentation(module: Module) -> InstrumentationPlan:
    """Plan counting points for every function in ``module``."""
    plan = InstrumentationPlan()
    slot = 0
    for name in sorted(module.functions):
        fn = module.functions[name]
        counted, split = _plan_function(fn)
        plan.counted[name] = counted
        plan.split_edges[name] = split
        for label in counted:
            plan.slots[(name, label)] = slot
            slot += 1
    return plan


# --------------------------------------------------------------------------
# Applying instrumentation
# --------------------------------------------------------------------------


def apply_edge_splits(module: Module, plan: InstrumentationPlan) -> Dict[Tuple[str, str, str], str]:
    """Split the planned edges; returns (fn, src, dst) -> dummy label.

    Label generation is deterministic (per-function counters), so the
    dummy labels match the ones produced during planning — "the flow
    graph is modified in the same way on both passes".
    """
    mapping: Dict[Tuple[str, str, str], str] = {}
    for name, edges in plan.split_edges.items():
        fn = module.functions[name]
        for src_label, dst_label in edges:
            dummy = split_edge(fn, fn.block(src_label), fn.block(dst_label))
            mapping[(name, src_label, dst_label)] = dummy.label
    return mapping


def apply_instrumentation(module: Module, plan: Optional[InstrumentationPlan] = None) -> InstrumentationPlan:
    """Insert counting code into ``module`` according to ``plan``.

    The module gains a ``__bbcounts`` data object with one word per
    counted block. Returns the plan (computing it first if not given).
    """
    if plan is None:
        plan = plan_instrumentation(module)
    apply_edge_splits(module, plan)
    if COUNTS_SYMBOL not in module.data:
        module.add_data(COUNTS_SYMBOL, max(4 * plan.slot_count, 4))

    for name in sorted(plan.counted):
        fn = module.functions[name]
        labels = plan.counted[name]
        if not labels:
            continue
        base = fn.new_vreg("gpr", include_callee_saved=True)
        la = make_la(base, COUNTS_SYMBOL)
        la.attrs["counter"] = True
        fn.entry.instrs.insert(0, la)

        loops = find_natural_loops(fn)
        cached: Dict[str, object] = {}  # label -> register cache
        for label in labels:
            slot = plan.slots[(name, label)]
            block = fn.block(label)
            loop = _innermost_loop_of(label, loops)
            if loop is None:
                tmp = fn.new_vreg("gpr", include_callee_saved=True)
                code = [
                    make_load(tmp, 4 * slot, base),
                    make_alui("AI", tmp, tmp, 1),
                    make_store(4 * slot, base, tmp),
                ]
                for instr in code:
                    instr.attrs["counter"] = True
                insert_at = len(block.instrs) - (1 if block.terminator else 0)
                block.instrs[insert_at:insert_at] = code
            else:
                # Register-cached counter: load in the preheader, one AI
                # in the block, store at every loop exit.
                reg = fn.new_vreg("gpr", include_callee_saved=True)
                pre = get_or_create_preheader(fn, loop)
                load = make_load(reg, 4 * slot, base)
                load.attrs["counter"] = True
                insert_before_terminator(pre, load)
                bump = make_alui("AI", reg, reg, 1)
                bump.attrs["counter"] = True
                block.instrs.insert(
                    len(block.instrs) - (1 if block.terminator else 0), bump
                )
                for src, dst in loop.exit_edges(fn):
                    edge_bb = split_edge(fn, src, dst)
                    store = make_store(4 * slot, base, reg)
                    store.attrs["counter"] = True
                    insert_before_terminator(edge_bb, store)
    return plan


def _innermost_loop_of(label: str, loops):
    best = None
    for loop in loops:
        if label in loop.body:
            if best is None or len(loop.body) < len(best.body):
                best = loop
    return best


def instrumentation_overhead(module: Module) -> int:
    """Static count of inserted counting instructions."""
    return sum(
        1
        for fn in module.functions.values()
        for instr in fn.instructions()
        if instr.attrs.get("counter")
    )
