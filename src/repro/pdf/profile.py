"""Profile collection and count recovery.

During the first PDF pass the instrumented program writes exact
execution counts for the counted blocks into the ``__bbcounts`` table.
This module reads the table back after an interpreter run, recovers
every remaining block and edge count by numeric constraint propagation
(the same rules the planner used symbolically), and accumulates counts
over multiple runs ("counts from multiple runs of the same program can
be accumulated").
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.module import Module
from repro.analysis.cfg import reachable_blocks
from repro.machine.interpreter import run_function
from repro.pdf.instrument import (
    COUNTS_SYMBOL,
    InstrumentationPlan,
    apply_edge_splits,
    apply_instrumentation,
    plan_instrumentation,
)


@dataclass
class ProfileData:
    """Recovered block and edge execution counts."""

    block_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    edge_counts: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    def accumulate(self, other: "ProfileData") -> None:
        for key, val in other.block_counts.items():
            self.block_counts[key] = self.block_counts.get(key, 0) + val
        for key, val in other.edge_counts.items():
            self.edge_counts[key] = self.edge_counts.get(key, 0) + val

    # -- persistence (the paper's profile file between the two passes) ----

    def to_json(self) -> str:
        import json

        return json.dumps(
            {
                "blocks": [
                    [fn, label, count]
                    for (fn, label), count in sorted(self.block_counts.items())
                ],
                "edges": [
                    [fn, src, dst, count]
                    for (fn, src, dst), count in sorted(self.edge_counts.items())
                ],
            },
            indent=1,
        )

    @classmethod
    def from_json(cls, text: str) -> "ProfileData":
        import json

        raw = json.loads(text)
        profile = cls()
        for fn, label, count in raw.get("blocks", []):
            profile.block_counts[(fn, label)] = count
        for fn, src, dst, count in raw.get("edges", []):
            profile.edge_counts[(fn, src, dst)] = count
        return profile

    def save(self, path: str) -> None:
        """Write the profile file ("it creates a file that indicates the
        number of times each basic block ... was executed")."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ProfileData":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def edge_frequency(self, fn: str, src: str, dst: str) -> int:
        return self.edge_counts.get((fn, src, dst), 0)

    def taken_probability(self, fn: str, block, function: Function) -> Optional[float]:
        """Probability that ``block``'s conditional branch is taken."""
        term = block.terminator
        if term is None or not term.is_cond_branch or term.target is None:
            return None
        succs = function.successors(block)
        if len(succs) != 2:
            return None
        taken = self.edge_frequency(fn, block.label, term.target)
        fall = self.edge_frequency(fn, block.label, succs[1].label)
        total = taken + fall
        if total == 0:
            return None
        return taken / total


def recover_counts(
    fn: Function, measured: Dict[str, int]
) -> Tuple[Dict[str, int], Dict[Tuple[str, str], int]]:
    """Recover all block and edge counts from measured block counts."""
    reachable = reachable_blocks(fn)
    edges = [
        (bb.label, succ.label)
        for bb in fn.blocks
        if bb.label in reachable
        for succ in fn.successors(bb)
        if succ.label in reachable
    ]
    in_edges: Dict[str, List[Tuple[str, str]]] = {b: [] for b in reachable}
    out_edges: Dict[str, List[Tuple[str, str]]] = {b: [] for b in reachable}
    for e in edges:
        out_edges[e[0]].append(e)
        in_edges[e[1]].append(e)

    blocks: Dict[str, int] = {
        label: count for label, count in measured.items() if label in reachable
    }
    edge_vals: Dict[Tuple[str, str], int] = {}
    changed = True
    while changed:
        changed = False
        for b in reachable:
            ins, outs = in_edges[b], out_edges[b]
            if b not in blocks:
                if ins and all(e in edge_vals for e in ins):
                    blocks[b] = sum(edge_vals[e] for e in ins)
                    changed = True
                elif outs and all(e in edge_vals for e in outs):
                    blocks[b] = sum(edge_vals[e] for e in outs)
                    changed = True
            if b in blocks:
                for group in (ins, outs):
                    unknown = [e for e in group if e not in edge_vals]
                    if len(unknown) == 1:
                        known_sum = sum(
                            edge_vals[e] for e in group if e in edge_vals
                        )
                        edge_vals[unknown[0]] = max(blocks[b] - known_sum, 0)
                        changed = True
    return blocks, edge_vals


def collect_profile(
    module: Module,
    entry: str,
    runs: Iterable[Tuple],
    plan: Optional[InstrumentationPlan] = None,
    max_steps: int = 5_000_000,
) -> Tuple[ProfileData, InstrumentationPlan]:
    """The full first PDF pass.

    Clones ``module``, instruments the clone, executes it on each of the
    training ``runs`` (argument tuples), reads the counter table back
    from memory, recovers full counts, and returns the accumulated
    profile along with the plan (to be re-applied on the second pass).

    The returned profile refers to the *edge-split* flow graph: the
    second compilation pass must call
    :func:`repro.pdf.instrument.apply_edge_splits` with the same plan so
    labels line up.
    """
    if plan is None:
        plan = plan_instrumentation(module)
    instrumented = module.clone()
    apply_instrumentation(instrumented, plan)
    # Counter caches may live in callee-saved registers (the paper uses
    # r11..r13/r31), so the instrumented build needs its linkage code
    # before it can run.
    from repro.transforms.linkage import LinkageLowering
    from repro.transforms.pass_manager import PassContext

    LinkageLowering().run_on_module(instrumented, PassContext(instrumented))

    layout = instrumented.layout()
    table_base = layout[COUNTS_SYMBOL]
    totals: Dict[Tuple[str, str], int] = {key: 0 for key in plan.slots}

    for args in runs:
        result = run_function(instrumented, entry, list(args), max_steps=max_steps)
        for (fn_name, label), slot in plan.slots.items():
            totals[(fn_name, label)] += result.state.mem.get(table_base + 4 * slot, 0)

    # Recover full counts on a split-graph copy of the original module.
    shadow = module.clone()
    apply_edge_splits(shadow, plan)
    profile = ProfileData()
    for fn_name in sorted(shadow.functions):
        fn = shadow.functions[fn_name]
        measured = {
            label: totals.get((fn_name, label), 0)
            for (f, label) in plan.slots
            if f == fn_name
        }
        blocks, edge_vals = recover_counts(fn, measured)
        for label, count in blocks.items():
            profile.block_counts[(fn_name, label)] = count
        for (src, dst), count in edge_vals.items():
            profile.edge_counts[(fn_name, src, dst)] = count
    return profile, plan
