"""Profiling Directed Feedback (PDF).

The paper's low-overhead two-pass profiling workflow:

1. **Planning** (:mod:`repro.pdf.instrument`): a constraint-propagation
   algorithm picks a *subset* of basic blocks whose execution counts
   uniquely determine every edge count (flow conservation: a block's
   count equals the sum over its incoming edges and over its outgoing
   edges). Where block counts cannot disambiguate edges, an edge is
   split with a dummy block which is then counted.
2. **Instrumentation**: real counting code is inserted — three
   instructions per counted block (load counter, add one, store), with
   the loads/stores migrated to loop preheaders/exits so blocks inside
   loops pay a single ``AI`` per execution, exactly as in the paper's
   eqntott figure.
3. **Collection** (:mod:`repro.pdf.profile`): the instrumented module
   runs in the interpreter; counter values are read back from the
   counts table in memory, and the full block and edge profile is
   recovered by the same propagation. Counts accumulate across runs.
4. **Feedback** (:mod:`repro.pdf.reorder`, :mod:`repro.pdf.reversal`):
   basic block re-ordering along the most-frequent-successor-first DFS,
   branch reversal of mostly-taken conditional branches (finished by
   basic block expansion), and branch probabilities for the scheduler.
"""

from repro.pdf.instrument import (
    InstrumentationPlan,
    apply_instrumentation,
    plan_instrumentation,
)
from repro.pdf.profile import ProfileData, collect_profile, recover_counts
from repro.pdf.reorder import ProfileGuidedReorder
from repro.pdf.reversal import BranchReversal

__all__ = [
    "BranchReversal",
    "InstrumentationPlan",
    "ProfileData",
    "ProfileGuidedReorder",
    "apply_instrumentation",
    "collect_profile",
    "plan_instrumentation",
    "recover_counts",
]
