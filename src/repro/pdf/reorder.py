"""Profile-guided basic block re-ordering.

"Just before final code generation, the basic blocks are physically
re-ordered following a depth-first enumeration of the flow graph ...
During the depth-first enumeration, the flow graph edges that are
executed most frequently are followed first, unless the target of the
edge is already visited. ... This causes the most frequently executed
path to occur first in the enumeration, and therefore be arranged in a
straight line, where almost all branches fall through."

Standard straightening runs afterwards "to eliminate any awkward
branching that may have resulted from the re-ordering."
"""

from repro.ir.function import Function
from repro.analysis.cfg import depth_first_order
from repro.transforms.layout import relayout_blocks
from repro.transforms.pass_manager import Pass, PassContext
from repro.transforms.straighten import Straighten


class ProfileGuidedReorder(Pass):
    """Lay out blocks along the hottest path.

    Breaking an existing fallthrough pair costs an extra unconditional
    branch on the displaced path, and a taken conditional branch whose
    condition resolves early is free on this hardware — so the taken
    target is preferred over the current fallthrough only when the bias
    is strong enough that the subsequent branch-reversal pass will
    remove the trampoline from the hot trace (same threshold).
    """

    name = "pdf-reorder"

    def __init__(self, bias_threshold: float = 0.7):
        # fallthrough keeps its slot unless taken/(taken+fall) >= threshold
        self.fall_bonus = bias_threshold / (1.0 - bias_threshold)

    def run_on_function(self, fn: Function, ctx: PassContext) -> bool:
        if ctx.edge_profile is None:
            return False

        def priority(src, dst) -> float:
            count = float(ctx.edge_count(fn.name, src.label, dst.label) or 0)
            if src.falls_through and fn.layout_successor(src) is dst:
                count *= self.fall_bonus
            return count

        order = depth_first_order(fn, successor_priority=priority)
        if [bb.label for bb in order] == [bb.label for bb in fn.blocks]:
            return False
        relayout_blocks(fn, order)
        Straighten().run_on_function(fn, ctx)
        ctx.bump("pdf.reordered-functions")
        return True
