"""Measurement harness shared by the benchmarks and examples.

Compiles workloads at a given level, checks that the optimised module
computes the same result as the unoptimised one, and reports cycles on
a machine model — the scaffolding behind every table and figure in
EXPERIMENTS.md.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.module import Module
from repro.machine.interpreter import run_function
from repro.machine.model import MachineModel, RS6000
from repro.machine.timer import TimingReport, time_trace
from repro.pdf.profile import ProfileData, collect_profile
from repro.perf.memo import DEFAULT_CACHE, CompileCache, config_key
from repro.pipeline import CompileResult, compile_module
from repro.robustness.report import ResilienceReport
from repro.workloads import Workload, suite


@dataclass
class Measurement:
    """One workload at one optimisation level."""

    workload: str
    level: str
    cycles: int
    instructions: int
    value: int
    static_instructions: int
    compile_seconds: float
    #: Which passes actually fired (changed the module) during the compile.
    pass_changes: Dict[str, bool] = field(default_factory=dict)
    #: Rolled-back pass count under a resilience policy (0 otherwise).
    rollbacks: int = 0
    #: Per-pass diagnostics when compiled with ``resilience=``; else None.
    resilience_report: Optional[ResilienceReport] = None
    #: True when the compile was served from a :class:`CompileCache`
    #: (``compile_seconds`` then reports the original compile's cost).
    memo_hit: bool = False

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def measure(
    workload: Workload,
    level: str = "vliw",
    model: MachineModel = RS6000,
    profile: Optional[ProfileData] = None,
    plan=None,
    check_against: Optional[int] = None,
    resilience: Optional[str] = None,
    mem_model: str = "flat",
    memo=False,
    engine: str = "tree",
    **compile_kwargs,
) -> Measurement:
    """Compile and time one workload; verifies the computed value.

    ``resilience`` runs the guarded pipeline (see :mod:`repro.robustness`);
    the per-pass report lands on ``Measurement.resilience_report``.
    ``mem_model`` selects the execution substrate for the final timed run
    (``"paged"`` makes stray accesses fault instead of reading 0).

    ``memo`` caches compile results keyed by (module fingerprint, level,
    pipeline config) so benchmark repetitions skip recompiling identical
    modules: ``True`` uses the process-wide cache, or pass a
    :class:`~repro.perf.memo.CompileCache` to scope it. Profile-guided
    compiles are never cached (the profile is not part of the key).
    """
    module = workload.fresh_module()
    cache: Optional[CompileCache] = None
    if memo is not False and profile is None and plan is None:
        # ``memo`` is True (process-wide cache) or a CompileCache; an
        # *empty* cache is falsy (__len__), so never truth-test it.
        cache = DEFAULT_CACHE if memo is True else memo
    compiled: Optional[CompileResult] = None
    memo_hit = False
    if cache is not None:
        key = config_key(
            level, model=model.name, resilience=resilience, **compile_kwargs
        )
        compiled = cache.lookup(module, key)
        memo_hit = compiled is not None
    if compiled is None:
        compiled = compile_module(
            module,
            level=level,
            model=model,
            profile=profile,
            plan=plan,
            resilience=resilience,
            **compile_kwargs,
        )
        if cache is not None:
            cache.store(module, key, compiled)
    if cache is not None and compiled.resilience is not None:
        # Surface the compile cache's hit/miss/eviction counters next to
        # the snapshot/memo counters (the serve stats endpoint and the
        # benchmarks read them all from one place).
        compiled.resilience.counters.update(cache.counters)
    result = run_function(
        compiled.module,
        workload.entry,
        list(workload.args),
        record_trace=True,
        max_steps=10_000_000,
        mem_model=mem_model,
        engine=engine,
    )
    if check_against is not None and result.value != check_against:
        raise AssertionError(
            f"{workload.name}@{level}: result {result.value} != "
            f"reference {check_against}"
        )
    report = time_trace(result.trace, model)
    return Measurement(
        workload=workload.name,
        level=level,
        cycles=report.cycles,
        instructions=report.instructions,
        value=result.value,
        static_instructions=compiled.static_instructions,
        compile_seconds=compiled.compile_seconds,
        pass_changes=dict(compiled.pass_changes),
        rollbacks=compiled.resilience.rollbacks if compiled.resilience else 0,
        resilience_report=compiled.resilience,
        memo_hit=memo_hit,
    )


def reference_value(workload: Workload) -> int:
    """The semantically-correct result, from the unoptimised module."""
    result = run_function(
        workload.fresh_module(),
        workload.entry,
        list(workload.args),
        max_steps=10_000_000,
    )
    return result.value


def train_profile(workload: Workload):
    """First PDF pass on the training input."""
    module = workload.fresh_module()
    return collect_profile(module, workload.entry, [workload.train_args])


@dataclass
class SpecRow:
    """One row of the SPECint92-style table."""

    benchmark: str
    base_cycles: int
    vliw_cycles: int

    @property
    def base_mark(self) -> float:
        # SPECmark-like figure of merit: bigger is better; normalised so
        # the baseline machine scores 100 on every benchmark.
        return 100.0

    @property
    def vliw_mark(self) -> float:
        return 100.0 * self.base_cycles / self.vliw_cycles

    @property
    def speedup(self) -> float:
        return self.base_cycles / self.vliw_cycles


def specint_table(
    model: MachineModel = RS6000,
    workloads: Optional[Iterable[Workload]] = None,
    **vliw_kwargs,
) -> List[SpecRow]:
    """Reproduce the paper's SPECint92 table shape: baseline vs VLIW."""
    rows: List[SpecRow] = []
    for wl in workloads if workloads is not None else suite():
        ref = reference_value(wl)
        base = measure(wl, "base", model, check_against=ref)
        vliw = measure(wl, "vliw", model, check_against=ref, **vliw_kwargs)
        rows.append(SpecRow(wl.name, base.cycles, vliw.cycles))
    return rows


def geomean_speedup(rows: Iterable[SpecRow]) -> float:
    rows = list(rows)
    if not rows:
        return 1.0
    return math.exp(sum(math.log(r.speedup) for r in rows) / len(rows))


def format_spec_table(rows: List[SpecRow]) -> str:
    """Render the table the way the paper prints it."""
    lines = [
        f"{'Benchmark':<12} {'base cyc':>10} {'base mark':>10} "
        f"{'VLIW cyc':>10} {'VLIW mark':>10} {'speedup':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<12} {row.base_cycles:>10} {row.base_mark:>10.2f} "
            f"{row.vliw_cycles:>10} {row.vliw_mark:>10.2f} {row.speedup:>8.3f}"
        )
    lines.append(
        f"{'geomean':<12} {'':>10} {'':>10} {'':>10} "
        f"{100.0 * geomean_speedup(rows):>10.2f} {geomean_speedup(rows):>8.3f}"
    )
    return "\n".join(lines)
