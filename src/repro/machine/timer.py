"""Trace-driven timing model for in-order superscalars.

Replays the dynamic instruction trace produced by the interpreter against
a :class:`~repro.machine.model.MachineModel` and reports cycle counts.

Model rules (see model.py for the calibration rationale):

- instructions issue in program (trace) order; several may issue in the
  same cycle up to ``issue_width`` and the per-class unit limits,
- a non-branch instruction waits for its source registers,
- a *taken* ``BT``/``BF`` waits until ``cmp_to_branch`` cycles after the
  compare that produced its condition register; an untaken one issues
  immediately (correct fall-through prediction is free),
- branch folding: the target instruction of a taken conditional branch
  may issue in the branch's own cycle,
- ``B`` costs ``uncond_base_cost`` cycles of fetch redirect, plus a stall
  that grows the closer it follows a conditional branch (the RS/6000
  untaken-conditional-then-taken-unconditional stall: ``max(0,
  cond_uncond_window - intervening non-branch instructions)``),
- ``CALL``/``RET`` pay small fixed redirect penalties; calls to library
  routines without IR bodies pay ``library_call_cost``.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.instructions import Instr
from repro.ir.module import Module
from repro.ir.operands import CTR, RETVAL, Reg
from repro.machine.libcalls import LIBRARY_FUNCTIONS
from repro.machine.model import MachineModel, RS6000


_CLASS_INT = "int"
_CLASS_MEM = "mem"
_CLASS_BRANCH = "branch"


def _instr_class(instr: Instr) -> str:
    if instr.is_memory:
        return _CLASS_MEM
    if instr.is_branch or instr.is_call or instr.is_return:
        return _CLASS_BRANCH
    return _CLASS_INT


@dataclass
class TimingReport:
    """Cycle-level outcome of replaying one trace."""

    cycles: int
    instructions: int
    class_counts: Dict[str, int] = field(default_factory=dict)
    branch_stall_cycles: int = 0
    uncond_stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def __repr__(self) -> str:
        return (
            f"<TimingReport cycles={self.cycles} instrs={self.instructions} "
            f"ipc={self.ipc:.2f}>"
        )


class _IssueTracker:
    """Width and unit occupancy bookkeeping."""

    def __init__(self, model: MachineModel):
        self.model = model
        self.width_used: Dict[int, int] = {}
        self.unit_used: Dict[Tuple[int, str], int] = {}

    def _unit_limit(self, klass: str) -> int:
        model = self.model
        if klass == _CLASS_BRANCH:
            return model.branch_units
        if model.shared_fxu:
            return model.fxu_units
        return model.mem_units if klass == _CLASS_MEM else model.int_units

    def _unit_key(self, klass: str) -> str:
        if klass == _CLASS_BRANCH:
            return _CLASS_BRANCH
        return "fxu" if self.model.shared_fxu else klass

    def issue_at(self, earliest: int, klass: str) -> int:
        """First cycle >= earliest with a free slot and unit; reserves it."""
        limit = self._unit_limit(klass)
        key = self._unit_key(klass)
        cycle = earliest
        while (
            self.width_used.get(cycle, 0) >= self.model.issue_width
            or self.unit_used.get((cycle, key), 0) >= limit
        ):
            cycle += 1
        self.width_used[cycle] = self.width_used.get(cycle, 0) + 1
        self.unit_used[(cycle, key)] = self.unit_used.get((cycle, key), 0) + 1
        return cycle


def time_trace(
    trace: Iterable[Tuple[Instr, Optional[bool]]],
    model: MachineModel = RS6000,
) -> TimingReport:
    """Replay ``trace`` against ``model`` and return the cycle report."""
    tracker = _IssueTracker(model)
    reg_ready: Dict[Reg, int] = {}
    # Cycle at which a branch may consume each condition register / ctr.
    branch_ready: Dict[Reg, int] = {}

    floor = 0
    last_issue = -1
    n_instrs = 0
    class_counts = {_CLASS_INT: 0, _CLASS_MEM: 0, _CLASS_BRANCH: 0}
    branch_stalls = 0
    uncond_stalls = 0
    nonbranch_since_cond: Optional[int] = None  # None: no cond branch seen

    for instr, taken in trace:
        klass = _instr_class(instr)
        n_instrs += 1
        class_counts[klass] += 1
        earliest = floor
        op = instr.opcode

        if op in ("BT", "BF"):
            if taken:
                ready = branch_ready.get(instr.crf, 0)
                if ready > earliest:
                    branch_stalls += ready - earliest
                    earliest = ready
        elif op == "BCT":
            ready = branch_ready.get(CTR, 0)
            if ready > earliest:
                branch_stalls += ready - earliest
                earliest = ready
        elif op == "B":
            if nonbranch_since_cond is not None:
                stall = max(0, model.cond_uncond_window - nonbranch_since_cond)
                uncond_stalls += stall
                earliest += stall
        elif op not in ("CALL", "RET"):
            for reg in instr.uses():
                ready = reg_ready.get(reg, 0)
                if ready > earliest:
                    earliest = ready

        issue = tracker.issue_at(earliest, klass)
        last_issue = max(last_issue, issue)

        # Result availability.
        if instr.is_load:
            reg_ready[instr.rd] = issue + model.load_latency
            if op == "LU":
                reg_ready[instr.base] = issue + model.alu_latency
        elif op == "STU":
            reg_ready[instr.base] = issue + model.alu_latency
        elif instr.is_compare:
            reg_ready[instr.crf] = issue + model.alu_latency
            branch_ready[instr.crf] = issue + model.cmp_to_branch
        elif op == "MTCTR":
            branch_ready[CTR] = issue + model.ctr_to_branch
        elif op == "BCT":
            branch_ready[CTR] = max(branch_ready.get(CTR, 0), issue + 1)
        elif instr.rd is not None:
            reg_ready[instr.rd] = issue + model.alu_latency

        # In-order floor for the next instruction.
        if op == "B":
            floor = issue + model.uncond_base_cost
        elif op == "CALL":
            if instr.symbol in LIBRARY_FUNCTIONS:
                floor = issue + model.library_call_cost
                reg_ready[RETVAL] = floor
            else:
                floor = issue + model.call_penalty
        elif op == "RET":
            floor = issue + model.ret_penalty
        else:
            # Taken conditional branches are folded: the target instruction
            # may issue in the same cycle.
            floor = issue

        # Track distance from the last conditional branch for the
        # conditional-then-unconditional stall rule.
        if instr.is_cond_branch:
            nonbranch_since_cond = 0
        elif klass != _CLASS_BRANCH and nonbranch_since_cond is not None:
            nonbranch_since_cond += 1

    return TimingReport(
        cycles=last_issue + 1 if last_issue >= 0 else 0,
        instructions=n_instrs,
        class_counts=class_counts,
        branch_stall_cycles=branch_stalls,
        uncond_stall_cycles=uncond_stalls,
    )


def cycles_for_run(
    module: Module,
    fn_name: str,
    args: Iterable[int] = (),
    model: MachineModel = RS6000,
    input_values: Optional[List[int]] = None,
    max_steps: int = 2_000_000,
    engine: str = "tree",
) -> TimingReport:
    """Interpret ``fn_name`` on ``args`` and time its dynamic trace."""
    from repro.machine.interpreter import run_function

    result = run_function(
        module,
        fn_name,
        args,
        input_values=input_values,
        max_steps=max_steps,
        record_trace=True,
        engine=engine,
    )
    return time_trace(result.trace, model)
