"""Library call models.

The paper's speculative load/store motion makes a special case for "I/O
library procedures with known properties (e.g., storage modifications
confined to parameters)": loads and stores may stay hoisted across calls
to such procedures provided register-cached locations are flushed before
and reloaded after the call. These summaries provide that knowledge.

Each library function has a Python implementation used by the interpreter
and an effect summary used by the analyses:

- ``reads_memory`` / ``writes_memory``: may the callee touch any memory?
- ``memory_confined_to_args``: the paper's property — any memory the
  callee reads or writes is reachable only through its pointer arguments.
- ``is_io``: performs input/output (never removable or duplicable).
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class LibraryFunction:
    """Implementation plus effect summary for one library routine."""

    name: str
    nargs: int
    impl: Callable  # (state, args) -> return value (int) or None
    reads_memory: bool = False
    writes_memory: bool = False
    memory_confined_to_args: bool = False
    is_io: bool = False


def _print_int(state, args) -> Optional[int]:
    state.output.append(args[0])
    return None


def _read_int(state, args) -> int:
    if state.input:
        return state.input.pop(0)
    return 0


def _abs_val(state, args) -> int:
    value = args[0]
    return -value if value < 0 else value


def _min_val(state, args) -> int:
    return min(args[0], args[1])


def _max_val(state, args) -> int:
    return max(args[0], args[1])


def _memset_words(state, args) -> int:
    """memset_words(addr, value, nwords): fill words; returns addr."""
    addr, value, nwords = args
    for i in range(max(nwords, 0)):
        state.mem[addr + 4 * i] = value
    return addr


def _memcpy_words(state, args) -> int:
    """memcpy_words(dst, src, nwords): copy words; returns dst."""
    dst, src, nwords = args
    for i in range(max(nwords, 0)):
        state.mem[dst + 4 * i] = state.mem.get(src + 4 * i, 0)
    return dst


def _write_record(state, args) -> Optional[int]:
    """write_record(addr, nwords): emit nwords of memory to the output."""
    addr, nwords = args
    for i in range(max(nwords, 0)):
        state.output.append(state.mem.get(addr + 4 * i, 0))
    return None


LIBRARY_FUNCTIONS: Dict[str, LibraryFunction] = {
    fn.name: fn
    for fn in [
        LibraryFunction("print_int", 1, _print_int, is_io=True),
        LibraryFunction("read_int", 0, _read_int, is_io=True),
        LibraryFunction("abs_val", 1, _abs_val),
        LibraryFunction("min_val", 2, _min_val),
        LibraryFunction("max_val", 2, _max_val),
        LibraryFunction(
            "memset_words",
            3,
            _memset_words,
            writes_memory=True,
            memory_confined_to_args=True,
        ),
        LibraryFunction(
            "memcpy_words",
            3,
            _memcpy_words,
            reads_memory=True,
            writes_memory=True,
            memory_confined_to_args=True,
        ),
        LibraryFunction(
            "write_record",
            2,
            _write_record,
            reads_memory=True,
            memory_confined_to_args=True,
            is_io=True,
        ),
    ]
}


def call_effects(symbol: str) -> Optional[LibraryFunction]:
    """Effect summary for ``symbol``, or None for unknown callees."""
    return LIBRARY_FUNCTIONS.get(symbol)
