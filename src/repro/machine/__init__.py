"""Machine substrate: functional interpreter + superscalar timing model.

The paper measures on RS/6000 (POWER), Power2 and PowerPC 601 hardware. We
substitute a two-part substrate:

- :mod:`repro.machine.interpreter` executes IR functionally (registers,
  memory, calls, I/O) and records the dynamic instruction trace. It is the
  ground truth for the differential-correctness tests of every pass.
- :mod:`repro.machine.timer` replays a trace against an in-order
  superscalar :class:`~repro.machine.model.MachineModel` and reports
  cycles. The model captures exactly the pipeline phenomena the paper's
  optimisations target (load-use delay, compare-to-branch delay, branch
  folding, the conditional-then-unconditional branch stall, finite units).
"""

from repro.machine.model import MachineModel, POWER2, PPC601, RS6000
from repro.machine.engine import ENGINES, ClosureEngine, cached_engine
from repro.machine.interpreter import (
    ExecutionError,
    ExecutionLimit,
    ExecResult,
    Interpreter,
    MachineState,
    run_function,
)
from repro.machine.memory import (
    MEM_MODELS,
    ArithmeticFault,
    FlatMemory,
    MemoryFault,
    PagedMemory,
    SpeculationFault,
    make_memory,
)
from repro.machine.timer import TimingReport, time_trace, cycles_for_run

__all__ = [
    "ArithmeticFault",
    "ClosureEngine",
    "ENGINES",
    "ExecResult",
    "ExecutionError",
    "ExecutionLimit",
    "FlatMemory",
    "Interpreter",
    "MEM_MODELS",
    "MachineModel",
    "MachineState",
    "MemoryFault",
    "POWER2",
    "PPC601",
    "PagedMemory",
    "RS6000",
    "SpeculationFault",
    "TimingReport",
    "cached_engine",
    "cycles_for_run",
    "make_memory",
    "run_function",
    "time_trace",
]
