"""Functional interpreter for the IR.

Executes a module's functions against a flat memory and the shared
register file, recording (optionally) the dynamic instruction trace that
the timing model replays, and per-basic-block execution counts (the same
counts PDF instrumentation gathers).

The interpreter is the semantic ground truth: every transformation pass is
validated by running a function before and after the pass on identical
inputs and comparing return value, memory effects and I/O.
"""

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import ALU_FUNCS, ALU_RI_TO_RR, COND_FUNCS, Instr, wrap32
from repro.ir.module import Module, STACK_BASE
from repro.ir.operands import CALLEE_SAVED, CTR, RETVAL, SP, TOC, Reg, gpr
from repro.machine.libcalls import LIBRARY_FUNCTIONS


class ExecutionError(RuntimeError):
    """Raised when execution goes structurally wrong (bad call, fallthrough
    off the end of a function, call depth exceeded, ABI violation)."""


class ExecutionLimit(ExecutionError):
    """Raised when the step budget is exhausted (runaway loop)."""


class MachineState:
    """Registers, memory and I/O streams."""

    def __init__(self, input_values: Optional[Iterable[int]] = None):
        self.regs: Dict[Reg, int] = {}
        self.mem: Dict[int, int] = {}
        self.output: List[int] = []
        self.input: List[int] = list(input_values) if input_values else []

    def get(self, reg: Reg) -> int:
        return self.regs.get(reg, 0)

    def set(self, reg: Reg, value: int) -> None:
        self.regs[reg] = wrap32(value)

    def snapshot_mem(self) -> Dict[int, int]:
        """Memory with zero-valued cells dropped, for comparisons."""
        return {addr: val for addr, val in self.mem.items() if val != 0}


class ExecResult:
    """Outcome of one interpreted run."""

    def __init__(
        self,
        value: int,
        steps: int,
        trace: Optional[List[Tuple[Instr, Optional[bool]]]],
        block_counts: Optional[Dict[Tuple[str, str], int]],
        state: MachineState,
    ):
        self.value = value
        self.steps = steps
        self.trace = trace
        self.block_counts = block_counts
        self.state = state

    @property
    def output(self) -> List[int]:
        return self.state.output

    def __repr__(self) -> str:
        return f"<ExecResult value={self.value} steps={self.steps}>"


class Interpreter:
    """Executes functions of one module."""

    MAX_CALL_DEPTH = 100

    def __init__(
        self,
        module: Module,
        max_steps: int = 2_000_000,
        record_trace: bool = False,
        count_blocks: bool = False,
        check_callee_saved: bool = False,
    ):
        self.module = module
        self.layout = module.layout()
        self.max_steps = max_steps
        self.record_trace = record_trace
        self.count_blocks = count_blocks
        self.check_callee_saved = check_callee_saved
        self.steps = 0
        self.trace: List[Tuple[Instr, Optional[bool]]] = []
        self.block_counts: Dict[Tuple[str, str], int] = {}

    # -- public API ----------------------------------------------------------

    def run(
        self,
        fn_name: str,
        args: Iterable[int] = (),
        state: Optional[MachineState] = None,
    ) -> ExecResult:
        state = state if state is not None else MachineState()
        fn = self.module.functions[fn_name]
        self._init_state(state, args, fn)
        value = self._exec_function(fn, state, depth=0)
        return ExecResult(
            value,
            self.steps,
            self.trace if self.record_trace else None,
            self.block_counts if self.count_blocks else None,
            state,
        )

    # -- setup -----------------------------------------------------------------

    def _init_state(
        self, state: MachineState, args: Iterable[int], fn: Optional[Function] = None
    ) -> None:
        state.set(SP, STACK_BASE)
        state.set(TOC, 0x8000)
        args = list(args)
        # Honour declared parameter registers (the paper's listings take
        # arguments in arbitrary registers, e.g. xlygetvalue(r3, r8));
        # fall back to the r3.. linkage convention otherwise.
        if fn is not None and fn.params:
            if len(args) > len(fn.params):
                raise ExecutionError(
                    f"{fn.name} takes {len(fn.params)} args, got {len(args)}"
                )
            for reg, value in zip(fn.params, args):
                state.set(reg, value)
        else:
            for i, value in enumerate(args):
                if i >= 8:
                    raise ExecutionError("more than 8 arguments not supported")
                state.set(gpr(3 + i), value)
        for name, addr in self.layout.items():
            for i, word in enumerate(self.module.data[name].init):
                state.mem[addr + 4 * i] = wrap32(word)

    # -- execution ---------------------------------------------------------------

    def _exec_function(self, fn: Function, state: MachineState, depth: int) -> int:
        if depth > self.MAX_CALL_DEPTH:
            raise ExecutionError(f"call depth exceeded entering {fn.name}")
        labels = {bb.label: i for i, bb in enumerate(fn.blocks)}
        bi = 0
        ii = 0
        entered_block = True
        while True:
            if bi >= len(fn.blocks):
                raise ExecutionError(f"fell off the end of {fn.name}")
            block = fn.blocks[bi]
            if entered_block and self.count_blocks:
                key = (fn.name, block.label)
                self.block_counts[key] = self.block_counts.get(key, 0) + 1
            entered_block = False
            if ii >= len(block.instrs):
                # Fall through to the next block: either the block has no
                # terminator, or its conditional terminator was untaken.
                if not block.falls_through:
                    raise ExecutionError(
                        f"fell through a non-fallthrough block {block.label}"
                    )
                bi += 1
                ii = 0
                entered_block = True
                continue

            instr = block.instrs[ii]
            self.steps += 1
            if self.steps > self.max_steps:
                raise ExecutionLimit(f"step budget exhausted in {fn.name}")

            op = instr.opcode
            taken: Optional[bool] = None

            if op in ALU_FUNCS:
                state.set(
                    instr.rd,
                    ALU_FUNCS[op](state.get(instr.ra), state.get(instr.rb)),
                )
            elif op in ALU_RI_TO_RR:
                state.set(
                    instr.rd,
                    ALU_FUNCS[ALU_RI_TO_RR[op]](state.get(instr.ra), instr.imm),
                )
            elif op == "LI":
                state.set(instr.rd, instr.imm)
            elif op == "LA":
                try:
                    state.set(instr.rd, self.layout[instr.symbol])
                except KeyError:
                    raise ExecutionError(f"unknown data symbol {instr.symbol}")
            elif op == "LR":
                state.set(instr.rd, state.get(instr.ra))
            elif op == "NEG":
                state.set(instr.rd, -state.get(instr.ra))
            elif op == "NOT":
                state.set(instr.rd, ~state.get(instr.ra))
            elif op == "L":
                addr = state.get(instr.base) + instr.disp
                state.set(instr.rd, state.mem.get(addr, 0))
            elif op == "LU":
                addr = state.get(instr.base) + instr.disp
                state.set(instr.rd, state.mem.get(addr, 0))
                state.set(instr.base, addr)
            elif op == "ST":
                addr = state.get(instr.base) + instr.disp
                state.mem[addr] = state.get(instr.ra)
            elif op == "STU":
                addr = state.get(instr.base) + instr.disp
                state.mem[addr] = state.get(instr.ra)
                state.set(instr.base, addr)
            elif op == "C":
                diff = state.get(instr.ra) - state.get(instr.rb)
                state.regs[instr.crf] = (diff > 0) - (diff < 0)
            elif op == "CI":
                diff = state.get(instr.ra) - instr.imm
                state.regs[instr.crf] = (diff > 0) - (diff < 0)
            elif op == "MTCTR":
                state.set(CTR, state.get(instr.ra))
            elif op == "MFCTR":
                state.set(instr.rd, state.get(CTR))
            elif op == "B":
                taken = True
            elif op == "BT" or op == "BF":
                holds = COND_FUNCS[instr.cond](state.get(instr.crf))
                taken = holds if op == "BT" else not holds
            elif op == "BCT":
                state.set(CTR, state.get(CTR) - 1)
                taken = state.get(CTR) != 0
            elif op == "CALL":
                self._exec_call(instr, state, depth)
            elif op == "RET":
                if self.record_trace:
                    self.trace.append((instr, None))
                return state.get(RETVAL)
            elif op == "NOP":
                pass
            else:  # pragma: no cover - verifier rejects unknown opcodes
                raise ExecutionError(f"cannot execute opcode {op}")

            if self.record_trace:
                self.trace.append((instr, taken))

            if taken:
                try:
                    bi = labels[instr.target]
                except KeyError:
                    raise ExecutionError(f"dangling branch target {instr.target}")
                ii = 0
                entered_block = True
            else:
                ii += 1

    def _exec_call(self, instr: Instr, state: MachineState, depth: int) -> None:
        symbol = instr.symbol
        if symbol in self.module.functions:
            saved = None
            if self.check_callee_saved:
                saved = {reg: state.get(reg) for reg in CALLEE_SAVED}
                saved[SP] = state.get(SP)
            value = self._exec_function(self.module.functions[symbol], state, depth + 1)
            state.set(RETVAL, value)
            if saved is not None:
                for reg, expected in saved.items():
                    if state.get(reg) != expected:
                        raise ExecutionError(
                            f"ABI violation: {symbol} clobbered {reg} "
                            f"({expected} -> {state.get(reg)})"
                        )
            return
        lib = LIBRARY_FUNCTIONS.get(symbol)
        if lib is None:
            raise ExecutionError(f"call to unknown function {symbol}")
        args = [state.get(gpr(3 + i)) for i in range(lib.nargs)]
        result = lib.impl(state, args)
        if result is not None:
            state.set(RETVAL, result)


def run_function(
    module: Module,
    fn_name: str,
    args: Iterable[int] = (),
    input_values: Optional[Iterable[int]] = None,
    max_steps: int = 2_000_000,
    record_trace: bool = False,
    count_blocks: bool = False,
    check_callee_saved: bool = False,
) -> ExecResult:
    """Run ``fn_name`` from ``module`` and return the :class:`ExecResult`."""
    interp = Interpreter(
        module,
        max_steps=max_steps,
        record_trace=record_trace,
        count_blocks=count_blocks,
        check_callee_saved=check_callee_saved,
    )
    state = MachineState(input_values)
    return interp.run(fn_name, args, state)
