"""Functional interpreter for the IR.

Executes a module's functions against a memory model and the shared
register file, recording (optionally) the dynamic instruction trace that
the timing model replays, and per-basic-block execution counts (the same
counts PDF instrumentation gathers).

The interpreter is the semantic ground truth: every transformation pass is
validated by running a function before and after the pass on identical
inputs and comparing return value, memory effects and I/O.

Two memory models are available (see :mod:`repro.machine.memory`):

- ``flat`` (default) — the historical total semantics: every address is
  mapped, loads default to 0, divide-by-zero wraps to 0, nothing faults.
- ``paged`` — only the stack, the module's data objects and a small heap
  window are mapped. A non-speculative access to an unmapped address
  raises :class:`MemoryFault`; divide-by-zero raises
  :class:`ArithmeticFault`. An instruction tagged
  ``attrs["speculative"]`` defers instead of trapping: its destination
  register is *poisoned* (an IA-64 NaT-style token). Poison propagates
  through ALU operations, copies and compares, and only raises
  :class:`SpeculationFault` when it reaches a non-speculative side
  effect — a store address or value, a conditional branch, I/O, or a
  return value.
"""

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import ALU_FUNCS, ALU_RI_TO_RR, COND_FUNCS, Instr, wrap32
from repro.ir.module import Module, STACK_BASE
from repro.ir.operands import CALLEE_SAVED, CTR, RETVAL, SP, TOC, Reg, gpr
from repro.machine.libcalls import LIBRARY_FUNCTIONS
from repro.machine.memory import (  # noqa: F401  (re-exported, see memory.py)
    MEM_MODELS,
    ArithmeticFault,
    ExecutionError,
    ExecutionLimit,
    FlatMemory,
    MemoryFault,
    PagedMemory,
    SpeculationFault,
    make_memory,
    map_module_data,
)


class MachineState:
    """Registers, memory, I/O streams and the poison set.

    ``mem_model`` selects the backing store (:data:`MEM_MODELS`); the
    historical flat dict remains the default, so existing callers see
    exactly the old semantics.
    """

    def __init__(
        self,
        input_values: Optional[Iterable[int]] = None,
        mem_model: str = "flat",
    ):
        self.regs: Dict[Reg, int] = {}
        self.mem = make_memory(mem_model)
        self.mem_model = mem_model
        self.output: List[int] = []
        self.input: List[int] = list(input_values) if input_values else []
        #: Registers currently holding a deferred-exception token.
        self.poison: Set[Reg] = set()
        #: Stack-slot addresses holding a *spilled* token: a linkage
        #: save (``ST !save``) of a poisoned register preserves the
        #: token through memory (IA-64 ``st8.spill`` style) and the
        #: matching ``L !restore`` re-poisons the register, instead of
        #: the save counting as a speculation escape.
        self.mem_poison: Set[int] = set()
        #: How many times a speculative fault was converted into poison
        #: (production events only — propagation does not count). The
        #: sanitizer uses this to classify "masked" runs.
        self.poison_events = 0

    def get(self, reg: Reg) -> int:
        return self.regs.get(reg, 0)

    def set(self, reg: Reg, value: int) -> None:
        """A clean write: stores the value and clears any poison."""
        self.regs[reg] = wrap32(value)
        if self.poison:
            self.poison.discard(reg)

    def taint(self, reg: Reg, seed: bool = False) -> None:
        """Poison ``reg``; ``seed=True`` marks a fresh production event."""
        self.regs[reg] = 0
        self.poison.add(reg)
        if seed:
            self.poison_events += 1

    def is_poisoned(self, *regs: Optional[Reg]) -> bool:
        if not self.poison:
            return False
        return any(reg is not None and reg in self.poison for reg in regs)

    def snapshot_mem(self) -> Dict[int, int]:
        """Memory with zero-valued cells dropped, for comparisons."""
        return {addr: val for addr, val in self.mem.items() if val != 0}


class ExecResult:
    """Outcome of one interpreted run."""

    def __init__(
        self,
        value: int,
        steps: int,
        trace: Optional[List[Tuple[Instr, Optional[bool]]]],
        block_counts: Optional[Dict[Tuple[str, str], int]],
        state: MachineState,
    ):
        self.value = value
        self.steps = steps
        self.trace = trace
        self.block_counts = block_counts
        self.state = state

    @property
    def output(self) -> List[int]:
        return self.state.output

    def __repr__(self) -> str:
        return f"<ExecResult value={self.value} steps={self.steps}>"


def initialize_state(
    state: MachineState,
    args: Iterable[int],
    fn: Optional[Function],
    layout: Dict[str, int],
    module: Module,
    faulting: bool,
) -> None:
    """Set up ``state`` for one run: linkage registers, arguments, data.

    Shared by the tree-walking :class:`Interpreter` and the
    closure-compiled :class:`~repro.machine.engine.ClosureEngine` so the
    two executors can never drift on argument passing or data layout.
    """
    state.set(SP, STACK_BASE)
    state.set(TOC, 0x8000)
    args = list(args)
    # Honour declared parameter registers (the paper's listings take
    # arguments in arbitrary registers, e.g. xlygetvalue(r3, r8));
    # fall back to the r3.. linkage convention otherwise.
    if fn is not None and fn.params:
        if len(args) > len(fn.params):
            raise ExecutionError(
                f"{fn.name} takes {len(fn.params)} args, got {len(args)}"
            )
        for reg, value in zip(fn.params, args):
            state.set(reg, value)
    else:
        for i, value in enumerate(args):
            if i >= 8:
                raise ExecutionError("more than 8 arguments not supported")
            state.set(gpr(3 + i), value)
    if faulting:
        map_module_data(
            state.mem,
            layout,
            {name: obj.size for name, obj in module.data.items()},
        )
    for name, addr in layout.items():
        for i, word in enumerate(module.data[name].init):
            state.mem[addr + 4 * i] = wrap32(word)


class Interpreter:
    """Executes functions of one module."""

    MAX_CALL_DEPTH = 100

    def __init__(
        self,
        module: Module,
        max_steps: int = 2_000_000,
        record_trace: bool = False,
        count_blocks: bool = False,
        check_callee_saved: bool = False,
    ):
        self.module = module
        self.layout = module.layout()
        self.max_steps = max_steps
        self.record_trace = record_trace
        self.count_blocks = count_blocks
        self.check_callee_saved = check_callee_saved
        self.steps = 0
        self.trace: List[Tuple[Instr, Optional[bool]]] = []
        self.block_counts: Dict[Tuple[str, str], int] = {}
        #: Set per-run from the state's memory: gates every poison/fault
        #: check so the flat model keeps its historical total semantics.
        self.faulting = False

    # -- public API ----------------------------------------------------------

    def run(
        self,
        fn_name: str,
        args: Iterable[int] = (),
        state: Optional[MachineState] = None,
    ) -> ExecResult:
        # Reset per-run accounting: a cached interpreter reused across
        # runs must not accumulate steps from earlier runs (a stale
        # budget falsely raises ExecutionLimit) or leak trace entries
        # and block counts into the new result.
        self.steps = 0
        self.trace = []
        self.block_counts = {}
        state = state if state is not None else MachineState()
        self.faulting = bool(getattr(state.mem, "faulting", False))
        fn = self.module.functions[fn_name]
        self._init_state(state, args, fn)
        value = self._exec_function(fn, state, depth=0)
        return ExecResult(
            value,
            self.steps,
            self.trace if self.record_trace else None,
            self.block_counts if self.count_blocks else None,
            state,
        )

    # -- setup -----------------------------------------------------------------

    def _init_state(
        self, state: MachineState, args: Iterable[int], fn: Optional[Function] = None
    ) -> None:
        initialize_state(state, args, fn, self.layout, self.module, self.faulting)

    # -- faulting-model helpers ----------------------------------------------

    def _load_word(
        self, state: MachineState, instr: Instr, addr: int
    ) -> Optional[int]:
        """One checked load; ``None`` means the destination was poisoned."""
        try:
            return state.mem.load(addr)
        except MemoryFault:
            if instr.attrs.get("speculative"):
                return None
            raise

    def _sidefx(self, state: MachineState, instr: Instr, what: str, *regs) -> None:
        """Raise if poison reaches a non-speculative side effect."""
        if self.faulting and state.is_poisoned(*regs):
            raise SpeculationFault(
                f"poison reached {what} ({instr.opcode})"
            )

    def _alu_result(
        self, state: MachineState, instr: Instr, func_op: str, a: int, b: int
    ) -> None:
        """Apply one ALU function with paged-model division semantics."""
        if self.faulting and func_op == "DIV" and b == 0:
            if instr.attrs.get("speculative"):
                state.taint(instr.rd, seed=True)
                return
            raise ArithmeticFault(f"division by zero ({instr.opcode})")
        state.set(instr.rd, ALU_FUNCS[func_op](a, b))

    # -- execution ---------------------------------------------------------------

    def _exec_function(self, fn: Function, state: MachineState, depth: int) -> int:
        if depth > self.MAX_CALL_DEPTH:
            raise ExecutionError(f"call depth exceeded entering {fn.name}")
        labels = {bb.label: i for i, bb in enumerate(fn.blocks)}
        bi = 0
        ii = 0
        entered_block = True
        faulting = self.faulting
        while True:
            if bi >= len(fn.blocks):
                raise ExecutionError(f"fell off the end of {fn.name}")
            block = fn.blocks[bi]
            if entered_block and self.count_blocks:
                key = (fn.name, block.label)
                self.block_counts[key] = self.block_counts.get(key, 0) + 1
            entered_block = False
            if ii >= len(block.instrs):
                # Fall through to the next block: either the block has no
                # terminator, or its conditional terminator was untaken.
                if not block.falls_through:
                    raise ExecutionError(
                        f"fell through a non-fallthrough block {block.label}"
                    )
                bi += 1
                ii = 0
                entered_block = True
                continue

            instr = block.instrs[ii]
            self.steps += 1
            if self.steps > self.max_steps:
                raise ExecutionLimit(f"step budget exhausted in {fn.name}")

            op = instr.opcode
            taken: Optional[bool] = None

            if op in ALU_FUNCS:
                if faulting and state.is_poisoned(instr.ra, instr.rb):
                    state.taint(instr.rd)
                else:
                    self._alu_result(
                        state, instr, op, state.get(instr.ra), state.get(instr.rb)
                    )
            elif op in ALU_RI_TO_RR:
                if faulting and state.is_poisoned(instr.ra):
                    state.taint(instr.rd)
                else:
                    self._alu_result(
                        state, instr, ALU_RI_TO_RR[op], state.get(instr.ra), instr.imm
                    )
            elif op == "LI":
                state.set(instr.rd, instr.imm)
            elif op == "LA":
                try:
                    state.set(instr.rd, self.layout[instr.symbol])
                except KeyError:
                    raise ExecutionError(f"unknown data symbol {instr.symbol}")
            elif op == "LR":
                if faulting and state.is_poisoned(instr.ra):
                    state.taint(instr.rd)
                else:
                    state.set(instr.rd, state.get(instr.ra))
            elif op == "NEG":
                if faulting and state.is_poisoned(instr.ra):
                    state.taint(instr.rd)
                else:
                    state.set(instr.rd, -state.get(instr.ra))
            elif op == "NOT":
                if faulting and state.is_poisoned(instr.ra):
                    state.taint(instr.rd)
                else:
                    state.set(instr.rd, ~state.get(instr.ra))
            elif op == "L":
                if faulting and state.is_poisoned(instr.base):
                    # The effective address is unknowable: defer further.
                    state.taint(instr.rd)
                else:
                    addr = state.get(instr.base) + instr.disp
                    value = self._load_word(state, instr, addr)
                    if value is None:
                        state.taint(instr.rd, seed=True)
                    elif (
                        state.mem_poison
                        and addr in state.mem_poison
                        and instr.attrs.get("restore")
                    ):
                        # Fill of a spilled token: re-poison the
                        # register (propagation, not a fresh event).
                        state.taint(instr.rd)
                    else:
                        state.set(instr.rd, value)
            elif op == "LU":
                if faulting and state.is_poisoned(instr.base):
                    state.taint(instr.rd)
                    state.taint(instr.base)
                else:
                    addr = state.get(instr.base) + instr.disp
                    value = self._load_word(state, instr, addr)
                    if value is None:
                        state.taint(instr.rd, seed=True)
                    else:
                        state.set(instr.rd, value)
                    state.set(instr.base, addr)
            elif op == "ST":
                if (
                    faulting
                    and instr.attrs.get("save")
                    and state.is_poisoned(instr.ra)
                ):
                    # Register spill of a poisoned value: the save must
                    # preserve the token, not trap — the spilled value
                    # may be dead garbage the callee is merely required
                    # to put back (the reason IA-64 pairs st8.spill
                    # with ld8.fill).
                    self._sidefx(state, instr, "a store", instr.base)
                    addr = state.get(instr.base) + instr.disp
                    state.mem[addr] = state.get(instr.ra)
                    state.mem_poison.add(addr)
                else:
                    self._sidefx(state, instr, "a store", instr.ra, instr.base)
                    addr = state.get(instr.base) + instr.disp
                    state.mem[addr] = state.get(instr.ra)
                    if state.mem_poison:
                        state.mem_poison.discard(addr)
            elif op == "STU":
                self._sidefx(state, instr, "a store", instr.ra, instr.base)
                addr = state.get(instr.base) + instr.disp
                state.mem[addr] = state.get(instr.ra)
                if state.mem_poison:
                    state.mem_poison.discard(addr)
                state.set(instr.base, addr)
            elif op == "C":
                if faulting and state.is_poisoned(instr.ra, instr.rb):
                    state.taint(instr.crf)
                else:
                    diff = state.get(instr.ra) - state.get(instr.rb)
                    state.set(instr.crf, (diff > 0) - (diff < 0))
            elif op == "CI":
                if faulting and state.is_poisoned(instr.ra):
                    state.taint(instr.crf)
                else:
                    diff = state.get(instr.ra) - instr.imm
                    state.set(instr.crf, (diff > 0) - (diff < 0))
            elif op == "MTCTR":
                if faulting and state.is_poisoned(instr.ra):
                    state.taint(CTR)
                else:
                    state.set(CTR, state.get(instr.ra))
            elif op == "MFCTR":
                if faulting and state.is_poisoned(CTR):
                    state.taint(instr.rd)
                else:
                    state.set(instr.rd, state.get(CTR))
            elif op == "B":
                taken = True
            elif op == "BT" or op == "BF":
                self._sidefx(state, instr, "a conditional branch", instr.crf)
                holds = COND_FUNCS[instr.cond](state.get(instr.crf))
                taken = holds if op == "BT" else not holds
            elif op == "BCT":
                self._sidefx(state, instr, "a conditional branch", CTR)
                state.set(CTR, state.get(CTR) - 1)
                taken = state.get(CTR) != 0
            elif op == "CALL":
                self._exec_call(instr, state, depth)
            elif op == "RET":
                self._sidefx(state, instr, "a return value", RETVAL, SP)
                if self.record_trace:
                    self.trace.append((instr, None))
                return state.get(RETVAL)
            elif op == "NOP":
                pass
            else:  # pragma: no cover - verifier rejects unknown opcodes
                raise ExecutionError(f"cannot execute opcode {op}")

            if self.record_trace:
                self.trace.append((instr, taken))

            if taken:
                try:
                    bi = labels[instr.target]
                except KeyError:
                    raise ExecutionError(f"dangling branch target {instr.target}")
                ii = 0
                entered_block = True
            else:
                ii += 1

    def _exec_call(self, instr: Instr, state: MachineState, depth: int) -> None:
        symbol = instr.symbol
        if symbol in self.module.functions:
            saved = None
            if self.check_callee_saved:
                saved = {reg: state.get(reg) for reg in CALLEE_SAVED}
                saved[SP] = state.get(SP)
            value = self._exec_function(self.module.functions[symbol], state, depth + 1)
            state.set(RETVAL, value)
            if saved is not None:
                for reg, expected in saved.items():
                    if state.get(reg) != expected:
                        raise ExecutionError(
                            f"ABI violation: {symbol} clobbered {reg} "
                            f"({expected} -> {state.get(reg)})"
                        )
            return
        lib = LIBRARY_FUNCTIONS.get(symbol)
        if lib is None:
            raise ExecutionError(f"call to unknown function {symbol}")
        arg_regs = [gpr(3 + i) for i in range(lib.nargs)]
        # A library call is a non-speculative side effect (I/O, memory
        # writes): poisoned arguments must not leak into it.
        self._sidefx(state, instr, f"library call {symbol}", *arg_regs)
        args = [state.get(reg) for reg in arg_regs]
        result = lib.impl(state, args)
        if result is not None:
            state.set(RETVAL, result)


def run_function(
    module: Module,
    fn_name: str,
    args: Iterable[int] = (),
    input_values: Optional[Iterable[int]] = None,
    max_steps: int = 2_000_000,
    record_trace: bool = False,
    count_blocks: bool = False,
    check_callee_saved: bool = False,
    mem_model: str = "flat",
    engine: str = "tree",
) -> ExecResult:
    """Run ``fn_name`` from ``module`` and return the :class:`ExecResult`.

    ``engine`` selects the executor: ``"tree"`` is the tree-walking
    interpreter above (the semantic ground truth); ``"closure"`` is the
    closure-compiled engine in :mod:`repro.machine.engine`, which caches
    compiled executors per module fingerprint and is differentially
    cross-checked against the tree-walker (``repro fuzz --xengine``).
    """
    if engine != "tree":
        from repro.machine.engine import ENGINES, cached_engine

        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r} (want one of {ENGINES})")
        eng = cached_engine(
            module,
            max_steps=max_steps,
            record_trace=record_trace,
            count_blocks=count_blocks,
            check_callee_saved=check_callee_saved,
        )
        state = MachineState(input_values, mem_model=mem_model)
        return eng.run(fn_name, args, state)
    interp = Interpreter(
        module,
        max_steps=max_steps,
        record_trace=record_trace,
        count_blocks=count_blocks,
        check_callee_saved=check_callee_saved,
    )
    state = MachineState(input_values, mem_model=mem_model)
    return interp.run(fn_name, args, state)
