"""Segmented, optionally-faulting memory models for the interpreter.

The original machine substrate backed memory with a flat dict in which
every address is readable (defaulting to 0) and writable — by design,
"random programs never trap". That makes the paper's speculation-safety
arguments vacuous: a speculative load hoisted past its guard can never be
observed going wrong. This module adds a second model in which it can:

- :class:`FlatMemory` — the historical semantics, unchanged: any address
  loads as 0 until stored, any store succeeds.
- :class:`PagedMemory` — a segmented address space. Only *mapped*
  segments (the downward-growing stack, each global data object, and a
  small heap window) may be touched; a load or store to an unmapped
  address raises :class:`MemoryFault`.

Under the paged model a load tagged ``attrs["speculative"]`` does not
trap on a fault: the interpreter instead *poisons* the destination
register (an IA-64 NaT-style deferred exception token). Poison propagates
through ALU operations and register copies and raises
:class:`SpeculationFault` only if it reaches a non-speculative side
effect — a store address or value, a conditional branch, I/O, or a
return. Division by zero follows the same discipline: it wraps to 0 on
the flat model (the historical total semantics), poisons the result when
the dividing instruction is speculative on the paged model, and raises
:class:`ArithmeticFault` otherwise.

The fault hierarchy lives here (rather than in ``interpreter.py``) so
both the memories and the interpreter can share it without an import
cycle; ``repro.machine.interpreter`` re-exports every class for
backwards compatibility.
"""

from typing import Dict, Iterable, List, Tuple

#: Memory models selectable on :class:`~repro.machine.interpreter.MachineState`.
MEM_MODELS = ("flat", "paged")

#: Size of the mapped stack segment below ``STACK_BASE`` (64 KiB covers
#: ``MAX_CALL_DEPTH`` frames comfortably) and the slack mapped above it
#: for caller-frame accesses at small positive displacements.
STACK_SIZE = 0x10000
STACK_SLACK = 0x1000

#: A small always-mapped heap window (no allocator exists yet; programs
#: that fabricate pointers can be given this window deliberately).
HEAP_BASE = 0x20000000
HEAP_SIZE = 0x10000


class ExecutionError(RuntimeError):
    """Raised when execution goes structurally wrong (bad call, fallthrough
    off the end of a function, call depth exceeded, ABI violation)."""


class ExecutionLimit(ExecutionError):
    """Raised when the step budget is exhausted (runaway loop)."""


class MemoryFault(ExecutionError):
    """A non-speculative access touched an unmapped address (paged model)."""


class ArithmeticFault(ExecutionError):
    """A non-speculative division by zero (paged model only; the flat
    model keeps the historical wrap-to-0 total semantics)."""


class SpeculationFault(ExecutionError):
    """Poison from a faulting speculative operation reached a
    non-speculative side effect (store, conditional branch, I/O, return)."""


class FlatMemory(dict):
    """The historical memory: every address mapped, loads default to 0."""

    #: Whether unmapped accesses fault (drives the interpreter's paged
    #: semantics: poison, ArithmeticFault, SpeculationFault).
    faulting = False

    def load(self, addr: int) -> int:
        return self.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        self[addr] = value

    def map_segment(self, name: str, base: int, size: int) -> None:
        """Flat memory is fully mapped; segments are accepted and ignored."""

    def segments(self) -> List[Tuple[str, int, int]]:
        return []


class PagedMemory(dict):
    """A segmented address space where unmapped accesses fault.

    The dict protocol (``mem[addr]``, ``mem.get(addr, 0)``) is preserved
    so library-call models and tests keep working, but every keyed access
    is checked against the mapped segments first — a ``memcpy_words``
    through a wild pointer faults exactly like an inline load would.
    """

    faulting = True

    def __init__(self):
        super().__init__()
        self._segments: List[Tuple[str, int, int]] = []  # (name, start, end)

    # -- mapping -----------------------------------------------------------

    def map_segment(self, name: str, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError(f"segment {name!r} must have positive size")
        self._segments.append((name, base, base + size))

    def segments(self) -> List[Tuple[str, int, int]]:
        return list(self._segments)

    def is_mapped(self, addr: int) -> bool:
        return any(start <= addr < end for _, start, end in self._segments)

    def _require(self, addr: int, access: str) -> None:
        if not self.is_mapped(addr):
            raise MemoryFault(f"{access} of unmapped address {addr:#x}")

    # -- checked access ----------------------------------------------------

    def load(self, addr: int) -> int:
        self._require(addr, "load")
        return dict.get(self, addr, 0)

    def store(self, addr: int, value: int) -> None:
        self._require(addr, "store")
        dict.__setitem__(self, addr, value)

    # -- dict protocol, checked -------------------------------------------

    def __getitem__(self, addr: int) -> int:
        self._require(addr, "load")
        return dict.get(self, addr, 0)

    def __setitem__(self, addr: int, value: int) -> None:
        self._require(addr, "store")
        dict.__setitem__(self, addr, value)

    def get(self, addr: int, default: int = 0) -> int:
        self._require(addr, "load")
        return dict.get(self, addr, default)


def make_memory(mem_model: str):
    """Build the backing store for one :data:`MEM_MODELS` entry.

    The paged model comes with the stack and heap segments pre-mapped;
    the interpreter maps one segment per module data object before a run.
    """
    if mem_model not in MEM_MODELS:
        raise ValueError(
            f"unknown memory model {mem_model!r}; expected one of {MEM_MODELS}"
        )
    if mem_model == "flat":
        return FlatMemory()
    from repro.ir.module import STACK_BASE

    mem = PagedMemory()
    mem.map_segment("stack", STACK_BASE - STACK_SIZE, STACK_SIZE + STACK_SLACK)
    mem.map_segment("heap", HEAP_BASE, HEAP_SIZE)
    return mem


def map_module_data(mem, layout: Dict[str, int], sizes: Dict[str, int]) -> None:
    """Map one segment per global data object (word-rounded sizes)."""
    for name, base in layout.items():
        size = (sizes[name] + 3) // 4 * 4
        mem.map_segment(name, base, size)
