"""Closure-compiled threaded-code execution engine.

The tree-walking :class:`~repro.machine.interpreter.Interpreter` decodes
every instruction on every step: opcode dispatch through an ``if`` chain,
operand field reads, attribute lookups.  This module compiles each
function once into chained Python closures and then only *runs* them:

- one closure per instruction, with operands, immediates, ALU functions,
  data-symbol addresses and speculative/save/restore attribute flags all
  pre-resolved at compile time;
- straight-line runs of instructions are batched into segments that
  account their steps with a single add (falling back to per-instruction
  accounting near the budget so :class:`ExecutionLimit` fires on exactly
  the same instruction as the interpreter, with the same final count);
- one *runner* per basic block that threads control by returning the
  successor block's runner (computed-goto style), driven by a small
  trampoline so deep block chains cost no Python stack.

Compiled code is cached per ``(function, memory model)`` and keyed by the
function's blake2b fingerprint (:mod:`repro.perf.fingerprint`), exactly
like diffcheck memoizes baselines: a direct engine revalidates
fingerprints once per run and recompiles any function whose body changed
in place, and :func:`cached_engine` (used by ``run_function``) keys whole
engines by module fingerprint over a *pinned clone* of the module so the
compiled code can never drift from the content hash.

Semantics are intended to be bit-identical to the interpreter — value,
fault class and message, step count, trace, block counts, poison events —
and the interpreter stays the ground truth: ``repro fuzz --xengine`` runs
both executors on every generated program and flags any divergence as an
engine bug.  Two cases delegate to the tree-walker outright rather than
duplicate rarely-exercised logic: ABI callee-saved checking
(``check_callee_saved=True``) and a *flat-memory* run entered with
pre-poisoned state (the flat model cannot create poison, so compiled flat
code elides all poison handling).
"""

from collections import OrderedDict
from threading import local as _ThreadLocal
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.instructions import ALU_FUNCS, ALU_RI_TO_RR, COND_FUNCS, Instr, wrap32
from repro.ir.module import Module, STACK_BASE
from repro.ir.operands import CALLEE_SAVED, CTR, RETVAL, SP, TOC, gpr
from repro.machine.interpreter import (
    ExecResult,
    Interpreter,
    MachineState,
    initialize_state,
)
from repro.machine.libcalls import LIBRARY_FUNCTIONS
from repro.machine.memory import (
    ArithmeticFault,
    ExecutionError,
    ExecutionLimit,
    MemoryFault,
    SpeculationFault,
)
from repro.perf.fingerprint import fingerprint_function, fingerprint_module

#: The executors `run_function` (and every knob threaded above it) accepts.
ENGINES = ("tree", "closure")

#: Sentinel a RET item returns to unwind the block trampoline.
_RETURNED = object()

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000
_WRAP = 0x100000000


def _raiser_op(exc_type, msg):
    """An instruction body that always raises (e.g. unknown LA symbol)."""

    def op(state, regs, mem):
        raise exc_type(msg)

    return op


def _traced_op(eng, body, pair):
    """Wrap ``body`` to append its trace entry after it executes."""

    def traced(state, regs, mem):
        body(state, regs, mem)
        eng.trace.append(pair)

    return traced


# -- instruction factories, flat model ---------------------------------------
#
# Flat-model code runs against a *dense list* register file: every Reg
# operand is resolved to an integer index at compile time (``eng._ridx``),
# so the hot path never hashes a Reg dataclass.  The list is synced from
# and back to ``state.regs`` around the run.  Flat code is compiled for
# states with no poison anywhere (runs that start poisoned delegate to
# the interpreter, and the flat model never creates poison), so these
# closures write registers directly.  Every value stored must already be
# wrapped, to keep the register-file invariant the interpreter maintains
# via ``state.set``.


def _flat_alu(eng, instr):
    opcode = instr.opcode
    rd = eng._ridx(instr.rd)
    ra = eng._ridx(instr.ra)
    rb = eng._ridx(instr.rb)
    # The hot opcodes get inline arithmetic (no lambda, no wrap32 call);
    # AND/OR/XOR of two in-range two's-complement values cannot leave
    # the range, so they skip wrapping entirely.
    if opcode == "A":

        def op(state, regs, mem):
            v = (regs[ra] + regs[rb]) & _MASK
            regs[rd] = v - _WRAP if v & _SIGN else v

    elif opcode == "S":

        def op(state, regs, mem):
            v = (regs[ra] - regs[rb]) & _MASK
            regs[rd] = v - _WRAP if v & _SIGN else v

    elif opcode == "MUL":

        def op(state, regs, mem):
            v = (regs[ra] * regs[rb]) & _MASK
            regs[rd] = v - _WRAP if v & _SIGN else v

    elif opcode == "AND":

        def op(state, regs, mem):
            regs[rd] = regs[ra] & regs[rb]

    elif opcode == "OR":

        def op(state, regs, mem):
            regs[rd] = regs[ra] | regs[rb]

    elif opcode == "XOR":

        def op(state, regs, mem):
            regs[rd] = regs[ra] ^ regs[rb]

    else:
        f = ALU_FUNCS[opcode]

        def op(state, regs, mem):
            regs[rd] = f(regs[ra], regs[rb])

    return op


def _flat_alui(eng, instr):
    func_op = ALU_RI_TO_RR[instr.opcode]
    rd = eng._ridx(instr.rd)
    ra = eng._ridx(instr.ra)
    imm = instr.imm
    if func_op == "A":

        def op(state, regs, mem):
            v = (regs[ra] + imm) & _MASK
            regs[rd] = v - _WRAP if v & _SIGN else v

    elif func_op == "S":

        def op(state, regs, mem):
            v = (regs[ra] - imm) & _MASK
            regs[rd] = v - _WRAP if v & _SIGN else v

    elif func_op == "MUL":

        def op(state, regs, mem):
            v = (regs[ra] * imm) & _MASK
            regs[rd] = v - _WRAP if v & _SIGN else v

    elif func_op == "AND" and -0x80000000 <= imm < 0x80000000:

        def op(state, regs, mem):
            regs[rd] = regs[ra] & imm

    elif func_op == "OR" and -0x80000000 <= imm < 0x80000000:

        def op(state, regs, mem):
            regs[rd] = regs[ra] | imm

    elif func_op == "XOR" and -0x80000000 <= imm < 0x80000000:

        def op(state, regs, mem):
            regs[rd] = regs[ra] ^ imm

    else:
        f = ALU_FUNCS[func_op]

        def op(state, regs, mem):
            regs[rd] = f(regs[ra], imm)

    return op


def _flat_li(eng, instr):
    rd, value = eng._ridx(instr.rd), wrap32(instr.imm)

    def op(state, regs, mem):
        regs[rd] = value

    return op


def _flat_la(eng, instr):
    addr = eng.layout.get(instr.symbol)
    if addr is None:
        return _raiser_op(ExecutionError, f"unknown data symbol {instr.symbol}")
    rd, value = eng._ridx(instr.rd), wrap32(addr)

    def op(state, regs, mem):
        regs[rd] = value

    return op


def _flat_lr(eng, instr):
    rd, ra = eng._ridx(instr.rd), eng._ridx(instr.ra)

    def op(state, regs, mem):
        regs[rd] = regs[ra]

    return op


def _flat_neg(eng, instr):
    rd, ra = eng._ridx(instr.rd), eng._ridx(instr.ra)

    def op(state, regs, mem):
        v = -regs[ra] & _MASK
        regs[rd] = v - _WRAP if v & _SIGN else v

    return op


def _flat_not(eng, instr):
    rd, ra = eng._ridx(instr.rd), eng._ridx(instr.ra)

    def op(state, regs, mem):
        v = ~regs[ra] & _MASK
        regs[rd] = v - _WRAP if v & _SIGN else v

    return op


def _flat_l(eng, instr):
    rd, base, disp = eng._ridx(instr.rd), eng._ridx(instr.base), instr.disp

    def op(state, regs, mem):
        # Re-wrap on load: library routines (memset_words) may store
        # unwrapped words, and the interpreter wraps via state.set.
        v = mem.get(regs[base] + disp, 0) & _MASK
        regs[rd] = v - _WRAP if v & _SIGN else v

    return op


def _flat_lu(eng, instr):
    rd, base, disp = eng._ridx(instr.rd), eng._ridx(instr.base), instr.disp

    def op(state, regs, mem):
        addr = regs[base] + disp
        v = mem.get(addr, 0) & _MASK
        # rd first, then the base update — the interpreter's order, so
        # rd == base resolves identically.
        regs[rd] = v - _WRAP if v & _SIGN else v
        a = addr & _MASK
        regs[base] = a - _WRAP if a & _SIGN else a

    return op


def _flat_st(eng, instr):
    ra, base, disp = eng._ridx(instr.ra), eng._ridx(instr.base), instr.disp

    def op(state, regs, mem):
        mem[regs[base] + disp] = regs[ra]

    return op


def _flat_stu(eng, instr):
    ra, base, disp = eng._ridx(instr.ra), eng._ridx(instr.base), instr.disp

    def op(state, regs, mem):
        addr = regs[base] + disp
        mem[addr] = regs[ra]
        a = addr & _MASK
        regs[base] = a - _WRAP if a & _SIGN else a

    return op


def _flat_c(eng, instr):
    ra = eng._ridx(instr.ra)
    rb = eng._ridx(instr.rb)
    crf = eng._ridx(instr.crf)

    def op(state, regs, mem):
        diff = regs[ra] - regs[rb]
        regs[crf] = (diff > 0) - (diff < 0)

    return op


def _flat_ci(eng, instr):
    ra, imm, crf = eng._ridx(instr.ra), instr.imm, eng._ridx(instr.crf)

    def op(state, regs, mem):
        diff = regs[ra] - imm
        regs[crf] = (diff > 0) - (diff < 0)

    return op


def _flat_mtctr(eng, instr):
    ra, ctr = eng._ridx(instr.ra), eng._ridx(CTR)

    def op(state, regs, mem):
        regs[ctr] = regs[ra]

    return op


def _flat_mfctr(eng, instr):
    rd, ctr = eng._ridx(instr.rd), eng._ridx(CTR)

    def op(state, regs, mem):
        regs[rd] = regs[ctr]

    return op


def _flat_nop(eng, instr):
    def op(state, regs, mem):
        pass

    return op


# -- instruction factories, faulting (paged) model ---------------------------
#
# These mirror the interpreter's paged semantics through the state
# methods (set/taint/is_poisoned) so poison bookkeeping — including
# poison_events seeding and mem_poison carry — stays shared code.


def _fault_alu(eng, instr):
    func_op = instr.opcode
    f = ALU_FUNCS[func_op]
    rd, ra, rb = instr.rd, instr.ra, instr.rb
    if func_op == "DIV":
        speculative = bool(instr.attrs.get("speculative"))
        msg = f"division by zero ({instr.opcode})"

        def op(state, regs, mem):
            if state.is_poisoned(ra, rb):
                state.taint(rd)
                return
            b = regs.get(rb, 0)
            if b == 0:
                if speculative:
                    state.taint(rd, seed=True)
                    return
                raise ArithmeticFault(msg)
            state.set(rd, f(regs.get(ra, 0), b))

        return op

    def op(state, regs, mem):
        if state.is_poisoned(ra, rb):
            state.taint(rd)
        else:
            state.set(rd, f(regs.get(ra, 0), regs.get(rb, 0)))

    return op


def _fault_alui(eng, instr):
    func_op = ALU_RI_TO_RR[instr.opcode]
    f = ALU_FUNCS[func_op]
    rd, ra, imm = instr.rd, instr.ra, instr.imm
    if func_op == "DIV" and imm == 0:
        speculative = bool(instr.attrs.get("speculative"))
        msg = f"division by zero ({instr.opcode})"

        def op(state, regs, mem):
            if state.is_poisoned(ra):
                state.taint(rd)
            elif speculative:
                state.taint(rd, seed=True)
            else:
                raise ArithmeticFault(msg)

        return op

    def op(state, regs, mem):
        if state.is_poisoned(ra):
            state.taint(rd)
        else:
            state.set(rd, f(regs.get(ra, 0), imm))

    return op


def _fault_li(eng, instr):
    rd, imm = instr.rd, instr.imm

    def op(state, regs, mem):
        state.set(rd, imm)

    return op


def _fault_la(eng, instr):
    addr = eng.layout.get(instr.symbol)
    if addr is None:
        return _raiser_op(ExecutionError, f"unknown data symbol {instr.symbol}")
    rd = instr.rd

    def op(state, regs, mem):
        state.set(rd, addr)

    return op


def _fault_lr(eng, instr):
    rd, ra = instr.rd, instr.ra

    def op(state, regs, mem):
        if state.is_poisoned(ra):
            state.taint(rd)
        else:
            state.set(rd, regs.get(ra, 0))

    return op


def _fault_neg(eng, instr):
    rd, ra = instr.rd, instr.ra

    def op(state, regs, mem):
        if state.is_poisoned(ra):
            state.taint(rd)
        else:
            state.set(rd, -regs.get(ra, 0))

    return op


def _fault_not(eng, instr):
    rd, ra = instr.rd, instr.ra

    def op(state, regs, mem):
        if state.is_poisoned(ra):
            state.taint(rd)
        else:
            state.set(rd, ~regs.get(ra, 0))

    return op


def _fault_l(eng, instr):
    rd, base, disp = instr.rd, instr.base, instr.disp
    speculative = bool(instr.attrs.get("speculative"))
    restore = bool(instr.attrs.get("restore"))

    def op(state, regs, mem):
        if state.is_poisoned(base):
            # The effective address is unknowable: defer further.
            state.taint(rd)
            return
        addr = regs.get(base, 0) + disp
        try:
            value = mem.load(addr)
        except MemoryFault:
            if speculative:
                state.taint(rd, seed=True)
                return
            raise
        if state.mem_poison and addr in state.mem_poison and restore:
            # Fill of a spilled token: re-poison the register
            # (propagation, not a fresh event).
            state.taint(rd)
        else:
            state.set(rd, value)

    return op


def _fault_lu(eng, instr):
    rd, base, disp = instr.rd, instr.base, instr.disp
    speculative = bool(instr.attrs.get("speculative"))

    def op(state, regs, mem):
        if state.is_poisoned(base):
            state.taint(rd)
            state.taint(base)
            return
        addr = regs.get(base, 0) + disp
        try:
            value = mem.load(addr)
        except MemoryFault:
            if not speculative:
                raise
            state.taint(rd, seed=True)
        else:
            state.set(rd, value)
        state.set(base, addr)

    return op


def _fault_st(eng, instr):
    ra, base, disp = instr.ra, instr.base, instr.disp
    save = bool(instr.attrs.get("save"))
    msg = f"poison reached a store ({instr.opcode})"

    def op(state, regs, mem):
        if save and state.is_poisoned(ra):
            # Register spill of a poisoned value: preserve the token
            # through memory instead of trapping (IA-64 st8.spill).
            if state.is_poisoned(base):
                raise SpeculationFault(msg)
            addr = regs.get(base, 0) + disp
            mem[addr] = regs.get(ra, 0)
            state.mem_poison.add(addr)
            return
        if state.is_poisoned(ra, base):
            raise SpeculationFault(msg)
        addr = regs.get(base, 0) + disp
        mem[addr] = regs.get(ra, 0)
        if state.mem_poison:
            state.mem_poison.discard(addr)

    return op


def _fault_stu(eng, instr):
    ra, base, disp = instr.ra, instr.base, instr.disp
    msg = f"poison reached a store ({instr.opcode})"

    def op(state, regs, mem):
        if state.is_poisoned(ra, base):
            raise SpeculationFault(msg)
        addr = regs.get(base, 0) + disp
        mem[addr] = regs.get(ra, 0)
        if state.mem_poison:
            state.mem_poison.discard(addr)
        state.set(base, addr)

    return op


def _fault_c(eng, instr):
    ra, rb, crf = instr.ra, instr.rb, instr.crf

    def op(state, regs, mem):
        if state.is_poisoned(ra, rb):
            state.taint(crf)
        else:
            diff = regs.get(ra, 0) - regs.get(rb, 0)
            state.set(crf, (diff > 0) - (diff < 0))

    return op


def _fault_ci(eng, instr):
    ra, imm, crf = instr.ra, instr.imm, instr.crf

    def op(state, regs, mem):
        if state.is_poisoned(ra):
            state.taint(crf)
        else:
            diff = regs.get(ra, 0) - imm
            state.set(crf, (diff > 0) - (diff < 0))

    return op


def _fault_mtctr(eng, instr):
    ra = instr.ra

    def op(state, regs, mem):
        if state.is_poisoned(ra):
            state.taint(CTR)
        else:
            state.set(CTR, regs.get(ra, 0))

    return op


def _fault_mfctr(eng, instr):
    rd = instr.rd

    def op(state, regs, mem):
        if state.is_poisoned(CTR):
            state.taint(rd)
        else:
            state.set(rd, regs.get(CTR, 0))

    return op


#: opcode -> factory(engine, instr) -> closure(state, regs, mem), for the
#: two memory models. Module-level and mutable on purpose: the xengine
#: oracle tests inject a wrong factory here to prove the cross-check
#: campaign catches real engine bugs.
_FLAT_FACTORIES = {}
_FAULT_FACTORIES = {}

for _op in ALU_FUNCS:
    _FLAT_FACTORIES[_op] = _flat_alu
    _FAULT_FACTORIES[_op] = _fault_alu
for _op in ALU_RI_TO_RR:
    _FLAT_FACTORIES[_op] = _flat_alui
    _FAULT_FACTORIES[_op] = _fault_alui
del _op

_FLAT_FACTORIES.update(
    LI=_flat_li, LA=_flat_la, LR=_flat_lr, NEG=_flat_neg, NOT=_flat_not,
    L=_flat_l, LU=_flat_lu, ST=_flat_st, STU=_flat_stu, C=_flat_c,
    CI=_flat_ci, MTCTR=_flat_mtctr, MFCTR=_flat_mfctr, NOP=_flat_nop,
)
_FAULT_FACTORIES.update(
    LI=_fault_li, LA=_fault_la, LR=_fault_lr, NEG=_fault_neg,
    NOT=_fault_not, L=_fault_l, LU=_fault_lu, ST=_fault_st,
    STU=_fault_stu, C=_fault_c, CI=_fault_ci, MTCTR=_fault_mtctr,
    MFCTR=_fault_mfctr, NOP=_flat_nop,
)


class _FnCode:
    """Compiled form of one function: block runners plus the entry."""

    __slots__ = ("fn_name", "entry", "runners")

    def __init__(self, fn_name: str):
        self.fn_name = fn_name
        self.entry = None
        self.runners: List = []


class ClosureEngine:
    """Drop-in executor with the Interpreter's public surface.

    ``pin_module=True`` compiles from a private clone of the module (used
    by the fingerprint-keyed engine cache, where the key *is* the content
    hash); the default revalidates per-function fingerprints once per run
    and recompiles anything that changed in place.
    """

    MAX_CALL_DEPTH = Interpreter.MAX_CALL_DEPTH

    def __init__(
        self,
        module: Module,
        max_steps: int = 2_000_000,
        record_trace: bool = False,
        count_blocks: bool = False,
        check_callee_saved: bool = False,
        pin_module: bool = False,
    ):
        self.module = module.clone() if pin_module else module
        self.layout = self.module.layout()
        self.max_steps = max_steps
        self.record_trace = record_trace
        self.count_blocks = count_blocks
        self.check_callee_saved = check_callee_saved
        self.steps = 0
        self.trace: List[Tuple[Instr, Optional[bool]]] = []
        self.block_counts: Dict[Tuple[str, str], int] = {}
        self.faulting = False
        self._pinned = pin_module
        #: (fn name, faulting) -> (fingerprint, _FnCode)
        self._codes: Dict[Tuple[str, bool], Tuple[str, _FnCode]] = {}
        #: cache keys revalidated during the current run
        self._validated: set = set()
        self._retval = 0
        #: lazily folded flat-memory data image: ((addr, word), ...)
        self._data_words: Optional[Tuple[Tuple[int, int], ...]] = None
        #: Reg -> dense index into the flat-model list register file.
        #: Linkage registers are pre-registered so any caller-provided
        #: initial state syncs in even before code references them.
        self._reg_index: Dict = {}
        #: live list register file of the current flat-model run
        self._rfile: Optional[List[int]] = None
        #: state of the current run (seeds indices registered mid-run)
        self._run_state: Optional[MachineState] = None
        for _reg in (SP, TOC, CTR, RETVAL):
            self._ridx(_reg)
        for _i in range(3, 11):
            self._ridx(gpr(_i))
        for _reg in CALLEE_SAVED:
            self._ridx(_reg)

    # -- public API ----------------------------------------------------------

    def run(
        self,
        fn_name: str,
        args: Iterable[int] = (),
        state: Optional[MachineState] = None,
    ) -> ExecResult:
        # Per-run reset: this engine is *designed* to be reused across
        # runs, which is exactly what made the interpreter's missing
        # reset a live bug.
        self.steps = 0
        self.trace = []
        self.block_counts = {}
        self._retval = 0
        state = state if state is not None else MachineState()
        faulting = bool(getattr(state.mem, "faulting", False))
        if self.check_callee_saved or (
            not faulting and (state.poison or state.mem_poison)
        ):
            # Rare contracts the compiled flat code does not model:
            # delegate the whole run to the ground-truth tree-walker.
            return self._run_tree(fn_name, args, state)
        self.faulting = faulting
        fn = self.module.functions[fn_name]
        self._validated.clear()
        if faulting:
            initialize_state(state, args, fn, self.layout, self.module, faulting)
            value = self._exec_code(self._code_for(fn_name), state, 0)
        else:
            self._init_flat(state, args, fn)
            value = self._run_flat(fn_name, state)
        return ExecResult(
            value,
            self.steps,
            self.trace if self.record_trace else None,
            self.block_counts if self.count_blocks else None,
            state,
        )

    def _init_flat(self, state: MachineState, args: Iterable[int], fn) -> None:
        """Flat-model twin of :func:`initialize_state`.

        Same writes and the same error messages, but the data-section
        image is folded once into ``(addr, word)`` pairs instead of
        being re-derived from the layout on every run.  Stale-layout
        semantics match a reused :class:`Interpreter` (both snapshot the
        layout at construction); fingerprint-cached engines are pinned,
        so their image can never drift from the content hash.
        """
        regs = state.regs
        regs[SP] = STACK_BASE
        regs[TOC] = 0x8000
        args = list(args)
        if fn is not None and fn.params:
            if len(args) > len(fn.params):
                raise ExecutionError(
                    f"{fn.name} takes {len(fn.params)} args, got {len(args)}"
                )
            for reg, value in zip(fn.params, args):
                regs[reg] = wrap32(value)
        else:
            for i, value in enumerate(args):
                if i >= 8:
                    raise ExecutionError("more than 8 arguments not supported")
                regs[gpr(3 + i)] = wrap32(value)
        words = self._data_words
        if words is None:
            words = self._data_words = tuple(
                (addr + 4 * i, wrap32(word))
                for name, addr in self.layout.items()
                for i, word in enumerate(self.module.data[name].init)
            )
        mem = state.mem
        for addr, word in words:
            mem[addr] = word

    # -- flat-model register file --------------------------------------------

    def _ridx(self, reg) -> int:
        """Dense index of ``reg`` in the list register file.

        New registers can be discovered mid-run (a callee compiled
        lazily on its first call): the live register file is extended
        with the register's initial value, which is still exactly what
        the state dict holds — only indexed registers are ever written
        during a run.
        """
        idx = self._reg_index
        i = idx.get(reg)
        if i is None:
            i = len(idx)
            idx[reg] = i
            rfile = self._rfile
            if rfile is not None and len(rfile) <= i:
                run_state = self._run_state
                rfile.append(
                    run_state.regs.get(reg, 0) if run_state is not None else 0
                )
        return i

    def _run_flat(self, fn_name: str, state: MachineState) -> int:
        idx = self._reg_index
        rfile = [0] * len(idx)
        sregs = state.regs
        for reg, val in sregs.items():
            i = idx.get(reg)
            if i is not None:
                rfile[i] = val
        self._rfile = rfile
        self._run_state = state
        try:
            return self._exec_code(self._code_for(fn_name), state, 0)
        finally:
            # Publish the register file back into the state dict (for
            # faults too — observers may read registers afterwards).
            # Only registers the run could have written are updated, so
            # unindexed dict entries survive untouched; zero-valued
            # registers with no dict entry stay absent, matching the
            # interpreter's lazily-populated dict.
            for reg, i in idx.items():
                v = rfile[i]
                if v or reg in sregs:
                    sregs[reg] = v
            self._rfile = None
            self._run_state = None

    # -- code cache ----------------------------------------------------------

    def _code_for(self, name: str) -> _FnCode:
        key = (name, self.faulting)
        cached = self._codes.get(key)
        if cached is not None and key in self._validated:
            return cached[1]
        fn = self.module.functions[name]
        if self._pinned:
            # Content is frozen by the construction-time clone; the
            # cache key at the engine-cache layer is the module hash.
            self._validated.add(key)
            if cached is None:
                code = self._compile_fn(fn)
                self._codes[key] = ("", code)
                return code
            return cached[1]
        fp = fingerprint_function(fn)
        if cached is not None and cached[0] == fp:
            self._validated.add(key)
            return cached[1]
        code = self._compile_fn(fn)
        self._codes[key] = (fp, code)
        self._validated.add(key)
        return code

    # -- execution -----------------------------------------------------------

    def _exec_code(self, code: _FnCode, state: MachineState, depth: int) -> int:
        if depth > self.MAX_CALL_DEPTH:
            raise ExecutionError(f"call depth exceeded entering {code.fn_name}")
        runner = code.entry
        while runner is not _RETURNED:
            runner = runner(state, depth)
        return self._retval

    def _run_tree(self, fn_name, args, state) -> ExecResult:
        interp = Interpreter(
            self.module,
            max_steps=self.max_steps,
            record_trace=self.record_trace,
            count_blocks=self.count_blocks,
            check_callee_saved=self.check_callee_saved,
        )
        try:
            return interp.run(fn_name, args, state)
        finally:
            self.steps = interp.steps
            self.trace = interp.trace
            self.block_counts = interp.block_counts
            self.faulting = interp.faulting

    # -- compilation ---------------------------------------------------------

    def _compile_fn(self, fn) -> _FnCode:
        code = _FnCode(fn.name)
        labels = {bb.label: i for i, bb in enumerate(fn.blocks)}
        code.runners.extend(None for _ in fn.blocks)
        for bi, bb in enumerate(fn.blocks):
            code.runners[bi] = self._compile_block(code, fn, bi, bb, labels)
        if code.runners:
            code.entry = code.runners[0]
        else:
            fn_name = fn.name

            def empty_entry(state, depth):
                raise ExecutionError(f"fell off the end of {fn_name}")

            code.entry = empty_entry
        return code

    def _compile_block(self, code, fn, bi, bb, labels):
        eng = self
        fn_name = fn.name

        # Where execution goes when it walks past the last instruction.
        if bb.falls_through:
            if bi + 1 < len(fn.blocks):
                tail_idx: Optional[int] = bi + 1
                tail_msg = None
            else:
                tail_idx = None
                tail_msg = f"fell off the end of {fn_name}"
        else:
            tail_idx = None
            tail_msg = f"fell through a non-fallthrough block {bb.label}"

        body = self._generic_block_body(code, fn, bb, labels, tail_idx, tail_msg)
        if not self.faulting:
            fused = self._fused_block_body(
                code, fn, bb, labels, tail_idx, tail_msg, body
            )
            if fused is not None:
                body = fused
        if self.count_blocks:
            key = (fn_name, bb.label)
            inner = body

            def body(state, depth):
                bc = eng.block_counts
                bc[key] = bc.get(key, 0) + 1
                return inner(state, depth)

        return body

    def _generic_block_body(self, code, fn, bb, labels, tail_idx, tail_msg):
        """Item-based runner: handles every instruction mix, and is the
        near-step-budget fallback with exact per-instruction accounting."""
        eng = self
        fn_name = fn.name
        record_trace = self.record_trace
        factories = _FAULT_FACTORIES if self.faulting else _FLAT_FACTORIES
        items = []
        seg_ops: List = []

        def flush():
            if seg_ops:
                items.append(_make_segment(eng, fn_name, tuple(seg_ops)))
                seg_ops.clear()

        for instr in bb.instrs:
            op = instr.opcode
            if op == "CALL":
                flush()
                items.append(self._make_call_item(instr, fn_name))
            elif op == "RET":
                flush()
                items.append(self._make_ret_item(instr, fn_name))
            elif op == "B":
                flush()
                items.append(self._make_b_item(code, instr, fn_name, labels))
            elif op == "BT" or op == "BF":
                flush()
                items.append(self._make_cond_item(code, instr, fn_name, labels))
            elif op == "BCT":
                flush()
                items.append(self._make_bct_item(code, instr, fn_name, labels))
            else:
                factory = factories.get(op)
                if factory is None:  # pragma: no cover - verifier rejects these
                    body = _raiser_op(ExecutionError, f"cannot execute opcode {op}")
                else:
                    body = factory(self, instr)
                if record_trace:
                    body = _traced_op(self, body, (instr, None))
                seg_ops.append(body)
        flush()
        items = tuple(items)
        runners = code.runners

        if self.faulting:

            def runner(state, depth):
                regs = state.regs
                mem = state.mem
                for item in items:
                    nxt = item(state, regs, mem, depth)
                    if nxt is not None:
                        return nxt
                if tail_idx is not None:
                    return runners[tail_idx]
                raise ExecutionError(tail_msg)

        else:

            def runner(state, depth):
                regs = eng._rfile
                mem = state.mem
                for item in items:
                    nxt = item(state, regs, mem, depth)
                    if nxt is not None:
                        return nxt
                if tail_idx is not None:
                    return runners[tail_idx]
                raise ExecutionError(tail_msg)

        return runner

    def _fused_block_body(self, code, fn, bb, labels, tail_idx, tail_msg, generic):
        """One closure for the whole block — the flat-model fast path.

        Applies to the common shape: straight-line ops with at most one
        terminator at the end, no CALL, nothing that can raise.  Steps
        are claimed with a single add; near the budget (or for any shape
        this fast path does not model) control bails to ``generic``,
        which re-executes the block from the top with exact
        per-instruction accounting — sound because the fast path bails
        before executing anything.
        """
        eng = self
        record_trace = self.record_trace
        instrs = list(bb.instrs)
        term = None
        if instrs and instrs[-1].opcode in ("B", "BT", "BF", "BCT", "RET"):
            term = instrs[-1]
            instrs = instrs[:-1]
        ops = []
        for instr in instrs:
            op = instr.opcode
            if op in ("CALL", "RET", "B", "BT", "BF", "BCT"):
                return None  # mid-block control: generic path handles it
            factory = _FLAT_FACTORIES.get(op)
            if factory is None:
                return None  # unknown opcode raises: needs exact stepping
            if op == "LA" and instr.symbol not in self.layout:
                return None  # raiser op: needs exact stepping
            ops.append(factory(self, instr))
        ops = tuple(ops)
        # Fused flat ops cannot raise, so their straight-line trace
        # entries can be batched into one extend after the op loop.
        pairs = tuple((instr, None) for instr in instrs)
        n = len(ops) + (1 if term is not None else 0)
        if n == 0:
            return None
        runners = code.runners

        if term is None:
            if tail_idx is None:
                return None  # raising tail: rare, generic handles it

            def body(state, depth):
                new = eng.steps + n
                if new > eng.max_steps:
                    return generic(state, depth)
                eng.steps = new
                regs = eng._rfile
                mem = state.mem
                for op in ops:
                    op(state, regs, mem)
                if record_trace:
                    eng.trace.extend(pairs)
                return runners[tail_idx]

            return body

        opcode = term.opcode
        if opcode == "RET":
            iret = self._ridx(RETVAL)
            pair = (term, None)

            def body(state, depth):
                new = eng.steps + n
                if new > eng.max_steps:
                    return generic(state, depth)
                eng.steps = new
                regs = eng._rfile
                mem = state.mem
                for op in ops:
                    op(state, regs, mem)
                if record_trace:
                    eng.trace.extend(pairs)
                    eng.trace.append(pair)
                eng._retval = regs[iret]
                return _RETURNED

            return body

        ti = labels.get(term.target)
        if ti is None:
            return None  # dangling target raises: generic path

        if opcode == "B":
            pair = (term, True)

            def body(state, depth):
                new = eng.steps + n
                if new > eng.max_steps:
                    return generic(state, depth)
                eng.steps = new
                regs = eng._rfile
                mem = state.mem
                for op in ops:
                    op(state, regs, mem)
                if record_trace:
                    eng.trace.extend(pairs)
                    eng.trace.append(pair)
                return runners[ti]

            return body

        pair_t = (term, True)
        pair_f = (term, False)

        if opcode == "BCT":
            ictr = self._ridx(CTR)

            def body(state, depth):
                new = eng.steps + n
                if new > eng.max_steps:
                    return generic(state, depth)
                eng.steps = new
                regs = eng._rfile
                mem = state.mem
                for op in ops:
                    op(state, regs, mem)
                v = (regs[ictr] - 1) & _MASK
                v = v - _WRAP if v & _SIGN else v
                regs[ictr] = v
                if record_trace:
                    eng.trace.extend(pairs)
                    eng.trace.append(pair_t if v != 0 else pair_f)
                if v != 0:
                    return runners[ti]
                if tail_idx is not None:
                    return runners[tail_idx]
                raise ExecutionError(tail_msg)

            return body

        # BT / BF
        icrf = self._ridx(term.crf)
        cond_f = COND_FUNCS[term.cond]
        is_bt = opcode == "BT"

        def body(state, depth):
            new = eng.steps + n
            if new > eng.max_steps:
                return generic(state, depth)
            eng.steps = new
            regs = eng._rfile
            mem = state.mem
            for op in ops:
                op(state, regs, mem)
            holds = cond_f(regs[icrf])
            taken = holds if is_bt else not holds
            if record_trace:
                eng.trace.extend(pairs)
                eng.trace.append(pair_t if taken else pair_f)
            if taken:
                return runners[ti]
            if tail_idx is not None:
                return runners[tail_idx]
            raise ExecutionError(tail_msg)

        return body

    # -- control-flow items --------------------------------------------------

    def _make_call_item(self, instr, fn_name):
        eng = self
        symbol = instr.symbol
        functions = self.module.functions
        faulting = self.faulting
        record_trace = self.record_trace
        pair = (instr, None)
        limit_msg = f"step budget exhausted in {fn_name}"
        unknown_msg = f"call to unknown function {symbol}"
        lib_msg = f"poison reached library call {symbol} ({instr.opcode})"
        lib = LIBRARY_FUNCTIONS.get(symbol)
        impl = lib.impl if lib is not None else None
        arg_regs = tuple(gpr(3 + i) for i in range(lib.nargs)) if lib else ()

        if faulting:

            def item(state, regs, mem, depth):
                steps = eng.steps + 1
                eng.steps = steps
                if steps > eng.max_steps:
                    raise ExecutionLimit(limit_msg)
                if symbol in functions:
                    value = eng._exec_code(
                        eng._code_for(symbol), state, depth + 1
                    )
                    state.set(RETVAL, value)
                elif impl is None:
                    raise ExecutionError(unknown_msg)
                else:
                    # A library call is a non-speculative side effect
                    # (I/O, memory writes): poisoned arguments must not
                    # leak in.
                    if state.is_poisoned(*arg_regs):
                        raise SpeculationFault(lib_msg)
                    args = [regs.get(r, 0) for r in arg_regs]
                    result = impl(state, args)
                    if result is not None:
                        state.set(RETVAL, result)
                if record_trace:
                    eng.trace.append(pair)
                return None

            return item

        iret = self._ridx(RETVAL)
        arg_idx = tuple(self._ridx(r) for r in arg_regs)
        max_depth = self.MAX_CALL_DEPTH
        depth_msg = f"call depth exceeded entering {symbol}"

        def item(state, regs, mem, depth):
            steps = eng.steps + 1
            eng.steps = steps
            if steps > eng.max_steps:
                raise ExecutionLimit(limit_msg)
            if symbol in functions:
                # Inlined trampoline (hot path): one Python frame per
                # call instead of two.
                code = eng._code_for(symbol)
                if depth >= max_depth:
                    raise ExecutionError(depth_msg)
                d1 = depth + 1
                runner = code.entry
                while runner is not _RETURNED:
                    runner = runner(state, d1)
                regs[iret] = eng._retval
            elif impl is None:
                raise ExecutionError(unknown_msg)
            else:
                args = [regs[i] for i in arg_idx]
                result = impl(state, args)
                if result is not None:
                    v = result & _MASK
                    regs[iret] = v - _WRAP if v & _SIGN else v
            if record_trace:
                eng.trace.append(pair)
            return None

        return item

    def _make_ret_item(self, instr, fn_name):
        eng = self
        faulting = self.faulting
        record_trace = self.record_trace
        pair = (instr, None)
        limit_msg = f"step budget exhausted in {fn_name}"
        ret_msg = f"poison reached a return value ({instr.opcode})"

        if faulting:

            def item(state, regs, mem, depth):
                steps = eng.steps + 1
                eng.steps = steps
                if steps > eng.max_steps:
                    raise ExecutionLimit(limit_msg)
                if state.is_poisoned(RETVAL, SP):
                    raise SpeculationFault(ret_msg)
                if record_trace:
                    eng.trace.append(pair)
                eng._retval = regs.get(RETVAL, 0)
                return _RETURNED

            return item

        iret = self._ridx(RETVAL)

        def item(state, regs, mem, depth):
            steps = eng.steps + 1
            eng.steps = steps
            if steps > eng.max_steps:
                raise ExecutionLimit(limit_msg)
            if record_trace:
                eng.trace.append(pair)
            eng._retval = regs[iret]
            return _RETURNED

        return item

    def _make_b_item(self, code, instr, fn_name, labels):
        eng = self
        runners = code.runners
        ti = labels.get(instr.target)
        record_trace = self.record_trace
        pair = (instr, True)
        limit_msg = f"step budget exhausted in {fn_name}"
        dangling_msg = f"dangling branch target {instr.target}"

        def item(state, regs, mem, depth):
            steps = eng.steps + 1
            eng.steps = steps
            if steps > eng.max_steps:
                raise ExecutionLimit(limit_msg)
            if record_trace:
                eng.trace.append(pair)
            if ti is None:
                raise ExecutionError(dangling_msg)
            return runners[ti]

        return item

    def _make_cond_item(self, code, instr, fn_name, labels):
        eng = self
        runners = code.runners
        ti = labels.get(instr.target)
        cond_f = COND_FUNCS[instr.cond]
        crf = instr.crf
        is_bt = instr.opcode == "BT"
        faulting = self.faulting
        record_trace = self.record_trace
        pair_t = (instr, True)
        pair_f = (instr, False)
        limit_msg = f"step budget exhausted in {fn_name}"
        branch_msg = f"poison reached a conditional branch ({instr.opcode})"
        dangling_msg = f"dangling branch target {instr.target}"

        if faulting:

            def item(state, regs, mem, depth):
                steps = eng.steps + 1
                eng.steps = steps
                if steps > eng.max_steps:
                    raise ExecutionLimit(limit_msg)
                if state.is_poisoned(crf):
                    raise SpeculationFault(branch_msg)
                holds = cond_f(regs.get(crf, 0))
                taken = holds if is_bt else not holds
                if record_trace:
                    eng.trace.append(pair_t if taken else pair_f)
                if taken:
                    if ti is None:
                        raise ExecutionError(dangling_msg)
                    return runners[ti]
                return None

            return item

        icrf = self._ridx(crf)

        def item(state, regs, mem, depth):
            steps = eng.steps + 1
            eng.steps = steps
            if steps > eng.max_steps:
                raise ExecutionLimit(limit_msg)
            holds = cond_f(regs[icrf])
            taken = holds if is_bt else not holds
            if record_trace:
                eng.trace.append(pair_t if taken else pair_f)
            if taken:
                if ti is None:
                    raise ExecutionError(dangling_msg)
                return runners[ti]
            return None

        return item

    def _make_bct_item(self, code, instr, fn_name, labels):
        eng = self
        runners = code.runners
        ti = labels.get(instr.target)
        faulting = self.faulting
        record_trace = self.record_trace
        pair_t = (instr, True)
        pair_f = (instr, False)
        limit_msg = f"step budget exhausted in {fn_name}"
        branch_msg = f"poison reached a conditional branch ({instr.opcode})"
        dangling_msg = f"dangling branch target {instr.target}"

        if faulting:

            def item(state, regs, mem, depth):
                steps = eng.steps + 1
                eng.steps = steps
                if steps > eng.max_steps:
                    raise ExecutionLimit(limit_msg)
                if state.is_poisoned(CTR):
                    raise SpeculationFault(branch_msg)
                state.set(CTR, regs.get(CTR, 0) - 1)
                taken = regs.get(CTR, 0) != 0
                if record_trace:
                    eng.trace.append(pair_t if taken else pair_f)
                if taken:
                    if ti is None:
                        raise ExecutionError(dangling_msg)
                    return runners[ti]
                return None

        else:
            ictr = self._ridx(CTR)

            def item(state, regs, mem, depth):
                steps = eng.steps + 1
                eng.steps = steps
                if steps > eng.max_steps:
                    raise ExecutionLimit(limit_msg)
                v = (regs[ictr] - 1) & _MASK
                v = v - _WRAP if v & _SIGN else v
                regs[ictr] = v
                if record_trace:
                    eng.trace.append(pair_t if v != 0 else pair_f)
                if v != 0:
                    if ti is None:
                        raise ExecutionError(dangling_msg)
                    return runners[ti]
                return None

        return item


def _make_segment(eng, fn_name, ops):
    """Batch a straight-line run of closures behind one step-budget add."""
    limit_msg = f"step budget exhausted in {fn_name}"
    if len(ops) == 1:
        op0 = ops[0]

        def item(state, regs, mem, depth):
            steps = eng.steps + 1
            eng.steps = steps
            if steps > eng.max_steps:
                raise ExecutionLimit(limit_msg)
            op0(state, regs, mem)
            return None

        return item

    n = len(ops)

    def item(state, regs, mem, depth):
        steps0 = eng.steps
        new = steps0 + n
        if new > eng.max_steps:
            # Near the budget: fall back to per-instruction accounting
            # so the limit fires on exactly the interpreter's step.
            limit = eng.max_steps
            s = steps0
            for op in ops:
                s += 1
                eng.steps = s
                if s > limit:
                    raise ExecutionLimit(limit_msg)
                op(state, regs, mem)
            return None
        eng.steps = new
        i = 0
        try:
            for op in ops:
                op(state, regs, mem)
                i += 1
        except BaseException:
            # A fault mid-segment: report the interpreter's exact count
            # (instructions started, including the faulting one).
            eng.steps = steps0 + i + 1
            raise
        return None

    return item


# -- fingerprint-keyed engine cache ------------------------------------------

#: Engines kept per thread; compiled code is tiny next to the modules
#: themselves and 64 entries comfortably covers a fuzz sweep's configs.
_ENGINE_CACHE_CAPACITY = 64
_tls = _ThreadLocal()


def cached_engine(
    module: Module,
    max_steps: int = 2_000_000,
    record_trace: bool = False,
    count_blocks: bool = False,
    check_callee_saved: bool = False,
) -> ClosureEngine:
    """A compiled engine for ``module``, keyed by its content hash.

    The cache is thread-local (engines hold per-run mutable state) and
    FIFO-bounded. Invalidation is the fingerprint itself: any in-place
    edit to the module changes the key, exactly like diffcheck baseline
    memoization.
    """
    cache = getattr(_tls, "engines", None)
    if cache is None:
        cache = _tls.engines = OrderedDict()
    key = (
        fingerprint_module(module),
        max_steps,
        record_trace,
        count_blocks,
        check_callee_saved,
    )
    eng = cache.get(key)
    if eng is None:
        eng = ClosureEngine(
            module,
            max_steps=max_steps,
            record_trace=record_trace,
            count_blocks=count_blocks,
            check_callee_saved=check_callee_saved,
            pin_module=True,
        )
        cache[key] = eng
        while len(cache) > _ENGINE_CACHE_CAPACITY:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return eng


def clear_engine_cache() -> None:
    """Drop this thread's cached engines (tests, fault injection)."""
    cache = getattr(_tls, "engines", None)
    if cache is not None:
        cache.clear()
