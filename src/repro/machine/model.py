"""Parameterised in-order superscalar machine models.

The timing rules are calibrated so that the paper's annotated cycle counts
reproduce. On the RS/6000 preset the paper's original ``xlygetvalue`` loop
(SPEC li) times at exactly the 11 cycles per iteration the paper reports:

- a load's result is usable ``load_latency`` (2) cycles after issue
  (one delay slot),
- a *taken* conditional branch must wait until ``cmp_to_branch`` (4)
  cycles after the compare that set its condition register ("three
  independent instructions between a compare and a dependent conditional
  branch"), while a correctly-predicted *untaken* branch is free,
- branches are folded by the branch unit: the branch target instruction
  may issue in the same cycle as the taken branch,
- an unconditional branch costs ``uncond_base_cost`` plus a stall that
  ramps up when it issues within ``cond_uncond_window`` non-branch
  instructions of a conditional branch (the RS/6000 stall that motivates
  basic block expansion),
- ``int`` and ``mem`` operations may share one pool of fixed-point units
  (the RS/6000's single FXU handles both).
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineModel:
    """Timing parameters of an in-order superscalar."""

    name: str = "generic"
    issue_width: int = 4
    fxu_units: int = 1  # shared integer/memory pipes when shared_fxu
    int_units: int = 1
    mem_units: int = 1
    branch_units: int = 1
    shared_fxu: bool = True
    alu_latency: int = 1
    load_latency: int = 2
    cmp_to_branch: int = 4
    ctr_to_branch: int = 4
    uncond_base_cost: int = 1
    cond_uncond_window: int = 4
    call_penalty: int = 1
    ret_penalty: int = 1
    library_call_cost: int = 20

    def with_changes(self, **kwargs) -> "MachineModel":
        return replace(self, **kwargs)


#: RS/6000 (POWER, e.g. model 580): one FXU shared by integer and memory
#: operations, one branch unit, four-wide fetch.
RS6000 = MachineModel(
    name="rs6000",
    issue_width=4,
    fxu_units=1,
    shared_fxu=True,
)

#: Power2-like: two FXUs, wider issue, slightly cheaper branches.
POWER2 = MachineModel(
    name="power2",
    issue_width=6,
    fxu_units=2,
    shared_fxu=True,
)

#: PowerPC 601-like: narrower fetch, single integer unit, longer
#: compare-to-branch distance.
PPC601 = MachineModel(
    name="ppc601",
    issue_width=3,
    fxu_units=1,
    shared_fxu=True,
    cmp_to_branch=5,
    uncond_base_cost=2,
)

PRESETS = {m.name: m for m in (RS6000, POWER2, PPC601)}
