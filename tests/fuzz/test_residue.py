"""The call-residue contract: checker, generator repair, reducer guard.

Regression for the fuzzer's own bug: seed 254 read ``r9`` at a loop
header whose loop-carried path crossed a ``CALL`` — DCE then deleted
the callee's dead writes, changed the residue, and the oracle blamed
the compiler for a program with no defined behaviour.
"""

import pytest

from repro.fuzz.driver import signature_predicate
from repro.fuzz.generate import GenConfig, generate_module, generate_source
from repro.fuzz.oracle import Finding, OracleConfig
from repro.fuzz.residue import call_residue_violations, reads_call_residue
from repro.ir import format_module, parse_module

DATA = "data d0: size=16 init=[1, 2, 3, 4]\n\n"


def violations(text):
    return call_residue_violations(parse_module(DATA + text))


class TestChecker:
    def test_read_after_real_call_is_a_violation(self):
        v = violations(
            "func f0(r3):\n"
            "    LI r4, 7\n"
            "    CALL f1, 1\n"
            "    A r5, r4, r4\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )
        assert [str(x.reg) for x in v] == ["r4"]
        assert v[0].fn == "f0"

    def test_retval_after_call_is_defined(self):
        assert not violations(
            "func f0(r3):\n"
            "    CALL f1, 1\n"
            "    A r3, r3, r3\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )

    def test_library_calls_are_not_hazard_sources(self):
        assert not violations(
            "func f0(r3):\n"
            "    LI r4, 7\n"
            "    CALL abs_val, 1\n"
            "    A r5, r4, r4\n"
            "    RET\n"
        )

    def test_redefinition_clears_the_hazard(self):
        assert not violations(
            "func f0(r3):\n"
            "    CALL f1, 1\n"
            "    LI r4, 7\n"
            "    A r5, r4, r4\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )

    def test_loop_backedge_carries_the_hazard(self):
        # The seed-254 shape: the header's read of r4 is fine on entry
        # but reads residue on every trip after the call in the body.
        v = violations(
            "func f0(r3):\n"
            "    LI r4, 7\n"
            "    LI r24, 3\n"
            "head:\n"
            "    A r5, r4, r4\n"
            "    CALL f1, 1\n"
            "    AI r24, r24, -1\n"
            "    CI cr1, r24, 0\n"
            "    BT head, cr1.gt\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )
        assert [str(x.reg) for x in v] == ["r4"]
        assert v[0].block == "head"

    def test_callee_saved_registers_survive_calls(self):
        # r24 is read after the call above and is not a violation: the
        # hazard set is exactly the call-clobbered file.
        assert not violations(
            "func f0(r3):\n"
            "    LI r24, 3\n"
            "    CALL f1, 1\n"
            "    A r3, r24, r24\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )

    def test_hazardous_call_argument_is_caught(self):
        # CALL uses its argument registers: marshaling residue into an
        # argument is as undefined as any other read.
        v = violations(
            "func f0(r3):\n"
            "    CALL f1, 1\n"
            "    CALL f1, 2\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )
        assert [str(x.reg) for x in v] == ["r4"]


class TestGeneratorInvariant:
    @pytest.mark.parametrize("seed", sorted(set(range(120)) | {56, 132, 254}))
    def test_generated_modules_are_residue_clean(self, seed):
        assert not reads_call_residue(generate_module(seed, GenConfig()))

    def test_repair_is_deterministic(self):
        a = format_module(generate_module(254, GenConfig()))
        b = format_module(generate_module(254, GenConfig()))
        assert a == b

    def test_repair_leaves_clean_seeds_untouched(self):
        # Seed 0 needs no repair: the canonical module is exactly the
        # parsed source.
        source = parse_module(generate_source(0, GenConfig()))
        assert not call_residue_violations(source)
        assert format_module(source) == format_module(
            generate_module(0, GenConfig())
        )

    def test_repair_changes_a_violating_seed(self):
        source = parse_module(generate_source(254, GenConfig()))
        assert call_residue_violations(source)
        assert format_module(source) != format_module(
            generate_module(254, GenConfig())
        )


class TestReducerGuard:
    def test_predicate_rejects_residue_reading_candidates(self):
        # Whatever the target signature, a candidate outside the
        # defined-behaviour contract must read as "not reproducing".
        candidate = parse_module(
            DATA
            + "func f0(r3):\n"
            "    LI r4, 7\n"
            "    CALL f1, 1\n"
            "    A r3, r4, r4\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )
        finding = Finding(
            seed=254, config="base", kind="miscompile",
            fn="f0", args=(0,), mem_model="flat",
        )
        predicate = signature_predicate(finding, OracleConfig(bisect=False))
        assert not predicate(candidate)


class TestEntryResidue:
    """The callee-side half of the contract: incoming caller residue.

    A function reading a call-clobbered register it does not declare as
    a parameter reads whatever its caller left there — the dual of the
    caller-side post-call read, and the gap seed 186's reducer walked
    through (deleting the callee's own def of ``r10`` turned a real
    containment bug into a fake "dce miscompile" on a candidate whose
    callee read the caller's register).
    """

    def test_undeclared_entry_read_is_a_violation(self):
        v = violations(
            "func f0(r3):\n"
            "    LA r10, d0\n"
            "    CALL f1, 1\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    AI r4, r10, 0\n"
            "    RET\n"
        )
        assert any(str(x.reg) == "r10" and x.fn == "f1" for x in v)

    def test_declared_params_are_defined_at_entry(self):
        v = violations(
            "func f0(r3, r4):\n"
            "    A r5, r3, r4\n"
            "    LR r3, r5\n"
            "    RET\n"
        )
        assert v == []

    def test_entry_def_before_read_is_clean(self):
        v = violations(
            "func f0(r3):\n"
            "    LI r10, 4\n"
            "    AI r4, r10, 0\n"
            "    RET\n"
        )
        assert v == []

    def test_undefined_call_argument_is_a_violation(self):
        # CALL's argument registers are uses: passing a never-written
        # r4 hands the callee whatever the environment left there.
        v = violations(
            "func f0(r3):\n"
            "    CALL f1, 2\n"
            "    RET\n"
            "\n"
            "func f1(r3, r4):\n"
            "    A r5, r3, r4\n"
            "    RET\n"
        )
        assert any(str(x.reg) == "r4" and x.fn == "f0" for x in v)

    def test_entry_hazard_reaches_later_blocks(self):
        v = violations(
            "func f0(r3):\n"
            "    CI cr0, r3, 0\n"
            "    BT b, cr0.eq\n"
            "a:\n"
            "    LI r9, 1\n"
            "b:\n"
            "    AI r4, r9, 0\n"
            "    RET\n"
        )
        assert any(str(x.reg) == "r9" for x in v)

    @pytest.mark.parametrize("seed", range(40))
    def test_generated_modules_honour_the_entry_contract(self, seed):
        assert not reads_call_residue(generate_module(seed))
