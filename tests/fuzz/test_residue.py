"""The call-residue contract: checker, generator repair, reducer guard.

Regression for the fuzzer's own bug: seed 254 read ``r9`` at a loop
header whose loop-carried path crossed a ``CALL`` — DCE then deleted
the callee's dead writes, changed the residue, and the oracle blamed
the compiler for a program with no defined behaviour.
"""

import pytest

from repro.fuzz.driver import signature_predicate
from repro.fuzz.generate import GenConfig, generate_module, generate_source
from repro.fuzz.oracle import Finding, OracleConfig
from repro.fuzz.residue import call_residue_violations, reads_call_residue
from repro.ir import format_module, parse_module

DATA = "data d0: size=16 init=[1, 2, 3, 4]\n\n"


def violations(text):
    return call_residue_violations(parse_module(DATA + text))


class TestChecker:
    def test_read_after_real_call_is_a_violation(self):
        v = violations(
            "func f0(r3):\n"
            "    LI r4, 7\n"
            "    CALL f1, 1\n"
            "    A r5, r4, r4\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )
        assert [str(x.reg) for x in v] == ["r4"]
        assert v[0].fn == "f0"

    def test_retval_after_call_is_defined(self):
        assert not violations(
            "func f0(r3):\n"
            "    CALL f1, 1\n"
            "    A r3, r3, r3\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )

    def test_library_calls_are_not_hazard_sources(self):
        assert not violations(
            "func f0(r3):\n"
            "    LI r4, 7\n"
            "    CALL abs_val, 1\n"
            "    A r5, r4, r4\n"
            "    RET\n"
        )

    def test_redefinition_clears_the_hazard(self):
        assert not violations(
            "func f0(r3):\n"
            "    CALL f1, 1\n"
            "    LI r4, 7\n"
            "    A r5, r4, r4\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )

    def test_loop_backedge_carries_the_hazard(self):
        # The seed-254 shape: the header's read of r4 is fine on entry
        # but reads residue on every trip after the call in the body.
        v = violations(
            "func f0(r3):\n"
            "    LI r4, 7\n"
            "    LI r24, 3\n"
            "head:\n"
            "    A r5, r4, r4\n"
            "    CALL f1, 1\n"
            "    AI r24, r24, -1\n"
            "    CI cr1, r24, 0\n"
            "    BT head, cr1.gt\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )
        assert [str(x.reg) for x in v] == ["r4"]
        assert v[0].block == "head"

    def test_callee_saved_registers_survive_calls(self):
        # r24 is read after the call above and is not a violation: the
        # hazard set is exactly the call-clobbered file.
        assert not violations(
            "func f0(r3):\n"
            "    LI r24, 3\n"
            "    CALL f1, 1\n"
            "    A r3, r24, r24\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )

    def test_hazardous_call_argument_is_caught(self):
        # CALL uses its argument registers: marshaling residue into an
        # argument is as undefined as any other read.
        v = violations(
            "func f0(r3):\n"
            "    CALL f1, 1\n"
            "    CALL f1, 2\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )
        assert [str(x.reg) for x in v] == ["r4"]


class TestGeneratorInvariant:
    @pytest.mark.parametrize("seed", sorted(set(range(120)) | {56, 132, 254}))
    def test_generated_modules_are_residue_clean(self, seed):
        assert not reads_call_residue(generate_module(seed, GenConfig()))

    def test_repair_is_deterministic(self):
        a = format_module(generate_module(254, GenConfig()))
        b = format_module(generate_module(254, GenConfig()))
        assert a == b

    def test_repair_leaves_clean_seeds_untouched(self):
        # Seed 0 needs no repair: the canonical module is exactly the
        # parsed source.
        source = parse_module(generate_source(0, GenConfig()))
        assert not call_residue_violations(source)
        assert format_module(source) == format_module(
            generate_module(0, GenConfig())
        )

    def test_repair_changes_a_violating_seed(self):
        source = parse_module(generate_source(254, GenConfig()))
        assert call_residue_violations(source)
        assert format_module(source) != format_module(
            generate_module(254, GenConfig())
        )


class TestReducerGuard:
    def test_predicate_rejects_residue_reading_candidates(self):
        # Whatever the target signature, a candidate outside the
        # defined-behaviour contract must read as "not reproducing".
        candidate = parse_module(
            DATA
            + "func f0(r3):\n"
            "    LI r4, 7\n"
            "    CALL f1, 1\n"
            "    A r3, r4, r4\n"
            "    RET\n"
            "\n"
            "func f1(r3):\n"
            "    RET\n"
        )
        finding = Finding(
            seed=254, config="base", kind="miscompile",
            fn="f0", args=(0,), mem_model="flat",
        )
        predicate = signature_predicate(finding, OracleConfig(bisect=False))
        assert not predicate(candidate)
