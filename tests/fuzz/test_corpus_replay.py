"""Replay every corpus case against the current compiler.

Reduced fuzz findings live in ``tests/fuzz/corpus/`` as plain IR with a
comment header (see :mod:`repro.fuzz.corpus`). ``status: fixed`` cases
assert the divergence stays dead; ``status: xfail`` cases document a
known-open bug — they xfail while the bug lives and *fail loudly* once
it is fixed, so the header can be promoted to ``fixed``.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import load_cases
from repro.fuzz.oracle import Oracle, OracleConfig, config_from_key
from repro.ir.parser import parse_module

CORPUS = Path(__file__).parent / "corpus"

CASES = load_cases(CORPUS)


def test_corpus_is_not_empty():
    assert CASES, "fuzz corpus went missing"


@pytest.mark.parametrize(
    "case", CASES, ids=[case.name for case in CASES]
)
def test_replay(case):
    module = parse_module(case.source)
    oracle = Oracle(OracleConfig(bisect=True))
    findings = oracle.check_module(
        module, seed=case.seed, configs=[config_from_key(case.config)]
    )
    if case.status == "xfail":
        if findings:
            pytest.xfail(
                f"known-open: {findings[0].kind} guilty={findings[0].guilty}"
            )
        pytest.fail(
            f"{case.name} now passes — promote its header to 'status: fixed'"
        )
    assert not findings, (
        f"regressed: {case.name} ({case.path}) reproduces again: "
        + "; ".join(f.describe() for f in findings)
    )
