"""Delta-debugging reducer: shrinks hard, preserves the predicate."""

from repro.fuzz.generate import GenConfig, generate_module
from repro.fuzz.reduce import instruction_count, reduce_module
from repro.ir.verifier import verify_module


def _has_call(module) -> bool:
    return any(
        instr.opcode == "CALL"
        for fn in module.functions.values()
        for instr in fn.instructions()
    )


def _find_seed_with_call():
    for seed in range(40):
        module = generate_module(seed, GenConfig())
        if _has_call(module) and instruction_count(module) >= 40:
            return seed, module
    raise AssertionError("no call-bearing module in seed range")


class TestReduceModule:
    def test_shrinks_at_least_80_percent_preserving_predicate(self):
        # The acceptance bar for real findings; a structural predicate
        # ("still contains a CALL") keeps the test independent of any
        # particular compiler bug while exercising every phase.
        _, module = _find_seed_with_call()
        before = instruction_count(module)
        reduced = reduce_module(module, _has_call)
        after = instruction_count(reduced)
        assert _has_call(reduced)
        verify_module(reduced)  # the reducer never emits broken IR
        assert after <= before * 0.2, f"only shrank {before} -> {after}"

    def test_failing_predicate_is_never_satisfied_by_broken_ir(self):
        # The guard wraps the caller's predicate: candidates that fail
        # verification must be rejected before the predicate ever runs.
        _, module = _find_seed_with_call()
        seen_broken = []

        def predicate(candidate):
            try:
                verify_module(candidate)
            except Exception:
                seen_broken.append(candidate)
            return _has_call(candidate)

        reduce_module(module, predicate)
        assert not seen_broken

    def test_predicate_exceptions_count_as_failure(self):
        _, module = _find_seed_with_call()
        calls = []

        def fragile(candidate):
            calls.append(1)
            raise RuntimeError("flaky predicate")

        reduced = reduce_module(module, fragile)
        # Nothing reproduced, so nothing was removed.
        assert instruction_count(reduced) == instruction_count(module)
        assert calls

    def test_idempotent_on_minimal_input(self):
        _, module = _find_seed_with_call()
        once = reduce_module(module, _has_call)
        twice = reduce_module(once, _has_call)
        assert instruction_count(twice) == instruction_count(once)
