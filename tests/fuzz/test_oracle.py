"""Oracle classification and per-pass bisection, on seeded bugs."""

from types import SimpleNamespace

import pytest

from repro.fuzz.generate import GenConfig, generate_module
from repro.fuzz.oracle import (
    Oracle,
    OracleConfig,
    SweepConfig,
    config_from_key,
    observable_memory,
    sweep_configs,
)
from repro.ir.module import STACK_BASE
from repro.robustness.diffcheck import EntryOutcome
from repro.transforms.pass_manager import Pass, PassManager


class TestClassifyPair:
    def _oracle(self):
        return Oracle(OracleConfig(bisect=False))

    def test_limit_on_either_side_skips(self):
        o = self._oracle()
        limit = EntryOutcome("limit")
        ok = EntryOutcome("ok", value=1)
        assert o.classify_pair(limit, ok, "flat") is None
        assert o.classify_pair(ok, limit, "flat") is None

    def test_base_error_is_inconclusive(self):
        o = self._oracle()
        err = EntryOutcome("error", error_class="MemoryFault")
        ok = EntryOutcome("ok", value=1)
        assert o.classify_pair(err, ok, "paged") is None
        assert o.classify_pair(err, err, "paged") is None

    def test_new_fault_is_miscompile_on_flat_containment_on_paged(self):
        o = self._oracle()
        ok = EntryOutcome("ok", value=1)
        err = EntryOutcome("error", error_class="SpeculationFault")
        assert o.classify_pair(ok, err, "flat")[0] == "miscompile"
        assert o.classify_pair(ok, err, "paged")[0] == "containment"

    def test_value_and_memory_divergence(self):
        o = self._oracle()
        a = EntryOutcome("ok", value=1, memory={16: 1})
        b = EntryOutcome("ok", value=2, memory={16: 1})
        assert o.classify_pair(a, b, "flat")[0] == "miscompile"
        c = EntryOutcome("ok", value=1, memory={16: 9})
        kind, detail = o.classify_pair(a, c, "flat")
        assert kind == "miscompile" and "0x10" in detail

    def test_stack_residue_is_not_observable(self):
        o = self._oracle()
        a = EntryOutcome("ok", value=1, memory={})
        b = EntryOutcome("ok", value=1, memory={STACK_BASE - 8: 42})
        assert o.classify_pair(a, b, "flat") is None
        assert observable_memory({STACK_BASE - 8: 42, 16: 1}) == {16: 1}


class _BuggyPass(Pass):
    """Deliberate miscompile: flips the first AI immediate it sees."""

    name = "seeded-bug"

    def run_on_function(self, fn, ctx):
        for bb in fn.blocks:
            for instr in bb.instrs:
                # Skip linkage bookkeeping (frame adjusts, spills): a
                # 1-off stack pointer is invisible to the oracle, which
                # deliberately ignores stack residue.
                if instr.opcode == "AI" and not instr.attrs:
                    instr.imm += 1
                    return True
        return False


class _BuggyConfig(SweepConfig):
    """The honest base pipeline plus a seeded bug at the end."""

    def passes(self):
        return super().passes() + [_BuggyPass()]

    def compile(self, module, verify=True):
        work = module.clone()
        PassManager(self.passes(), verify=False).run(work)
        return SimpleNamespace(module=work)


class _RaisingConfig(SweepConfig):
    def __init__(self, exc):
        super().__init__("raising", "base")
        self.exc = exc

    def compile(self, module, verify=True):
        raise self.exc


class TestCheckModule:
    def test_seeded_miscompile_is_found_and_bisected(self):
        oracle = Oracle(OracleConfig(bisect=True))
        found = []
        for seed in range(10):
            module = generate_module(seed, GenConfig())
            findings = oracle.check_module(
                module, seed=seed, configs=[_BuggyConfig("bug", "base")]
            )
            found.extend(findings)
            if findings:
                break
        assert found, "seeded bug never observable across seed range"
        finding = found[0]
        # Which divergence class surfaces first depends on the seed (a
        # flipped increment may fault on paged before any flat value
        # diff); the attribution is what must be exact.
        assert finding.kind in ("miscompile", "containment")
        assert finding.guilty == "seeded-bug"
        assert finding.config == "bug"
        assert finding.source  # printed module rides along for reduction

    def test_clean_module_produces_no_findings(self):
        oracle = Oracle(OracleConfig(bisect=False))
        module = generate_module(3, GenConfig())
        assert oracle.check_module(module, seed=3, level="base") == []

    def test_compile_crash_is_a_finding(self):
        oracle = Oracle(OracleConfig(bisect=False))
        module = generate_module(3, GenConfig())
        findings = oracle.check_module(
            module, seed=3, configs=[_RaisingConfig(ValueError("boom"))]
        )
        assert [f.kind for f in findings] == ["crash"]
        assert "boom" in findings[0].detail

    def test_pipeline_verifier_rejection_names_the_pass(self):
        oracle = Oracle(OracleConfig(bisect=False))
        module = generate_module(3, GenConfig())
        exc = RuntimeError(
            "IR verification failed after pass 'seeded-bug' on f0: bad"
        )
        findings = oracle.check_module(
            module, seed=3, configs=[_RaisingConfig(exc)]
        )
        assert [f.kind for f in findings] == ["verifier-reject"]
        assert findings[0].guilty == "seeded-bug"


class TestSweepConfigs:
    def test_base_level_is_single_config(self):
        assert [c.key for c in sweep_configs("base")] == ["base"]

    def test_vliw_sweep_covers_ablations(self):
        keys = [c.key for c in sweep_configs("vliw")]
        assert "vliw:u2:swp" in keys and "vliw:u2:noswp" in keys
        assert any(k.endswith("no-limited-combining") for k in keys)
        assert len(sweep_configs("vliw", quick=True)) == 2

    @pytest.mark.parametrize(
        "key", ["base", "vliw:u4:swp", "vliw:u2:noswp", "vliw:u2:swp:no-unspeculation"]
    )
    def test_config_from_key_round_trips(self, key):
        cfg = config_from_key(key)
        assert cfg.key == key
        rebuilt = config_from_key(cfg.key)
        assert (rebuilt.level, rebuilt.unroll_factor, rebuilt.software_pipelining,
                rebuilt.disable) == (
            cfg.level, cfg.unroll_factor, cfg.software_pipelining, cfg.disable
        )

    def test_every_sweep_key_round_trips(self):
        for level, quick in (("vliw", False), ("vliw", True), ("base", False)):
            for cfg in sweep_configs(level, quick=quick):
                assert config_from_key(cfg.key).key == cfg.key

    def test_modulo_keys_select_backend(self):
        assert config_from_key("vliw:u2:modulo").pipeliner == "modulo"
        assert config_from_key("vliw:u2:modulo-opt").pipeliner == "modulo-opt"
        assert config_from_key("vliw:u4:swp").pipeliner == "swp"

    # ``--configs`` exposes keys to user typos: unknown segments must
    # error, not silently sweep the swp defaults under the bad key.
    @pytest.mark.parametrize(
        "key",
        [
            "vliw:u2:bogus",
            "vliw:u2:moduloopt",
            "vliw:ux:swp",
            "base:u2",
            "vliw:u2:swp:no-nosuchpass",
        ],
    )
    def test_unknown_key_segments_are_rejected(self, key):
        with pytest.raises(ValueError):
            config_from_key(key)
