"""Executor-vs-executor oracle mode: it must catch a planted engine bug.

The xengine sweep's whole claim is "any closure-engine miscompile shows
up as an ``engine-divergence`` finding". These tests prove the detector
works by injecting a known-wrong opcode factory into the engine's
compile tables and watching the oracle flag it — then confirm the same
oracle stays silent on the honest engine.
"""

import pytest

import repro.machine.engine as engine_mod
from repro.fuzz.oracle import (
    Oracle,
    OracleConfig,
    config_from_key,
    observe_exec,
)
from repro.ir import parse_module
from repro.machine import ClosureEngine, Interpreter
from repro.machine.engine import clear_engine_cache

SRC = """
func f(r3, r4):
entry:
    MUL r3, r3, r4
    AI r3, r3, 5
    RET
"""


def _buggy_mul(eng, instr):
    rd = eng._ridx(instr.rd)
    ra = eng._ridx(instr.ra)
    rb = eng._ridx(instr.rb)

    def op(state, regs, mem):
        # Deliberately wrong: off-by-one product.
        v = (regs[ra] * regs[rb] + 1) & 0xFFFFFFFF
        regs[rd] = v - 0x100000000 if v & 0x80000000 else v

    return op


@pytest.fixture
def oracle():
    return Oracle(OracleConfig(bisect=False))


class TestConfigKeys:
    def test_xengine_none_parses(self):
        cfg = config_from_key("xengine:none")
        assert cfg.xengine and cfg.level == "none"

    def test_xengine_wraps_sweep_config(self):
        cfg = config_from_key("xengine:vliw:u4:modulo")
        assert cfg.xengine
        assert cfg.key == "xengine:vliw:u4:modulo"
        assert (cfg.level, cfg.unroll_factor, cfg.pipeliner) == (
            "vliw", 4, "modulo",
        )

    def test_bad_xengine_key_rejected(self):
        with pytest.raises(ValueError):
            config_from_key("xengine:nonsense")


class TestDetection:
    def test_planted_bug_is_flagged(self, oracle, monkeypatch):
        monkeypatch.setitem(engine_mod._FLAT_FACTORIES, "MUL", _buggy_mul)
        clear_engine_cache()
        module = parse_module(SRC)
        findings = oracle.check_module(
            module, seed=0, configs=[config_from_key("xengine:none")]
        )
        assert findings, "oracle missed a planted engine bug"
        finding = findings[0]
        assert finding.kind == "engine-divergence"
        assert finding.config == "xengine:none"
        assert finding.guilty == "f"  # per-function blame, no guilty pass
        assert "value" in finding.detail

    def test_honest_engine_is_clean(self, oracle):
        clear_engine_cache()
        module = parse_module(SRC)
        findings = oracle.check_module(
            module,
            seed=0,
            configs=[
                config_from_key("xengine:none"),
                config_from_key("xengine:vliw:u2:swp"),
            ],
        )
        assert findings == []


class TestObserveExec:
    def test_fault_observations_include_steps(self):
        src = "func f(r3):\nentry:\n    AI r3, r3, 1\n    CALL f\n    RET"
        module = parse_module(src)
        a = observe_exec(Interpreter(module), "f", (0,), "flat")
        b = observe_exec(ClosureEngine(module), "f", (0,), "flat")
        assert a.kind == b.kind == "error"
        assert a.error_class == b.error_class == "ExecutionError"
        assert a.steps == b.steps > 0
