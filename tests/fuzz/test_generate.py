"""Generator invariants: determinism, verifier-cleanliness, shape mix."""

import pytest

from repro.fuzz.generate import GenConfig, generate_module, generate_source
from repro.ir.verifier import verify_module


class TestDeterminism:
    def test_same_seed_same_source(self):
        assert generate_source(7, GenConfig()) == generate_source(7, GenConfig())

    def test_different_seeds_differ(self):
        sources = {generate_source(seed, GenConfig()) for seed in range(8)}
        assert len(sources) == 8


@pytest.mark.parametrize("seed", range(40))
def test_generated_modules_are_verifier_clean(seed):
    verify_module(generate_module(seed, GenConfig()))


def test_shape_coverage_over_a_seed_range():
    # The generator is biased toward the shapes the paper's passes feed
    # on; across a modest seed range all of them must actually occur.
    text = "\n".join(generate_source(seed, GenConfig()) for seed in range(60))
    assert "BCT" in text  # counted loops (MTCTR/BCT)
    assert "CALL" in text  # calls, both library and generated
    assert "irr_" in text  # irreducible loop headers
    assert "join" in text  # diamond joins
    assert "LU " in text  # pointer walks with update forms
    assert "!spec" not in text  # level-"none" sources carry no attrs


def test_wild_loads_can_be_disabled():
    cfg = GenConfig(wild_loads=False)
    text = "\n".join(generate_source(seed, cfg) for seed in range(20))
    assert "16711680" not in text  # WILD_DISP never materialises
