"""Campaign driver and CLI plumbing (kept cheap: base level, few seeds)."""

from repro.__main__ import main
from repro.fuzz.driver import run_fuzz, signature_predicate
from repro.fuzz.generate import GenConfig, generate_module
from repro.fuzz.oracle import Finding, OracleConfig


class TestRunFuzz:
    def test_serial_campaign_over_clean_seeds(self):
        log = []
        findings, stats = run_fuzz(
            seeds=4,
            level="base",
            oracle_cfg=OracleConfig(bisect=False, quick=True),
            log=log.append,
        )
        assert stats.seeds_run == 4
        assert findings == [] and stats.findings == 0
        assert stats.elapsed >= 0

    def test_time_budget_stops_early(self):
        findings, stats = run_fuzz(
            seeds=10_000,
            level="base",
            time_budget=0.01,
            oracle_cfg=OracleConfig(bisect=False, quick=True),
        )
        assert stats.seeds_run < 10_000


class TestSignaturePredicate:
    def test_matches_only_under_the_findings_config(self):
        # A predicate built from a finding that does not reproduce on the
        # (healthy) current tree must reject the module.
        module = generate_module(3, GenConfig())
        finding = Finding(
            seed=3, config="base", kind="miscompile",
            fn="f0", args=(0,), mem_model="flat",
        )
        assert not signature_predicate(finding, OracleConfig(bisect=False))(module)


class TestCli:
    def test_fuzz_subcommand_clean_exit(self, capsys):
        rc = main(["fuzz", "--seeds", "2", "--level", "base", "--quick",
                   "--no-bisect"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "# fuzz: 2 seeds" in err
