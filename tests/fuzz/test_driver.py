"""Campaign driver and CLI plumbing (kept cheap: base level, few seeds)."""

from repro.__main__ import main
from repro.fuzz.driver import (
    CRASH_SEEDS_ENV,
    fuzz_seed,
    run_fuzz,
    signature_predicate,
)
from repro.fuzz.generate import GenConfig, generate_module
from repro.fuzz.oracle import Finding, OracleConfig

QUICK = OracleConfig(bisect=False, quick=True)


class TestRunFuzz:
    def test_serial_campaign_over_clean_seeds(self):
        log = []
        findings, stats = run_fuzz(
            seeds=4,
            level="base",
            oracle_cfg=OracleConfig(bisect=False, quick=True),
            log=log.append,
        )
        assert stats.seeds_run == 4
        assert findings == [] and stats.findings == 0
        assert stats.elapsed >= 0

    def test_time_budget_stops_early(self):
        findings, stats = run_fuzz(
            seeds=10_000,
            level="base",
            time_budget=0.01,
            oracle_cfg=OracleConfig(bisect=False, quick=True),
        )
        assert stats.seeds_run < 10_000


class TestCrashContainment:
    def test_oracle_exception_becomes_crash_finding(self, monkeypatch):
        monkeypatch.setenv(CRASH_SEEDS_ENV, "2:raise")
        findings, stats = run_fuzz(
            seeds=4, level="base", oracle_cfg=QUICK,
        )
        assert stats.seeds_run == 4
        assert [f.kind for f in findings] == ["crash"]
        assert findings[0].seed == 2
        assert "injected oracle crash" in findings[0].detail

    def test_seed_timeout_becomes_crash_finding(self, monkeypatch):
        monkeypatch.setenv(CRASH_SEEDS_ENV, "1:hang")
        findings, stats = run_fuzz(
            seeds=3, level="base", seed_timeout=0.2, oracle_cfg=QUICK,
        )
        assert stats.seeds_run == 3
        assert [f.seed for f in findings] == [1]
        assert findings[0].kind == "crash"
        assert "per-seed timeout" in findings[0].detail

    def test_fuzz_seed_never_raises(self, monkeypatch):
        monkeypatch.setenv(CRASH_SEEDS_ENV, "7:raise")
        findings = fuzz_seed(7, "base", QUICK)
        assert [f.kind for f in findings] == ["crash"]

    def test_hard_worker_death_is_contained_in_parallel_campaign(
        self, monkeypatch
    ):
        # Seed 3's worker dies via os._exit: the pool breaks, is rebuilt,
        # the in-flight cohort is retried one at a time, and exactly seed 3
        # is blamed. Every other seed still completes.
        monkeypatch.setenv(CRASH_SEEDS_ENV, "3:exit")
        findings, stats = run_fuzz(
            seeds=8, level="base", jobs=2, oracle_cfg=QUICK,
        )
        assert stats.seeds_run == 8
        crash = [f for f in findings if f.kind == "crash"]
        assert [f.seed for f in crash] == [3]
        assert "worker process died" in crash[0].detail

    def test_parallel_seed_timeout(self, monkeypatch):
        monkeypatch.setenv(CRASH_SEEDS_ENV, "2:hang")
        findings, stats = run_fuzz(
            seeds=4, level="base", jobs=2, seed_timeout=0.2,
            oracle_cfg=QUICK,
        )
        assert stats.seeds_run == 4
        assert [f.seed for f in findings if f.kind == "crash"] == [2]


class TestSignaturePredicate:
    def test_matches_only_under_the_findings_config(self):
        # A predicate built from a finding that does not reproduce on the
        # (healthy) current tree must reject the module.
        module = generate_module(3, GenConfig())
        finding = Finding(
            seed=3, config="base", kind="miscompile",
            fn="f0", args=(0,), mem_model="flat",
        )
        assert not signature_predicate(finding, OracleConfig(bisect=False))(module)


class TestCli:
    def test_fuzz_subcommand_clean_exit(self, capsys):
        rc = main(["fuzz", "--seeds", "2", "--level", "base", "--quick",
                   "--no-bisect"])
        err = capsys.readouterr().err
        assert rc == 0
        assert "# fuzz: 2 seeds" in err
