"""Workload suite and end-to-end pipeline integration."""

import pytest

from repro.evaluate import (
    Measurement,
    geomean_speedup,
    measure,
    reference_value,
    specint_table,
    train_profile,
)
from repro.ir import verify_module
from repro.machine.interpreter import run_function
from repro.pipeline import compile_module
from repro.workloads import suite, workload_by_name

WORKLOADS = {wl.name: wl for wl in suite()}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestWorkloadsAreWellFormed:
    def test_module_verifies(self, name):
        verify_module(WORKLOADS[name].fresh_module())

    def test_deterministic_build(self, name):
        wl = WORKLOADS[name]
        a = run_function(wl.fresh_module(), wl.entry, list(wl.args), max_steps=10_000_000)
        b = run_function(wl.fresh_module(), wl.entry, list(wl.args), max_steps=10_000_000)
        assert a.value == b.value

    def test_nontrivial_execution(self, name):
        wl = WORKLOADS[name]
        r = run_function(wl.fresh_module(), wl.entry, list(wl.args), max_steps=10_000_000)
        assert r.steps > 500, "workload too small to measure"

    def test_training_input_smaller(self, name):
        wl = WORKLOADS[name]
        full = run_function(wl.fresh_module(), wl.entry, list(wl.args), max_steps=10_000_000)
        train = run_function(
            wl.fresh_module(), wl.entry, list(wl.train_args), max_steps=10_000_000
        )
        assert train.steps < full.steps


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestCompilationLevels:
    def test_baseline_correct(self, name):
        wl = WORKLOADS[name]
        ref = reference_value(wl)
        m = measure(wl, "base", check_against=ref)
        assert m.cycles > 0

    def test_vliw_correct(self, name):
        wl = WORKLOADS[name]
        ref = reference_value(wl)
        m = measure(wl, "vliw", check_against=ref)
        assert m.cycles > 0

    def test_vliw_verifies_and_respects_abi(self, name):
        wl = WORKLOADS[name]
        compiled = compile_module(wl.fresh_module(), "vliw")
        verify_module(compiled.module)
        run_function(
            compiled.module,
            wl.entry,
            list(wl.args),
            max_steps=10_000_000,
            check_callee_saved=True,
        )

    def test_pdf_correct(self, name):
        wl = WORKLOADS[name]
        ref = reference_value(wl)
        profile, plan = train_profile(wl)
        m = measure(wl, "vliw", profile=profile, plan=plan, check_against=ref)
        assert m.cycles > 0


class TestHeadlineResults:
    """The reproduction's version of the paper's headline numbers."""

    def test_geomean_improvement_in_band(self):
        rows = specint_table()
        gm = geomean_speedup(rows)
        # Paper: ~13% on SPECint92. Accept a band around it.
        assert 1.05 <= gm <= 1.35, f"geomean speedup {gm:.3f} out of band"

    def test_majority_of_benchmarks_improve(self):
        rows = specint_table()
        improved = sum(1 for r in rows if r.speedup > 1.0)
        assert improved >= len(rows) - 1

    def test_li_is_the_big_winner(self):
        # The paper's li row shows the largest gain (62.66 -> 75.82 on
        # hardware; our list-search kernel gains even more because the
        # kernel is pure xlygetvalue).
        rows = {r.benchmark: r for r in specint_table()}
        assert rows["li"].speedup == max(r.speedup for r in rows.values())
        assert rows["li"].speedup > 1.3

    def test_compile_time_increases(self):
        wl = workload_by_name("li")
        base = measure(wl, "base")
        vliw = measure(wl, "vliw")
        assert vliw.compile_seconds > base.compile_seconds

    def test_code_size_increases_moderately(self):
        total_base = 0
        total_vliw = 0
        for wl in suite():
            total_base += measure(wl, "base").static_instructions
            total_vliw += measure(wl, "vliw").static_instructions
        growth = total_vliw / total_base
        # Paper: +8% over entire SPEC binaries, which are overwhelmingly
        # cold code that the unroller/expander never touches. Our
        # workloads are 100% hot kernels, so relative growth is much
        # larger by construction; the shape requirement is bounded
        # growth (unroll factor 2 + bookkeeping copies + expansions stay
        # well under 3x), not the absolute 8%.
        assert 1.0 < growth < 3.0, growth


class TestWorkloadByName:
    def test_lookup(self):
        assert workload_by_name("li").name == "li"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("perlbench")
