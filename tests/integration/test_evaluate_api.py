"""The public measurement API (repro.evaluate, repro top-level)."""

import math

import pytest

import repro
from repro.evaluate import (
    Measurement,
    SpecRow,
    format_spec_table,
    geomean_speedup,
    measure,
    reference_value,
    specint_table,
)
from repro.machine.model import RS6000
from repro.workloads import workload_by_name


class TestSpecRow:
    def test_marks_and_speedup(self):
        row = SpecRow("x", base_cycles=200, vliw_cycles=100)
        assert row.base_mark == 100.0
        assert row.vliw_mark == 200.0
        assert row.speedup == 2.0

    def test_geomean(self):
        rows = [SpecRow("a", 200, 100), SpecRow("b", 100, 200)]
        assert abs(geomean_speedup(rows) - 1.0) < 1e-9
        assert geomean_speedup([]) == 1.0

    def test_format_contains_all_rows(self):
        rows = [SpecRow("alpha", 10, 5), SpecRow("beta", 10, 10)]
        text = format_spec_table(rows)
        assert "alpha" in text and "beta" in text and "geomean" in text


class TestMeasure:
    def test_measurement_fields(self):
        wl = workload_by_name("sc")
        m = measure(wl, "base", RS6000)
        assert isinstance(m, Measurement)
        assert m.workload == "sc"
        assert m.level == "base"
        assert m.cycles > 0
        assert 0 < m.ipc <= RS6000.issue_width
        assert m.static_instructions > 0
        assert m.compile_seconds >= 0

    def test_check_against_catches_mismatch(self):
        wl = workload_by_name("sc")
        with pytest.raises(AssertionError):
            measure(wl, "base", RS6000, check_against=-123456789)

    def test_reference_value_is_stable(self):
        wl = workload_by_name("espresso")
        assert reference_value(wl) == reference_value(wl)

    def test_pass_changes_surface_for_ablation(self):
        wl = workload_by_name("li")
        m = measure(wl, "vliw", RS6000)
        assert m.pass_changes  # which passes fired, for ablation tables
        assert any(m.pass_changes.values())
        assert m.rollbacks == 0
        assert m.resilience_report is None  # no resilience requested

    def test_resilient_measure_attaches_report(self):
        wl = workload_by_name("li")
        ref = reference_value(wl)
        m = measure(wl, "vliw", RS6000, check_against=ref, resilience="rollback")
        assert m.resilience_report is not None
        assert m.resilience_report.policy == "rollback"
        assert m.rollbacks == 0  # nothing injected, nothing rolled back
        assert len(m.resilience_report.records) > 0


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_public_names(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_from_readme(self):
        from repro.workloads import workload_by_name

        wl = workload_by_name("li")
        ref = repro.reference_value(wl)
        base = repro.measure(wl, "base", check_against=ref)
        vliw = repro.measure(wl, "vliw", check_against=ref)
        assert vliw.cycles < base.cycles
