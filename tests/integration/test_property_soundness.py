"""Property tests for analysis soundness and IR round-tripping.

The alias test is the strongest: for random programs, any pair of
memory instructions the disambiguator claims can NEVER alias must in
fact never touch a common address in any observed execution. A single
counterexample would mean the scheduler could reorder a store past a
load of the same location.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.alias import MemoryModel
from repro.ir import format_module, parse_module, verify_module
from repro.machine import RS6000, POWER2, run_function, time_trace
from repro.machine.model import MachineModel

from support import assert_equivalent, random_program, standard_argsets

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAliasSoundness:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_no_alias_verdicts_hold_at_runtime(self, seed):
        module = random_program(seed, size=16)
        fn = module.functions["f"]
        memory = MemoryModel(fn, module)

        mem_instrs = [i for i in fn.instructions() if i.is_memory]
        refs = {i.uid: memory.memref(i) for i in mem_instrs}

        touched = {i.uid: set() for i in mem_instrs}
        for args in standard_argsets():
            for uid, addrs in _addresses_by_instr(module, "f", list(args)).items():
                if uid in touched:
                    touched[uid] |= addrs

        for a in mem_instrs:
            for b in mem_instrs:
                if a.uid >= b.uid:
                    continue
                if not memory.may_alias(refs[a.uid], refs[b.uid]):
                    common = touched[a.uid] & touched[b.uid]
                    assert not common, (
                        f"no-alias verdict violated: {a} vs {b} share {common}"
                    )


def _addresses_by_instr(module, fn_name, args):
    """Shadow executor: the interpreter's semantics, additionally
    recording which address every memory instruction touches."""
    from repro.ir.instructions import ALU_FUNCS, ALU_RI_TO_RR, COND_FUNCS, wrap32
    from repro.ir.module import STACK_BASE
    from repro.ir.operands import CTR, SP, TOC, gpr

    addresses = {}
    layout = module.layout()
    fn = module.functions[fn_name]
    state = {SP: STACK_BASE, TOC: 0x8000}

    def get(reg):
        return state.get(reg, 0)

    mem = {}
    for name, addr in layout.items():
        for i, word in enumerate(module.data[name].init):
            mem[addr + 4 * i] = word
    params = fn.params if fn.params else [gpr(3 + i) for i in range(len(args))]
    for reg, value in zip(params, args):
        state[reg] = value

    labels = {bb.label: i for i, bb in enumerate(fn.blocks)}
    bi = ii = 0
    steps = 0
    while steps < 400_000:
        if bi >= len(fn.blocks):
            break
        block = fn.blocks[bi]
        if ii >= len(block.instrs):
            bi += 1
            ii = 0
            continue
        instr = block.instrs[ii]
        steps += 1
        op = instr.opcode
        taken = False
        if instr.is_memory:
            addresses.setdefault(instr.uid, set()).add(get(instr.base) + instr.disp)
        if op in ALU_FUNCS:
            state[instr.rd] = ALU_FUNCS[op](get(instr.ra), get(instr.rb))
        elif op in ALU_RI_TO_RR:
            state[instr.rd] = ALU_FUNCS[ALU_RI_TO_RR[op]](get(instr.ra), instr.imm)
        elif op == "LI":
            state[instr.rd] = instr.imm
        elif op == "LA":
            state[instr.rd] = layout[instr.symbol]
        elif op == "LR":
            state[instr.rd] = get(instr.ra)
        elif op == "NEG":
            state[instr.rd] = wrap32(-get(instr.ra))
        elif op == "NOT":
            state[instr.rd] = wrap32(~get(instr.ra))
        elif op == "L":
            state[instr.rd] = mem.get(get(instr.base) + instr.disp, 0)
        elif op == "LU":
            addr = get(instr.base) + instr.disp
            state[instr.rd] = mem.get(addr, 0)
            state[instr.base] = addr
        elif op == "ST":
            mem[get(instr.base) + instr.disp] = get(instr.ra)
        elif op == "STU":
            addr = get(instr.base) + instr.disp
            mem[addr] = get(instr.ra)
            state[instr.base] = addr
        elif op == "C":
            d = get(instr.ra) - get(instr.rb)
            state[instr.crf] = (d > 0) - (d < 0)
        elif op == "CI":
            d = get(instr.ra) - instr.imm
            state[instr.crf] = (d > 0) - (d < 0)
        elif op == "MTCTR":
            state[CTR] = get(instr.ra)
        elif op == "MFCTR":
            state[instr.rd] = get(CTR)
        elif op == "B":
            taken = True
        elif op in ("BT", "BF"):
            holds = COND_FUNCS[instr.cond](get(instr.crf))
            taken = holds if op == "BT" else not holds
        elif op == "BCT":
            state[CTR] = wrap32(get(CTR) - 1)
            taken = get(CTR) != 0
        elif op == "RET":
            break
        if taken:
            bi = labels[instr.target]
            ii = 0
        else:
            ii += 1
    return addresses


class TestRoundTrip:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_format_parse_preserves_behaviour(self, seed):
        module = random_program(seed)
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert_equivalent(module, reparsed, "f", standard_argsets())

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_format_is_fixpoint(self, seed):
        module = random_program(seed)
        once = format_module(module)
        twice = format_module(parse_module(once))
        assert once == twice


class TestTimerProperties:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_cycles_at_least_fxu_bound(self, seed):
        """Cycles are bounded below by the FXU occupancy."""
        module = random_program(seed)
        r = run_function(module, "f", [1, 2], record_trace=True)
        rep = time_trace(r.trace, RS6000)
        fxu_ops = rep.class_counts["int"] + rep.class_counts["mem"]
        assert rep.cycles >= (fxu_ops + RS6000.fxu_units - 1) // RS6000.fxu_units

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_wider_machine_never_slower(self, seed):
        module = random_program(seed)
        r = run_function(module, "f", [1, 2], record_trace=True)
        narrow = time_trace(r.trace, RS6000).cycles
        wide = time_trace(r.trace, POWER2).cycles
        assert wide <= narrow

    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        latency=st.integers(min_value=1, max_value=6),
    )
    def test_longer_load_latency_never_faster(self, seed, latency):
        module = random_program(seed)
        r = run_function(module, "f", [1, 2], record_trace=True)
        base = time_trace(r.trace, RS6000).cycles
        slower = time_trace(
            r.trace, RS6000.with_changes(load_latency=RS6000.load_latency + latency)
        ).cycles
        assert slower >= base
