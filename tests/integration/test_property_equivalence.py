"""Property-based differential testing of every pass.

Hypothesis generates random structured programs (arithmetic, memory
traffic, nested diamonds, bounded loops); each pass — and the complete
pipelines — must preserve the observable behaviour (return value, final
memory, I/O) on a battery of inputs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir import verify_module
from repro.pipeline import compile_module
from repro.scheduling import GlobalScheduling, LocalScheduling, VLIWScheduling
from repro.transforms import (
    BasicBlockExpansion,
    CopyPropagation,
    DeadCodeElimination,
    LimitedCombining,
    LiveRangeRenaming,
    LoopMemoryMotion,
    LoopUnroll,
    Straighten,
    Unspeculation,
)
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent, random_program, standard_argsets

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PASS_FACTORIES = {
    "straighten": Straighten,
    "copy-propagation": CopyPropagation,
    "dce": DeadCodeElimination,
    "loop-memory-motion": LoopMemoryMotion,
    "unspeculation": Unspeculation,
    "limited-combining": LimitedCombining,
    "bb-expansion": BasicBlockExpansion,
    "loop-unroll": LoopUnroll,
    "live-range-renaming": LiveRangeRenaming,
    "local-scheduling": LocalScheduling,
    "global-scheduling": GlobalScheduling,
    "vliw-scheduling": VLIWScheduling,
}


def check_pass(pass_name: str, seed: int, size: int = 14):
    before = random_program(seed, size=size)
    after = random_program(seed, size=size)
    ctx = PassContext(after)
    PASS_FACTORIES[pass_name]().run_on_module(after, ctx)
    verify_module(after)
    assert_equivalent(
        before,
        after,
        "f",
        standard_argsets(),
        context=f"{pass_name} seed={seed}",
    )


@pytest.mark.parametrize("pass_name", sorted(PASS_FACTORIES))
class TestEachPassPreservesSemantics:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_programs(self, pass_name, seed):
        check_pass(pass_name, seed)


class TestPipelines:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_baseline_pipeline(self, seed):
        before = random_program(seed)
        result = compile_module(random_program(seed), "base")
        assert_equivalent(
            before, result.module, "f", standard_argsets(), context=f"base seed={seed}"
        )

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_vliw_pipeline(self, seed):
        before = random_program(seed)
        result = compile_module(random_program(seed), "vliw")
        assert_equivalent(
            before, result.module, "f", standard_argsets(), context=f"vliw seed={seed}"
        )

    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        size=st.integers(min_value=4, max_value=24),
        depth=st.integers(min_value=1, max_value=3),
    )
    def test_vliw_pipeline_varied_shapes(self, seed, size, depth):
        before = random_program(seed, size=size, max_depth=depth)
        after = compile_module(
            random_program(seed, size=size, max_depth=depth), "vliw"
        )
        assert_equivalent(
            before,
            after.module,
            "f",
            standard_argsets(),
            context=f"vliw seed={seed} size={size} depth={depth}",
        )


class TestSequentialPassOrderings:
    """Passes must compose: apply random prefixes of the full pipeline."""

    ORDER = [
        "straighten",
        "copy-propagation",
        "dce",
        "loop-memory-motion",
        "unspeculation",
        "vliw-scheduling",
        "limited-combining",
        "copy-propagation",
        "dce",
        "bb-expansion",
        "straighten",
    ]

    @SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        prefix=st.integers(min_value=1, max_value=11),
    )
    def test_prefixes(self, seed, prefix):
        before = random_program(seed)
        after = random_program(seed)
        ctx = PassContext(after)
        for name in self.ORDER[:prefix]:
            PASS_FACTORIES[name]().run_on_module(after, ctx)
            verify_module(after)
        assert_equivalent(
            before,
            after,
            "f",
            standard_argsets(),
            context=f"prefix={prefix} seed={seed}",
        )
