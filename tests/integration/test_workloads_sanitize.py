"""Acceptance: speculation containment holds on every workload.

All six SPECint92-style workloads compiled at the full VLIW level must
pass the paged-model speculation sanitizer with zero containment
violations: every speculative load the pipeline creates (loop memory
motion, global scheduling) either never faults or its poison dies
unconsumed. This is the repo-level proof that the optimizer's
speculation discipline is sound, not just that flat-model values match.
"""

import pytest

from repro.machine.interpreter import run_function
from repro.pipeline import compile_module
from repro.robustness import SpeculationSanitizer
from repro.workloads import suite

WORKLOADS = {wl.name: wl for wl in suite()}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestWorkloadContainment:
    def test_vliw_sanitizes_clean(self, name):
        wl = WORKLOADS[name]
        module = wl.fresh_module()
        compiled = compile_module(module, level="vliw")
        result = SpeculationSanitizer(
            entries=[(wl.entry, [list(wl.args), list(wl.train_args)])],
            max_steps=10_000_000,
        ).run(module, compiled.module)
        assert result.ok, f"{name}: {result.summary()}"
        # the entries must actually have been compared, not all skipped
        assert not any(
            f.classification == "inconclusive" for f in result.findings
        ), f"{name}: sanitizer was inconclusive"

    def test_vliw_runs_on_paged_model(self, name):
        """The optimized workload executes fault-free on faulting memory
        and computes the same value the flat model does."""
        wl = WORKLOADS[name]
        compiled = compile_module(wl.fresh_module(), level="vliw")
        flat = run_function(
            compiled.module, wl.entry, list(wl.args), max_steps=10_000_000
        )
        paged = run_function(
            compiled.module,
            wl.entry,
            list(wl.args),
            max_steps=10_000_000,
            mem_model="paged",
        )
        assert paged.value == flat.value
        assert paged.output == flat.output
