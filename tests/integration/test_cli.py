"""The python -m repro command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = """
data a: size=16 init=[1, 2, 3, 4]

func main(r3):
    LA r4, a
    LI r3, 0
    LI r5, 4
    MTCTR r5
    AI r4, r4, -4
loop:
    LU r6, 4(r4)
    A r3, r3, r6
    BCT loop
done:
    CALL print_int, 1
    RET
"""


@pytest.fixture
def ir_file(tmp_path):
    path = tmp_path / "prog.ir"
    path.write_text(PROGRAM)
    return str(path)


class TestCompile:
    def test_prints_ir(self, ir_file, capsys):
        assert main(["compile", ir_file, "--level", "vliw"]) == 0
        out = capsys.readouterr().out
        assert "func main" in out
        assert "RET" in out

    def test_base_level(self, ir_file, capsys):
        assert main(["compile", ir_file, "--level", "base"]) == 0
        assert "func main" in capsys.readouterr().out


class TestRun:
    def test_runs_and_prints_output(self, ir_file, capsys):
        assert main(["run", ir_file, "--entry", "main"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "10"
        assert "returned 10" in captured.err

    def test_run_compiled(self, ir_file, capsys):
        assert main(["run", ir_file, "--level", "vliw"]) == 0
        assert capsys.readouterr().out.strip() == "10"


class TestTime:
    def test_reports_all_levels(self, ir_file, capsys):
        assert main(["time", ir_file, "--entry", "main"]) == 0
        out = capsys.readouterr().out
        for level in ("none", "base", "vliw"):
            assert level in out
        assert "cycles" in out

    def test_model_selection(self, ir_file, capsys):
        assert main(["time", ir_file, "--model", "power2", "--levels", "none"]) == 0
        assert "cycles" in capsys.readouterr().out


class TestResilience:
    def test_rollback_contains_fault_and_reports(self, ir_file, capsys, tmp_path):
        report_path = tmp_path / "resilience.json"
        assert (
            main(
                [
                    "compile",
                    ir_file,
                    "--resilience",
                    "rollback",
                    "--fault-plan",
                    "dce:raise",
                    "--resilience-report",
                    str(report_path),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "func main" in captured.out  # compile still completed
        assert "rolled-back=1 (dce)" in captured.err
        import json

        data = json.loads(report_path.read_text())
        assert data["policy"] == "rollback"
        assert data["failed_passes"] == ["dce"]

    def test_clean_compile_under_resilience(self, ir_file, capsys):
        assert main(["compile", ir_file, "--resilience", "rollback"]) == 0
        assert "rolled-back=0" in capsys.readouterr().err

    def test_strict_fault_raises(self, ir_file):
        from repro.robustness import InjectedFault

        with pytest.raises(InjectedFault):
            main(
                [
                    "compile",
                    ir_file,
                    "--resilience",
                    "strict",
                    "--fault-plan",
                    "dce:raise",
                ]
            )

    def test_fault_plan_from_json_file(self, ir_file, capsys, tmp_path):
        from repro.robustness import FaultPlan, FaultSpec

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(FaultPlan([FaultSpec("dce", "skew")]).to_json())
        assert (
            main(
                [
                    "compile",
                    ir_file,
                    "--resilience",
                    "rollback",
                    "--fault-plan",
                    str(plan_path),
                ]
            )
            == 0
        )
        assert "rolled-back=1 (dce)" in capsys.readouterr().err


GUARDED = """
func f(r3):
    CI cr0, r3, 0
    BT done, cr0.eq
body:
    L r3, 0(r3)
done:
    RET
"""


@pytest.fixture
def guarded_file(tmp_path):
    path = tmp_path / "guarded.ir"
    path.write_text(GUARDED)
    return str(path)


class TestMemModel:
    def test_run_paged_model(self, ir_file, capsys):
        assert main(["run", ir_file, "--mem-model", "paged"]) == 0
        assert capsys.readouterr().out.strip() == "10"

    def test_run_paged_faults_on_wild_load(self, guarded_file):
        from repro.machine import MemoryFault

        with pytest.raises(MemoryFault):
            main(["run", guarded_file, "--entry", "f", "--args", "4",
                  "--mem-model", "paged"])

    def test_run_flat_tolerates_wild_load(self, guarded_file, capsys):
        assert main(["run", guarded_file, "--entry", "f", "--args", "4"]) == 0
        assert "returned 0" in capsys.readouterr().err

    def test_time_paged_model(self, ir_file, capsys):
        assert main(["time", ir_file, "--levels", "none,vliw",
                     "--mem-model", "paged"]) == 0
        assert "cycles" in capsys.readouterr().out


class TestDiffSeed:
    def test_seed_echoed_in_report(self, ir_file, capsys, tmp_path):
        import json

        report_path = tmp_path / "resilience.json"
        assert (
            main(
                [
                    "compile",
                    ir_file,
                    "--resilience",
                    "rollback",
                    "--diff-seed",
                    "99",
                    "--resilience-report",
                    str(report_path),
                ]
            )
            == 0
        )
        data = json.loads(report_path.read_text())
        assert data["diff_seed"] == 99
        assert data["containment_violations"] == 0


class TestSanitize:
    def test_clean_module_exits_zero(self, ir_file, capsys):
        assert main(["sanitize", ir_file, "--level", "vliw"]) == 0
        captured = capsys.readouterr()
        assert "sanitize[" in captured.err
        assert "violation" not in captured.out

    def test_violation_exits_nonzero_and_reports(self, guarded_file, capsys,
                                                 tmp_path, monkeypatch):
        # Sabotage the compile so the optimized module hoists the guarded
        # load unsafely; the sanitize command must catch and report it.
        import repro.__main__ as cli
        from repro.robustness.faults import _speculate_unsafely

        real_compile = cli.compile_module

        def sabotaged(module, level, **kwargs):
            result = real_compile(module, level, **kwargs)
            _speculate_unsafely(result.module)
            return result

        monkeypatch.setattr(cli, "compile_module", sabotaged)
        report_path = tmp_path / "sanitize.json"
        rc = main(["sanitize", guarded_file, "--level", "base",
                   "--report", str(report_path)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "!!" in captured.out
        assert "violation" in captured.out

        import json

        data = json.loads(report_path.read_text())
        assert data["ok"] is False
        assert data["counts"]["violation"] >= 1

    def test_sanitize_flag_on_compile(self, guarded_file, capsys):
        assert (
            main(
                [
                    "compile",
                    guarded_file,
                    "--resilience",
                    "rollback",
                    "--fault-plan",
                    "dce:speculate",
                    "--sanitize",
                ]
            )
            == 0
        )
        assert "rolled-back=1 (dce)" in capsys.readouterr().err


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["compile", str(tmp_path / "missing.ir")])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
