from repro.ir import parse_function
from repro.ir.operands import SP, cr, gpr
from repro.analysis import compute_liveness, find_natural_loops
from repro.analysis.liveness import block_use_def, live_after_instr, liveness_per_instr
from repro.analysis.loops import get_or_create_preheader, split_edge

LOOP = """
func f(r3):
entry:
    LI r4, 0
    LI r5, 10
loop:
    A r4, r4, r3
    AI r5, r5, -1
    CI cr0, r5, 0
    BF loop, cr0.eq
exit:
    LR r3, r4
    RET
"""


class TestLiveness:
    def test_loop_carried_values_live_at_header(self):
        fn = parse_function(LOOP)
        live = compute_liveness(fn)
        live_in = live.live_at_block_entry("loop")
        assert gpr(4) in live_in
        assert gpr(5) in live_in
        assert gpr(3) in live_in

    def test_dead_after_last_use(self):
        fn = parse_function(LOOP)
        live = compute_liveness(fn)
        exit_out = live.live_at_block_exit("exit")
        assert gpr(4) not in exit_out

    def test_r3_live_at_exit_due_to_ret(self):
        fn = parse_function(LOOP)
        live = compute_liveness(fn)
        assert gpr(3) in live.live_at_block_entry("exit") or gpr(4) in live.live_at_block_entry("exit")
        # after the copy, RET needs r3
        per = liveness_per_instr(fn.block("exit"), live.live_at_block_exit("exit"))
        assert gpr(3) in per[0]

    def test_block_use_def(self):
        fn = parse_function(LOOP)
        uses, defs = block_use_def(fn.block("loop"))
        assert gpr(3) in uses and gpr(4) in uses and gpr(5) in uses
        assert gpr(4) in defs and gpr(5) in defs and cr(0) in defs

    def test_upward_exposed_only(self):
        fn = parse_function(
            """
func f(r3):
    LI r4, 1
    A r5, r4, r4
    RET
"""
        )
        uses, defs = block_use_def(fn.blocks[0])
        assert gpr(4) not in uses  # defined before used
        assert gpr(4) in defs and gpr(5) in defs

    def test_live_after_instr(self):
        fn = parse_function(LOOP)
        live = compute_liveness(fn)
        block = fn.block("loop")
        after_first = live_after_instr(
            block, 0, live.live_at_block_exit("loop")
        )
        assert gpr(5) in after_first  # still needed by AI below
        assert cr(0) not in after_first  # defined later, not live here


class TestLoops:
    def test_single_loop_found(self):
        fn = parse_function(LOOP)
        loops = find_natural_loops(fn)
        assert len(loops) == 1
        assert loops[0].header == "loop"
        assert loops[0].body == {"loop"}
        assert loops[0].back_edges == [("loop", "loop")]

    def test_exit_and_entry_edges(self):
        fn = parse_function(LOOP)
        loop = find_natural_loops(fn)[0]
        exits = [(a.label, b.label) for a, b in loop.exit_edges(fn)]
        assert exits == [("loop", "exit")]
        entries = [(a.label, b.label) for a, b in loop.entry_edges(fn)]
        assert entries == [("entry", "loop")]

    def test_nested_loops_parenting(self):
        fn = parse_function(
            """
func f(r3):
entry:
    LI r4, 3
outer:
    LI r5, 3
inner:
    AI r5, r5, -1
    CI cr0, r5, 0
    BF inner, cr0.eq
outdone:
    AI r4, r4, -1
    CI cr1, r4, 0
    BF outer, cr1.eq
fin:
    RET
"""
        )
        loops = find_natural_loops(fn)
        assert len(loops) == 2
        inner = next(l for l in loops if l.header == "inner")
        outer = next(l for l in loops if l.header == "outer")
        assert inner.parent is outer
        assert outer.parent is None
        assert inner.depth == 2

    def test_preheader_reuse(self):
        fn = parse_function(LOOP)
        loop = find_natural_loops(fn)[0]
        pre = get_or_create_preheader(fn, loop)
        assert pre.label == "entry"  # single entry pred reused

    def test_preheader_creation_on_multiple_entries(self):
        fn = parse_function(
            """
func f(r3):
entry:
    CI cr0, r3, 0
    BT other, cr0.lt
first:
    LI r4, 1
    B loop
other:
    LI r4, 2
loop:
    AI r4, r4, -1
    CI cr1, r4, 0
    BF loop, cr1.eq
done:
    RET
"""
        )
        loop = next(l for l in find_natural_loops(fn) if l.header == "loop")
        pre = get_or_create_preheader(fn, loop)
        entries = loop.entry_edges(fn)
        assert len(entries) == 1
        assert entries[0][0] is pre
        # Semantics preserved: both original entries reach the preheader.
        from repro.ir import verify_function

        verify_function(fn)


class TestSplitEdge:
    def test_split_branch_edge(self):
        fn = parse_function(LOOP)
        loop_bb, exit_bb = fn.block("loop"), fn.block("exit")
        # loop->loop is the branch edge here; split loop->exit fallthrough.
        mid = split_edge(fn, loop_bb, exit_bb)
        assert fn.layout_successor(mid) is exit_bb or (
            mid.terminator is not None and mid.terminator.target == "exit"
        )
        from repro.ir import verify_function

        verify_function(fn)

    def test_split_taken_edge_retargets_branch(self):
        fn = parse_function(LOOP)
        loop_bb = fn.block("loop")
        mid = split_edge(fn, loop_bb, loop_bb)
        assert loop_bb.terminator.target == mid.label
        assert mid.terminator.target == "loop"
        from repro.ir import verify_function

        verify_function(fn)
