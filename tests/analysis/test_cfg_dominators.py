from repro.ir import parse_function
from repro.analysis import (
    compute_dominators,
    compute_postdominators,
    depth_first_order,
    postorder,
    reachable_blocks,
    reverse_postorder,
)

DIAMOND_LOOP = """
func f(r3):
entry:
    LI r4, 0
head:
    CI cr0, r3, 0
    BT exit, cr0.le
body:
    CI cr1, r3, 10
    BT big, cr1.gt
small:
    AI r4, r4, 1
    B latch
big:
    AI r4, r4, 2
latch:
    AI r3, r3, -1
    B head
exit:
    LR r3, r4
    RET
"""

UNREACHABLE = """
func f(r3):
entry:
    RET
dead:
    LI r3, 1
    RET
"""


class TestTraversals:
    def test_reachable(self):
        fn = parse_function(UNREACHABLE)
        assert reachable_blocks(fn) == {"entry"}

    def test_rpo_starts_at_entry(self):
        fn = parse_function(DIAMOND_LOOP)
        order = [b.label for b in reverse_postorder(fn)]
        assert order[0] == "entry"
        assert set(order) == {"entry", "head", "body", "small", "big", "latch", "exit"}
        # A block appears after at least one of its predecessors (except
        # loop headers reached by back edges).
        assert order.index("head") < order.index("body")
        assert order.index("body") < order.index("latch")

    def test_postorder_is_reverse_of_rpo(self):
        fn = parse_function(DIAMOND_LOOP)
        assert [b.label for b in postorder(fn)] == list(
            reversed([b.label for b in reverse_postorder(fn)])
        )

    def test_dfs_priority_prefers_high_priority_successor(self):
        fn = parse_function(DIAMOND_LOOP)
        # Prefer the 'big' side of the diamond.
        prio = lambda src, dst: 10.0 if dst.label == "big" else 1.0
        order = [b.label for b in depth_first_order(fn, successor_priority=prio)]
        assert order.index("big") < order.index("small")

    def test_dfs_default_prefers_taken_edge(self):
        fn = parse_function(DIAMOND_LOOP)
        order = [b.label for b in depth_first_order(fn)]
        # entry -> head; head's taken target is exit.
        assert order.index("exit") < order.index("body")

    def test_dfs_keeps_unreachable_blocks_at_end(self):
        fn = parse_function(UNREACHABLE)
        order = [b.label for b in depth_first_order(fn)]
        assert order == ["entry", "dead"]


class TestDominators:
    def test_entry_dominates_all(self):
        fn = parse_function(DIAMOND_LOOP)
        dom = compute_dominators(fn)
        for bb in fn.blocks:
            assert dom.dominates("entry", bb.label)

    def test_diamond_sides_do_not_dominate_join(self):
        fn = parse_function(DIAMOND_LOOP)
        dom = compute_dominators(fn)
        assert not dom.dominates("small", "latch")
        assert not dom.dominates("big", "latch")
        assert dom.dominates("body", "latch")

    def test_strict_dominance(self):
        fn = parse_function(DIAMOND_LOOP)
        dom = compute_dominators(fn)
        assert dom.dominates("head", "head")
        assert not dom.strictly_dominates("head", "head")
        assert dom.strictly_dominates("head", "body")

    def test_immediate_dominator(self):
        fn = parse_function(DIAMOND_LOOP)
        dom = compute_dominators(fn)
        assert dom.immediate_dominator("latch") == "body"
        assert dom.immediate_dominator("exit") == "head"
        assert dom.immediate_dominator("entry") is None


class TestPostdominators:
    def test_exit_postdominates_everything(self):
        fn = parse_function(DIAMOND_LOOP)
        pdom = compute_postdominators(fn)
        for bb in fn.blocks:
            assert pdom.dominates("exit", bb.label)

    def test_diamond_sides_do_not_postdominate_branch(self):
        fn = parse_function(DIAMOND_LOOP)
        pdom = compute_postdominators(fn)
        assert not pdom.dominates("small", "body")
        assert not pdom.dominates("big", "body")
        assert pdom.dominates("latch", "body")

    def test_no_return_function(self):
        fn = parse_function(
            """
func f(r3):
loop:
    B loop
"""
        )
        pdom = compute_postdominators(fn)
        assert not pdom.dominates("loop", "loop") or True  # no crash
