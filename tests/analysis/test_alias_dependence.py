from repro.ir import parse_function, parse_module
from repro.ir.operands import gpr
from repro.analysis import MemoryModel, build_dag
from repro.machine.model import RS6000

TWO_SYMBOLS = """
data a: size=16
data b: size=16
data vol: size=4 volatile

func f(r3):
    LA r4, a
    LA r5, b
    L r6, 0(r4)
    L r7, 4(r4)
    ST 8(r5), r6
    L r8, 0(r5)
    RET
"""


class TestProvenance:
    def test_la_resolves(self):
        m = parse_module(TWO_SYMBOLS)
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        loads = [i for i in fn.instructions() if i.is_load]
        ref = mm.memref(loads[0])
        assert ref.symbol == "a"
        assert ref.addr_in_symbol == 0

    def test_distinct_symbols_never_alias(self):
        m = parse_module(TWO_SYMBOLS)
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        ops = [i for i in fn.instructions() if i.is_memory]
        la0 = mm.memref(ops[0])  # L 0(r4) -> a
        st = mm.memref(ops[2])  # ST 8(r5) -> b
        assert not mm.may_alias(la0, st)

    def test_same_symbol_disjoint_offsets(self):
        m = parse_module(TWO_SYMBOLS)
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        ops = [i for i in fn.instructions() if i.is_memory]
        assert not mm.may_alias(mm.memref(ops[0]), mm.memref(ops[1]))

    def test_same_symbol_same_offset_aliases(self):
        m = parse_module(TWO_SYMBOLS)
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        ops = [i for i in fn.instructions() if i.is_memory]
        st = mm.memref(ops[2])  # ST 8(r5)
        ld = mm.memref(ops[3])  # L 0(r5)
        assert not mm.may_alias(st, ld)  # offsets 8 vs 0
        assert mm.may_alias(st, st)

    def test_ai_chain_offsets(self):
        m = parse_module(
            """
data a: size=32
func f(r3):
    LA r4, a
    AI r5, r4, 8
    L r6, 0(r5)
    L r7, 8(r4)
    ST 12(r4), r6
    RET
"""
        )
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        ops = [i for i in fn.instructions() if i.is_memory]
        # 0(r5) == 8(r4): same address
        assert mm.may_alias(mm.memref(ops[0]), mm.memref(ops[1]))
        # 12(r4) != 8(a)
        assert not mm.may_alias(mm.memref(ops[0]), mm.memref(ops[2]))

    def test_roaming_pointer_stays_in_symbol(self):
        m = parse_module(
            """
data arr: size=64
data other: size=4
func f(r3):
    LA r4, arr
    LA r9, other
loop:
    L r5, 0(r4)
    AI r4, r4, 4
    ST 0(r9), r5
    CI cr0, r5, 0
    BF loop, cr0.eq
done:
    RET
"""
        )
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        ops = [i for i in fn.instructions() if i.is_memory]
        walk = mm.memref(ops[0])  # L 0(r4), r4 walks arr
        fixed = mm.memref(ops[1])  # ST 0(r9) -> other
        assert walk.symbol == "arr"
        assert walk.offset is None
        assert not mm.may_alias(walk, fixed)
        # Unknown offset within the same symbol must alias itself.
        assert mm.may_alias(walk, walk)

    def test_indexed_pointer_resolves_via_add(self):
        m = parse_module(
            """
data arr: size=64
data total: size=4
func f(r3):
    LA r4, arr
    MULI r5, r3, 4
    A r6, r5, r4
    L r7, 0(r6)
    LA r8, total
    ST 0(r8), r7
    RET
"""
        )
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        ops = [i for i in fn.instructions() if i.is_memory]
        idx = mm.memref(ops[0])
        tot = mm.memref(ops[1])
        assert idx.symbol == "arr"
        assert not mm.may_alias(idx, tot)

    def test_param_pointer_is_unknown(self):
        m = parse_module(
            "data a: size=8\nfunc f(r3):\n    L r4, 0(r3)\n    RET"
        )
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        load = next(i for i in fn.instructions() if i.is_load)
        assert mm.memref(load).symbol is None

    def test_volatile_detection(self):
        m = parse_module(
            "data vol: size=4 volatile\nfunc f(r3):\n    LA r4, vol\n    L r3, 0(r4)\n    RET"
        )
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        load = next(i for i in fn.instructions() if i.is_load)
        assert mm.is_volatile_ref(load)

    def test_provably_safe_bounds(self):
        m = parse_module(
            "data a: size=8\nfunc f(r3):\n    LA r4, a\n    L r5, 4(r4)\n    L r6, 8(r4)\n    RET"
        )
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        loads = [i for i in fn.instructions() if i.is_load]
        assert mm.provably_safe(loads[0])  # bytes 4..8 of 8 ok
        assert not mm.provably_safe(loads[1])  # bytes 8..12 out of bounds


class TestDependenceDAG:
    def test_raw_edge_with_load_latency(self):
        fn = parse_function(
            "func f(r3):\n    L r4, 0(r3)\n    AI r5, r4, 1\n    RET"
        )
        instrs = fn.blocks[0].instrs
        dag = build_dag(instrs, model=RS6000)
        assert dag.succs[0][1] == RS6000.load_latency

    def test_cmp_branch_latency(self):
        fn = parse_function(
            "func f(r3):\n    CI cr0, r3, 0\n    BT x, cr0.eq\nx:\n    RET"
        )
        instrs = fn.blocks[0].instrs
        dag = build_dag(instrs, model=RS6000)
        assert dag.succs[0][1] == RS6000.cmp_to_branch

    def test_war_and_waw(self):
        fn = parse_function(
            "func f(r3):\n    A r4, r3, r3\n    LI r3, 0\n    LI r3, 1\n    RET"
        )
        instrs = fn.blocks[0].instrs
        dag = build_dag(instrs)
        assert 1 in dag.succs[0]  # WAR: read r3 before overwrite
        assert 2 in dag.succs[1]  # WAW between the two LIs

    def test_memory_dependences_conservative_without_model(self):
        fn = parse_function(
            "func f(r3):\n    ST 0(r3), r3\n    L r4, 4(r3)\n    RET"
        )
        dag = build_dag(fn.blocks[0].instrs)
        assert 1 in dag.succs[0]  # store -> load ordered without alias info

    def test_memory_independent_with_model(self):
        m = parse_module(
            "data a: size=16\nfunc f(r3):\n    LA r9, a\n    ST 0(r9), r3\n    L r4, 8(r9)\n    RET"
        )
        fn = m.functions["f"]
        mm = MemoryModel(fn, m)
        dag = build_dag(fn.blocks[0].instrs, memory=mm)
        # ST 0(r9) and L 8(r9): provably disjoint, no edge
        assert 2 not in dag.succs[1]

    def test_call_is_barrier(self):
        fn = parse_function(
            "func f(r3):\n    ST 0(r3), r3\n    CALL print_int, 1\n    L r4, 0(r3)\n    RET"
        )
        dag = build_dag(fn.blocks[0].instrs)
        assert 1 in dag.succs[0]
        assert 2 in dag.succs[1]

    def test_terminator_after_everything(self):
        fn = parse_function(
            "func f(r3):\n    LI r4, 1\n    LI r5, 2\n    RET"
        )
        dag = build_dag(fn.blocks[0].instrs)
        assert 2 in dag.succs[0]
        assert 2 in dag.succs[1]

    def test_topological(self):
        fn = parse_function(
            "func f(r3):\n    L r4, 0(r3)\n    A r5, r4, r3\n    ST 0(r3), r5\n    RET"
        )
        dag = build_dag(fn.blocks[0].instrs)
        assert dag.topological_check()

    def test_critical_heights_monotone(self):
        fn = parse_function(
            "func f(r3):\n    L r4, 0(r3)\n    AI r5, r4, 1\n    AI r6, r5, 1\n    RET"
        )
        dag = build_dag(fn.blocks[0].instrs)
        h = dag.critical_heights()
        assert h[0] > h[1] > h[2] >= h[3]
