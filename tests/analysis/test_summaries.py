"""Inter-procedural call-effect summaries."""

from repro.ir import parse_module
from repro.analysis.summaries import compute_summaries
from repro.machine.interpreter import run_function
from repro.transforms import LoopMemoryMotion
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent

MODULE = """
data a: size=16 init=[0, 0, 0, 5]
data b: size=16 init=[9]

func pure_helper(r3):
    MULI r3, r3, 3
    AI r3, r3, 1
    RET

func touches_b(r3):
    LA r4, b
    L r5, 0(r4)
    A r3, r3, r5
    RET

func writes_b(r3):
    LA r4, b
    ST 4(r4), r3
    RET

func via_pointer(r3):
    L r3, 0(r3)
    RET

func io_only(r3):
    CALL print_int, 1
    RET

func chains(r3):
    CALL touches_b, 1
    CALL pure_helper, 1
    RET

func recursive(r3):
    CI cr0, r3, 0
    BT base_case, cr0.le
    AI r3, r3, -1
    CALL recursive, 1
base_case:
    RET
"""


class TestSummaries:
    def setup_method(self):
        self.module = parse_module(MODULE)
        self.summaries = compute_summaries(self.module)

    def test_pure_function(self):
        s = self.summaries["pure_helper"]
        assert s.is_memory_silent
        assert not s.may_touch_symbol("a")

    def test_reader_with_known_symbol(self):
        s = self.summaries["touches_b"]
        assert s.reads_memory and not s.writes_memory
        assert s.touched_symbols == frozenset({"b"})
        assert s.may_touch_symbol("b")
        assert not s.may_touch_symbol("a")

    def test_writer(self):
        s = self.summaries["writes_b"]
        assert s.writes_memory
        assert not s.may_touch_symbol("a")

    def test_pointer_access_is_unknown(self):
        s = self.summaries["via_pointer"]
        assert s.reads_memory
        assert s.touched_symbols is None
        assert s.may_touch_symbol("a")

    def test_io_only(self):
        s = self.summaries["io_only"]
        assert s.does_io
        assert not s.touches_memory
        assert not s.may_touch_symbol("a")

    def test_transitive_chain(self):
        s = self.summaries["chains"]
        assert s.reads_memory
        assert s.touched_symbols == frozenset({"b"})

    def test_recursion_converges(self):
        s = self.summaries["recursive"]
        assert s.is_memory_silent


class TestLoopMotionAcrossCalls:
    """The paper's inter-procedural extension: motion of an `a`-location
    across a call that provably only touches `b`."""

    SRC = """
data a: size=16 init=[0, 0, 0, 5]
data b: size=16 init=[9]

func bump_b(r3):
    LA r4, b
    L r5, 0(r4)
    AI r5, r5, 1
    ST 0(r4), r5
    RET

func f(r20):
    LA r21, a
loop:
    L r6, 12(r21)
    AI r6, r6, 1
    ST 12(r21), r6
    CALL bump_b, 0
    AI r20, r20, -1
    CI cr1, r20, 0
    BF loop, cr1.eq
done:
    L r3, 12(r21)
    RET
"""

    def test_motion_applies_across_disjoint_call(self):
        before = parse_module(self.SRC)
        after = parse_module(self.SRC)
        ctx = PassContext(after)
        changed = LoopMemoryMotion().run_on_module(after, ctx)
        assert changed, "summary should prove bump_b cannot touch a"
        assert_equivalent(before, after, "f", [[1], [4]])
        # The moved location's accesses left the loop body.
        from repro.analysis import find_natural_loops

        fn = after.functions["f"]
        loop = find_natural_loops(fn)[0]
        assert all(
            not (i.is_memory and i.disp == 12)
            for bb in loop.blocks(fn)
            for i in bb.instrs
        )

    def test_unknown_callee_still_blocks(self):
        src = self.SRC.replace("CALL bump_b, 0", "CALL opaque, 1").replace(
            "func bump_b(r3):\n    LA r4, b\n    L r5, 0(r4)\n    AI r5, r5, 1\n    ST 0(r4), r5\n    RET",
            "func opaque(r3):\n    L r4, 0(r3)\n    ST 0(r3), r4\n    RET",
        )
        module = parse_module(src)
        ctx = PassContext(module)
        changed = LoopMemoryMotion().run_on_module(module, ctx)
        assert not changed  # pointer-typed callee may touch anything
