"""Loop unrolling and live-range renaming (paper section 2.3)."""

from repro.ir import parse_module, verify_module
from repro.ir.operands import gpr
from repro.analysis import find_natural_loops
from repro.transforms import LiveRangeRenaming, LoopUnroll
from repro.transforms.pass_manager import PassContext
from repro.transforms.renaming import insert_loop_exit_copies

from support import assert_equivalent, run

COUNTED = """
func f(r3):
entry:
    LI r4, 0
    MTCTR r3
loop:
    AI r4, r4, 3
    BCT loop
done:
    LR r3, r4
    RET
"""

SEARCH = """
data arr: size=64 init=[4, 8, 15, 16, 23, 42, 0, 0]

func f(r3):
entry:
    LA r5, arr
loop:
    L r6, 0(r5)
    C cr0, r6, r3
    BT found, cr0.eq
    AI r5, r5, 4
    CI cr1, r6, 0
    BF loop, cr1.eq
miss:
    LI r3, -1
    RET
found:
    LR r3, r6
    RET
"""


def apply_unroll(src, factor=2):
    before = parse_module(src)
    after = parse_module(src)
    ctx = PassContext(after)
    changed = LoopUnroll(factor=factor).run_on_module(after, ctx)
    verify_module(after)
    return before, after, ctx, changed


class TestUnroll:
    def test_counted_loop_semantics(self):
        before, after, _, changed = apply_unroll(COUNTED)
        assert changed
        assert_equivalent(before, after, "f", [[1], [2], [5], [10]])

    def test_body_replicated(self):
        _, after, _, _ = apply_unroll(COUNTED)
        fn = after.functions["f"]
        bcts = [i for i in fn.instructions() if i.opcode == "BCT"]
        assert len(bcts) == 2

    def test_factor_three(self):
        before, after, _, changed = apply_unroll(COUNTED, factor=3)
        assert changed
        assert_equivalent(before, after, "f", [[1], [4], [9]])

    def test_early_exit_loop_semantics(self):
        before, after, _, changed = apply_unroll(SEARCH)
        assert changed
        assert_equivalent(before, after, "f", [[4], [15], [42], [999]])

    def test_exit_targets_shared(self):
        _, after, _, _ = apply_unroll(SEARCH)
        fn = after.functions["f"]
        # Both copies exit to the same original blocks.
        labels = {bb.label for bb in fn.blocks}
        assert "found" in labels and "miss" in labels
        found_targets = [
            i.target for i in fn.instructions() if i.target == "found"
        ]
        assert len(found_targets) == 2

    def test_entry_header_gets_fresh_entry_block(self):
        src = """
func f(r3):
loop:
    AI r3, r3, -1
    CI cr0, r3, 0
    BF loop, cr0.eq
done:
    LI r3, 42
    RET
"""
        before, after, _, changed = apply_unroll(src)
        assert changed
        assert after.functions["f"].entry.label != "loop"
        assert_equivalent(before, after, "f", [[1], [3], [6]])

    def test_skips_oversized_bodies(self):
        body = "\n".join("    AI r4, r4, 1" for _ in range(60))
        src = f"""
func f(r3):
    LI r4, 0
    MTCTR r3
loop:
{body}
    BCT loop
done:
    LR r3, r4
    RET
"""
        _, _, _, changed = apply_unroll(src)
        assert not changed

    def test_skips_counter_instrumented_loops(self):
        module = parse_module(COUNTED)
        loop_block = module.functions["f"].block("loop")
        loop_block.instrs[0].attrs["counter"] = True
        ctx = PassContext(module)
        assert not LoopUnroll().run_on_module(module, ctx)

    def test_profile_gates_low_trip_loops(self):
        module = parse_module(COUNTED)
        ctx = PassContext(module)
        ctx.block_profile = {("f", "loop"): 10, ("f", "entry"): 9}
        ctx.edge_profile = {("f", "loop", "loop"): 1}
        # 10 executions from 9 entries: ~1.1 trips -> not worth unrolling.
        assert not LoopUnroll().run_on_module(module, ctx)

    def test_profile_allows_hot_loops(self):
        module = parse_module(COUNTED)
        ctx = PassContext(module)
        ctx.block_profile = {("f", "loop"): 100, ("f", "entry"): 2}
        ctx.edge_profile = {("f", "loop", "loop"): 98}
        assert LoopUnroll().run_on_module(module, ctx)


class TestExitCopies:
    def test_inserted_for_live_registers(self):
        module = parse_module(SEARCH)
        ctx = PassContext(module)
        n = insert_loop_exit_copies(module.functions["f"], ctx)
        assert n >= 1
        verify_module(module)
        copies = [
            i
            for i in module.functions["f"].instructions()
            if i.is_copy and i.attrs.get("noncoalesce")
        ]
        assert copies
        assert all(i.rd == i.ra for i in copies)

    def test_semantics_preserved(self):
        before = parse_module(SEARCH)
        after = parse_module(SEARCH)
        insert_loop_exit_copies(after.functions["f"], PassContext(after))
        assert_equivalent(before, after, "f", [[4], [42], [999]])


class TestRenaming:
    def test_unrolled_copies_get_distinct_registers(self):
        before, after, ctx, _ = apply_unroll(SEARCH)
        LiveRangeRenaming().run_on_module(after, ctx)
        verify_module(after)
        assert_equivalent(before, after, "f", [[4], [15], [42], [999]])

    def test_disjoint_webs_split(self):
        src = """
func f(r3):
    LI r4, 1
    A r5, r4, r3
    LI r4, 2
    A r3, r4, r5
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        ctx = PassContext(after)
        changed = LiveRangeRenaming(insert_exit_copies=False).run_on_module(after, ctx)
        assert changed
        assert_equivalent(before, after, "f", [[0], [10]])
        # The two r4 webs now use different registers.
        defs = [i.rd for i in after.functions["f"].instructions() if i.opcode == "LI"]
        assert defs[0] != defs[1]

    def test_param_web_keeps_register(self):
        src = """
func f(r3):
    AI r3, r3, 1
    RET
"""
        after = parse_module(src)
        LiveRangeRenaming(insert_exit_copies=False).run_on_module(
            after, PassContext(after)
        )
        instrs = list(after.functions["f"].instructions())
        assert instrs[0].ra == gpr(3)
        assert instrs[0].rd == gpr(3)  # feeds RET: pinned

    def test_leaf_function_renames_stay_volatile(self):
        before, after, ctx, _ = apply_unroll(SEARCH)
        LiveRangeRenaming().run_on_module(after, ctx)
        for instr in after.functions["f"].instructions():
            for reg in list(instr.uses()) + list(instr.defs()):
                if reg.kind == "gpr":
                    assert not reg.is_callee_saved

    def test_loop_carried_web_not_broken(self):
        before = parse_module(COUNTED)
        after = parse_module(COUNTED)
        LiveRangeRenaming().run_on_module(after, PassContext(after))
        verify_module(after)
        assert_equivalent(before, after, "f", [[1], [7]])
