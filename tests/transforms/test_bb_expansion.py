"""Basic block expansion (paper section 2.5)."""

from repro.ir import parse_module, verify_module
from repro.machine import RS6000, run_function, time_trace
from repro.transforms import BasicBlockExpansion, Straighten
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent

# The paper's example: an untaken conditional branch followed immediately
# by a taken unconditional branch stalls; expansion copies code from the
# target until a good stopping point.
PAPER_SHAPE = """
func f(r3, r4):
    CI cr0, r3, 0
    BF L1, cr0.eq
    AI r4, r4, 1
    B L2
L1:
    AI r4, r4, 100
L2:
    CI cr1, r4, 0
    BF L3, cr1.eq
    AI r4, r4, 2
    AI r4, r4, 3
    AI r4, r4, 4
    AI r4, r4, 5
    AI r4, r4, 6
L3:
    LR r3, r4
    RET
"""


def apply(src):
    before = parse_module(src)
    after = parse_module(src)
    ctx = PassContext(after)
    changed = BasicBlockExpansion().run_on_module(after, ctx)
    verify_module(after)
    return before, after, ctx, changed


class TestPaperShape:
    def test_expansion_applies(self):
        _, _, ctx, changed = apply(PAPER_SHAPE)
        assert changed
        assert ctx.stats.get("bb-expansion.branches-removed", 0) >= 1

    def test_semantics_preserved(self):
        before, after, _, _ = apply(PAPER_SHAPE)
        args = [[0, 0], [1, 5], [-1, -5], [0, -100]]
        assert_equivalent(before, after, "f", args)

    def test_uncond_branch_leaves_hot_trace(self):
        before, after, _, _ = apply(PAPER_SHAPE)
        # On the path that previously executed `B L2` (r3 == 0 is the eq
        # case, BF untaken), the trace must contain no unconditional branch
        # right after the conditional branch.
        r = run_function(after, "f", [0, 0], record_trace=True)
        ops = [i.opcode for i, _ in r.trace]
        for i in range(len(ops) - 1):
            if ops[i] in ("BT", "BF"):
                assert ops[i + 1] != "B", "B still adjacent to a cond branch"

    def test_stall_cycles_reduced(self):
        before, after, _, _ = apply(PAPER_SHAPE)
        # r3 == 0 leaves the first conditional branch untaken, so the
        # original code runs straight into the taken `B L2` stall.
        rb = run_function(before, "f", [0, 0], record_trace=True)
        ra = run_function(after, "f", [0, 0], record_trace=True)
        tb = time_trace(rb.trace, RS6000)
        ta = time_trace(ra.trace, RS6000)
        assert ta.uncond_stall_cycles < tb.uncond_stall_cycles
        assert ta.cycles <= tb.cycles


class TestWalkRules:
    def test_copy_through_conditional_branch(self):
        # The walk passes a conditional branch and keeps copying on the
        # fallthrough side; the copied branch still targets the original.
        src = """
func f(r3):
    CI cr0, r3, 0
    BF skip, cr0.eq
    B target
skip:
    LI r3, -7
    RET
target:
    CI cr1, r3, 5
    BT big, cr1.gt
    AI r3, r3, 1
    AI r3, r3, 1
    AI r3, r3, 1
    AI r3, r3, 1
    AI r3, r3, 1
big:
    AI r3, r3, 10
    RET
"""
        before, after, ctx, changed = apply(src)
        assert_equivalent(before, after, "f", [[0], [7], [-7], [5]])

    def test_stops_before_bct(self):
        src = """
func f(r3):
    MTCTR r3
    LI r4, 0
loop:
    AI r4, r4, 1
    CI cr0, r4, 1000
    BT done, cr0.gt
    B tail
tail:
    AI r4, r4, 2
    BCT loop
done:
    LR r3, r4
    RET
"""
        before, after, ctx, changed = apply(src)
        assert_equivalent(before, after, "f", [[1], [5]])
        # Any expansion must not have duplicated the BCT.
        fn = after.functions["f"]
        bcts = [i for i in fn.instructions() if i.opcode == "BCT"]
        assert len(bcts) == 1

    def test_expansion_through_ret_drops_continuation(self):
        src = """
func f(r3):
    CI cr0, r3, 0
    BF out, cr0.eq
    B fin
out:
    LI r3, 1
    RET
fin:
    LI r3, 2
    RET
"""
        before, after, ctx, changed = apply(src)
        assert changed
        assert_equivalent(before, after, "f", [[0], [1]])
        # The expanded path ends in its own RET copy; no B remains on it.
        r = run_function(after, "f", [0], record_trace=True)
        assert all(i.opcode != "B" for i, _ in r.trace)

    def test_never_copies_pinned_code(self):
        src = """
func f(r3):
    CI cr0, r3, 0
    BF out, cr0.eq
    B counted
out:
    LI r3, 1
    RET
counted:
    AI r4, r4, 1
    LI r3, 2
    RET
"""
        module = parse_module(src)
        counted = module.functions["f"].block("counted")
        counted.instrs[0].attrs["counter"] = True
        ctx = PassContext(module)
        BasicBlockExpansion().run_on_module(module, ctx)
        counters = [
            i for i in module.functions["f"].instructions() if i.attrs.get("counter")
        ]
        assert len(counters) == 1  # never duplicated

    def test_adjacent_target_left_to_straightening(self):
        src = """
func f(r3):
    B next
next:
    RET
"""
        _, _, ctx, changed = apply(src)
        assert not changed


class TestInteractionWithStraighten:
    def test_unreachable_original_cleaned_up(self):
        before, after, ctx, _ = apply(PAPER_SHAPE)
        n_before_cleanup = after.functions["f"].instruction_count()
        Straighten().run_on_module(after, PassContext(after))
        verify_module(after)
        assert after.functions["f"].instruction_count() <= n_before_cleanup
        assert_equivalent(before, after, "f", [[0, 0], [1, 5], [-1, -5]])
