"""Named regressions found by the hypothesis differential fuzzing.

Each test pins a real miscompilation that the property tests caught
during development, reduced to its essential shape.
"""

from repro.ir import parse_module, verify_module
from repro.transforms import (
    DeadCodeElimination,
    LoopMemoryMotion,
    Straighten,
    Unspeculation,
)
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent


class TestUnspeculationJoinBypass:
    """A group must not be pushed below a branch whose block is also
    reachable *around* the group (hypothesis seed 1612).

    Here `grp` computes r6 only on the fallthrough path; `merge` is a
    join (reachable directly from entry). Pushing `grp` under merge's
    branch would make the bypassing path execute it too, clobbering the
    r6 the entry path loaded.
    """

    SRC = """
data data: size=64 init=[1, 2, 3, 4, 5, 6, 7, 8]

func f(r3, r4):
entry:
    LA r10, data
    L r6, 12(r10)
    CI cr1, r4, -1
    BT merge, cr1.ge
grp:
    ANDI r6, r4, -2
merge:
    NOP
    CI cr2, r3, 4
    BT other, cr2.le
use:
    XORI r3, r6, 7
    A r3, r3, r6
    RET
other:
    LR r3, r6
    RET
"""

    def test_group_not_pushed_past_join(self):
        before = parse_module(self.SRC)
        after = parse_module(self.SRC)
        ctx = PassContext(after)
        Unspeculation().run_on_module(after, ctx)
        verify_module(after)
        args = [[0, 0], [5, -5], [-5, 17], [10, 3]]
        assert_equivalent(before, after, "f", args)

    def test_full_prefix_pipeline(self):
        before = parse_module(self.SRC)
        after = parse_module(self.SRC)
        ctx = PassContext(after)
        for p in (Straighten(), DeadCodeElimination(), Unspeculation(), Straighten()):
            p.run_on_module(after, ctx)
        assert_equivalent(before, after, "f", [[-5, 17], [3, 3]])


class TestLoopMotionSeesInnerExitStores:
    """After moving a store out of an inner loop, the store that
    materialises on the inner exit edge lies inside the OUTER loop; the
    outer loop's aliasing/membership analysis must see it (hypothesis
    seed 1354).

    Without loop rediscovery between motions, the outer loop cached the
    inner preheader load while the (invisible) inner exit-edge store kept
    writing the location, and memory diverged.
    """

    SRC = """
data data: size=64 init=[0, 0, 0, 0, 0, 0, 9]

func f(r3, r4):
entry:
    LA r10, data
    LI r20, 3
outer:
    LI r21, 2
inner:
    CI cr4, r3, 3
    BT skip, cr4.ge
write:
    AI r3, r3, 1
    ST 24(r10), r3
skip:
    AI r21, r21, -1
    CI cr3, r21, 0
    BF inner, cr3.eq
odone:
    AI r20, r20, -1
    CI cr2, r20, 0
    BF outer, cr2.eq
fin:
    L r4, 24(r10)
    A r3, r3, r4
    RET
"""

    ARGS = [[0, 0], [-5, 17], [2, 1], [10, 0]]

    def test_nested_motion_preserves_memory(self):
        before = parse_module(self.SRC)
        after = parse_module(self.SRC)
        ctx = PassContext(after)
        LoopMemoryMotion().run_on_module(after, ctx)
        verify_module(after)
        assert_equivalent(before, after, "f", self.ARGS)

    def test_motion_cascades_outward(self):
        # With fresh loop discovery the cache legitimately hoists through
        # both loop levels (or stops consistently) — either way, applying
        # the pass twice more must change nothing further.
        module = parse_module(self.SRC)
        ctx = PassContext(module)
        LoopMemoryMotion().run_on_module(module, ctx)
        snapshot = [str(i) for i in module.functions["f"].instructions()]
        LoopMemoryMotion().run_on_module(module, ctx)
        assert [str(i) for i in module.functions["f"].instructions()] == snapshot
