"""Speculation tagging across the passes that create (or undo) it.

Any pass that moves a load to a point where its guard may not have
executed must tag the moved instruction ``attrs["speculative"]`` so the
paged memory model can contain a mis-speculated fault as poison instead
of a trap. Unspeculation moves instructions back *below* their guards,
so it clears the tag. The verifier's opt-in ``check_speculation`` mode
rejects the tag on anything with a non-speculative side effect.
"""

import pytest

from repro.ir import parse_module, verify_module
from repro.ir.verifier import VerificationError, verify_function
from repro.machine.interpreter import run_function
from repro.machine.memory import SpeculationFault
from repro.scheduling.global_scheduler import GlobalScheduling
from repro.transforms import LoopMemoryMotion, Unspeculation
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent


def _speculative_instrs(module):
    return [
        instr
        for fn in module.functions.values()
        for bb in fn.blocks
        for instr in bb.instrs
        if instr.is_speculative
    ]


class TestLoopMemoryMotionTags:
    SRC = """
data a: size=16 init=[0, 0, 0, 5]
data b: size=40 init=[1, 0, 1, 1, 0, 1, 0, 0, 1, 1]

func f(r3):
    LA r4, a
    LA r6, b
    LI r5, 0
loop:
    L r7, 0(r6)
    CI cr0, r7, 0
    BT skip, cr0.eq
    L r3, 12(r4)
    AI r3, r3, 1
    ST 12(r4), r3
skip:
    AI r6, r6, 4
    AI r5, r5, 1
    CI cr1, r5, 10
    BF loop, cr1.eq
done:
    L r3, 12(r4)
    RET
"""

    def test_preheader_load_is_tagged(self):
        module = parse_module(self.SRC)
        changed = LoopMemoryMotion().run_on_module(module, PassContext(module))
        assert changed
        verify_module(module, check_speculation=True)
        tagged = _speculative_instrs(module)
        assert tagged, "loop-memory-motion moved a load but tagged nothing"
        assert all(i.is_load for i in tagged)

    def test_tagged_module_runs_clean_on_paged(self):
        before = parse_module(self.SRC)
        after = parse_module(self.SRC)
        LoopMemoryMotion().run_on_module(after, PassContext(after))
        # condition 5 guarantees the moved load's address is always valid,
        # so the speculative tag never converts a real fault
        r = run_function(after, "f", [0], mem_model="paged")
        assert r.value == run_function(before, "f", [0], mem_model="paged").value


class TestGlobalSchedulerTags:
    SRC = """
data a: size=32 init=[5, 6, 7, 8]

func f(r3):
    LA r9, a
    CI cr0, r3, 0
    BT skip, cr0.le
take:
    L r4, 0(r9)
    AI r4, r4, 1
    A r3, r3, r4
    RET
skip:
    LI r3, -1
    RET
"""

    def test_hoisted_load_is_tagged(self):
        module = parse_module(self.SRC)
        GlobalScheduling().run_on_module(module, PassContext(module))
        verify_module(module, check_speculation=True)
        entry = module.functions["f"].blocks[0]
        hoisted = [i for i in entry.instrs if i.is_load]
        assert hoisted, "expected the guarded load hoisted into the entry block"
        assert all(i.is_speculative for i in hoisted)

    def test_untouched_instructions_not_tagged(self):
        module = parse_module(self.SRC)
        GlobalScheduling().run_on_module(module, PassContext(module))
        for fn in module.functions.values():
            for bb in fn.blocks:
                for instr in bb.instrs:
                    if instr.is_speculative:
                        assert instr.is_load or not instr.is_memory

    def test_semantics_preserved_on_paged(self):
        before = parse_module(self.SRC)
        after = parse_module(self.SRC)
        GlobalScheduling().run_on_module(after, PassContext(after))
        for args in ([1], [0], [-1], [10]):
            r0 = run_function(before, "f", list(args), mem_model="paged")
            r1 = run_function(after, "f", list(args), mem_model="paged")
            assert r1.value == r0.value


class TestUnspeculationClearsTags:
    SRC = """
data out: size=8

func f(r3):
    LA r9, out
    LI r4, 1
    CI cr0, r3, 0
    BT cold, cr0.gt
    B join
cold:
    LI r5, 99
    ST 4(r9), r5
    LI r4, 0
join:
    ST 0(r9), r4
    LR r3, r4
    RET
"""

    def test_pushed_instruction_loses_tag(self):
        module = parse_module(self.SRC)
        # Tag the speculative flag-setting LI the way a hoisting pass would.
        entry = module.functions["f"].blocks[0]
        for instr in entry.instrs:
            if instr.opcode == "LI":
                instr.attrs["speculative"] = True
        ctx = PassContext(module)
        Unspeculation().run_on_module(module, ctx)
        assert ctx.stats.get("unspeculation.instrs-pushed", 0) >= 1
        # Whatever was pushed below its guard is no longer speculative.
        assert not _speculative_instrs(module)

    def test_unspeculated_module_semantics(self):
        before = parse_module(self.SRC)
        after = parse_module(self.SRC)
        for instr in after.functions["f"].blocks[0].instrs:
            if instr.opcode == "LI":
                instr.attrs["speculative"] = True
        Unspeculation().run_on_module(after, PassContext(after))
        verify_module(after, check_speculation=True)
        assert_equivalent(before, after, "f", [[0], [5], [-5]])


class TestRoundTrip:
    def test_speculative_tag_survives_print_parse(self):
        from repro.ir.printer import format_module

        module = parse_module(TestGlobalSchedulerTags.SRC)
        GlobalScheduling().run_on_module(module, PassContext(module))
        assert _speculative_instrs(module)
        text = format_module(module)
        assert "!spec" in text
        reparsed = parse_module(text)
        assert len(_speculative_instrs(reparsed)) == len(
            _speculative_instrs(module)
        )
        # and a second round trip is stable
        assert format_module(reparsed) == text

    def test_untagged_ir_prints_without_marker(self):
        from repro.ir.printer import format_module

        module = parse_module(TestGlobalSchedulerTags.SRC)
        assert "!spec" not in format_module(module)


class TestVerifierSpeculationCheck:
    def test_speculative_store_rejected(self):
        src = """
data a: size=8

func f(r3):
    LA r9, a
    ST 0(r9), r3
    RET
"""
        module = parse_module(src)
        for bb in module.functions["f"].blocks:
            for instr in bb.instrs:
                if instr.opcode == "ST":
                    instr.attrs["speculative"] = True
        # default mode tolerates it (opt-in check)
        verify_module(module)
        with pytest.raises(VerificationError, match="speculative"):
            verify_module(module, check_speculation=True)

    def test_speculative_branch_rejected(self):
        src = """
func f(r3):
    CI cr0, r3, 0
    BT done, cr0.eq
body:
    LI r3, 1
done:
    RET
"""
        module = parse_module(src)
        for bb in module.functions["f"].blocks:
            term = bb.terminator
            if term is not None and term.is_cond_branch:
                term.attrs["speculative"] = True
        with pytest.raises(VerificationError, match="speculative"):
            verify_function(module.functions["f"], check_speculation=True)

    def test_speculative_load_accepted(self):
        src = """
func f(r3):
    L r4, 0(r3)
    LI r3, 0
    RET
"""
        module = parse_module(src)
        for bb in module.functions["f"].blocks:
            for instr in bb.instrs:
                if instr.is_load:
                    instr.attrs["speculative"] = True
        verify_module(module, check_speculation=True)
