"""Straighten, copy propagation, DCE."""

from repro.ir import parse_function, parse_module, verify_function
from repro.transforms import CopyPropagation, DeadCodeElimination, RemoveUnreachable, Straighten
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent, standard_argsets


def ctx_for(module):
    return PassContext(module)


class TestStraighten:
    def test_jump_threading(self):
        m = parse_module(
            """
func f(r3):
    B a
a:
    B b
b:
    LI r3, 7
    RET
"""
        )
        Straighten().run_on_function(m.functions["f"], ctx_for(m))
        fn = m.functions["f"]
        verify_function(fn)
        # Everything collapses into a straight line.
        assert fn.instruction_count() == 2

    def test_redundant_branch_removed(self):
        m = parse_module("func f(r3):\n    B next\nnext:\n    RET")
        Straighten().run_on_function(m.functions["f"], ctx_for(m))
        assert all(not i.is_uncond_branch for i in m.functions["f"].instructions())

    def test_degenerate_cond_branch_removed(self):
        m = parse_module(
            """
func f(r3):
    CI cr0, r3, 0
    BT next, cr0.eq
next:
    LI r3, 1
    RET
"""
        )
        Straighten().run_on_function(m.functions["f"], ctx_for(m))
        assert all(not i.is_cond_branch for i in m.functions["f"].instructions())

    def test_merge_preserves_interior_fallthrough(self):
        # Regression test: merging `pred -> B bb` where bb itself falls
        # through must keep bb's fallthrough target reachable.
        src = """
func f(r3):
entry:
    CI cr0, r3, 0
    BT other, cr0.lt
    B target
other:
    AI r3, r3, 5
target:
    AI r3, r3, 1
tail:
    AI r3, r3, 10
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        Straighten().run_on_function(after.functions["f"], ctx_for(after))
        verify_function(after.functions["f"])
        assert_equivalent(before, after, "f", [[1], [-1], [0]])

    def test_semantics_preserved_on_diamond(self):
        src = """
func f(r3):
    CI cr0, r3, 0
    BT neg, cr0.lt
    LI r4, 1
    B out
neg:
    LI r4, 2
out:
    LR r3, r4
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        Straighten().run_on_function(after.functions["f"], ctx_for(after))
        assert_equivalent(before, after, "f", [[5], [-5], [0]])


class TestRemoveUnreachable:
    def test_dead_blocks_removed(self):
        m = parse_module(
            "func f(r3):\n    RET\ndead:\n    LI r3, 1\n    RET"
        )
        changed = RemoveUnreachable().run_on_function(m.functions["f"], ctx_for(m))
        assert changed
        assert len(m.functions["f"].blocks) == 1

    def test_noop_when_all_reachable(self):
        m = parse_module("func f(r3):\n    RET")
        assert not RemoveUnreachable().run_on_function(m.functions["f"], ctx_for(m))


class TestCopyPropagation:
    def test_forwarding(self):
        m = parse_module(
            "func f(r3):\n    LR r4, r3\n    AI r5, r4, 1\n    LR r3, r5\n    RET"
        )
        CopyPropagation().run_on_function(m.functions["f"], ctx_for(m))
        instrs = list(m.functions["f"].instructions())
        assert instrs[1].ra == instrs[0].ra  # AI reads r3 directly

    def test_invalidation_on_redefinition(self):
        src = """
func f(r3):
    LR r4, r3
    LI r3, 100
    A r3, r4, r3
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        CopyPropagation().run_on_function(after.functions["f"], ctx_for(after))
        assert_equivalent(before, after, "f", [[5], [0], [-3]])
        # r4's source r3 was overwritten: the A must still read r4.
        instrs = list(after.functions["f"].instructions())
        assert str(instrs[2].ra) == "r4"

    def test_does_not_retarget_update_form_base(self):
        src = """
data a: size=16 init=[1,2,3,4]
func f(r3):
    LA r5, a
    LR r4, r5
    LU r3, 4(r4)
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        CopyPropagation().run_on_function(after.functions["f"], ctx_for(after))
        assert_equivalent(before, after, "f", [[0]])


class TestDCE:
    def test_removes_dead_arithmetic(self):
        m = parse_module(
            "func f(r3):\n    LI r4, 1\n    LI r5, 2\n    A r6, r4, r5\n    RET"
        )
        DeadCodeElimination().run_on_function(m.functions["f"], ctx_for(m))
        assert m.functions["f"].instruction_count() == 1  # just RET

    def test_keeps_live_chain(self):
        m = parse_module(
            "func f(r3):\n    LI r4, 1\n    A r3, r3, r4\n    RET"
        )
        DeadCodeElimination().run_on_function(m.functions["f"], ctx_for(m))
        assert m.functions["f"].instruction_count() == 3

    def test_keeps_stores_and_calls(self):
        m = parse_module(
            "data a: size=4\nfunc f(r3):\n    LA r4, a\n    ST 0(r4), r3\n    CALL print_int, 1\n    RET"
        )
        DeadCodeElimination().run_on_function(m.functions["f"], ctx_for(m))
        assert m.functions["f"].instruction_count() == 4

    def test_keeps_pinned_instructions(self):
        m = parse_module("func f(r3):\n    LI r4, 1\n    RET")
        li = m.functions["f"].blocks[0].instrs[0]
        li.attrs["counter"] = True
        DeadCodeElimination().run_on_function(m.functions["f"], ctx_for(m))
        assert m.functions["f"].instruction_count() == 2

    def test_keeps_volatile_loads(self):
        m = parse_module(
            "data v: size=4 volatile\nfunc f(r3):\n    LA r4, v\n    L r5, 0(r4)\n    RET"
        )
        DeadCodeElimination().run_on_function(m.functions["f"], ctx_for(m))
        ops = [i.opcode for i in m.functions["f"].instructions()]
        assert "L" in ops

    def test_iterates_to_fixpoint(self):
        m = parse_module(
            "func f(r3):\n    LI r4, 1\n    AI r5, r4, 1\n    AI r6, r5, 1\n    RET"
        )
        DeadCodeElimination().run_on_function(m.functions["f"], ctx_for(m))
        assert m.functions["f"].instruction_count() == 1
