"""Linkage lowering and prolog tailoring (paper section 2.6)."""

import pytest

from repro.ir import parse_module, verify_module
from repro.machine.interpreter import run_function
from repro.transforms import LinkageLowering, PrologTailoring
from repro.transforms.linkage import killed_callee_saved
from repro.transforms.pass_manager import PassContext
from repro.transforms.prolog_tailoring import (
    check_unwind_invariant,
    dynamic_save_restore_count,
)

from support import assert_equivalent

# The shape of the paper's tailoring figure: r29/r31 killed on one early
# branch, r28 on the other arm, r30 only in a nested arm.
PAPER_SHAPE = """
func sub(r3):
entry:
    CI cr0, r3, 0
    BT l1, cr0.lt
arm1:
    LI r29, 1
    LI r31, 2
    A r3, r29, r31
    RET
l1:
    LI r28, 3
    CI cr1, r3, -10
    BT l2, cr1.lt
arm2:
    LI r30, 4
    A r28, r28, r30
l2:
    A r3, r3, r28
    RET

func main(r3):
    LI r28, 111
    LI r29, 222
    LI r30, 333
    LI r31, 444
    CALL sub, 1
    A r3, r3, r28
    A r3, r3, r29
    A r3, r3, r30
    A r3, r3, r31
    RET
"""

ARGS = [[5], [-5], [-20]]


def lower(src, pass_obj):
    before = parse_module(src)
    after = parse_module(src)
    ctx = PassContext(after)
    pass_obj.run_on_module(after, ctx)
    # main itself needs linkage too for the ABI check harness.
    LinkageLowering().run_on_module(after, ctx)
    verify_module(after)
    return before, after, ctx


class TestKilledAnalysis:
    def test_killed_set(self):
        module = parse_module(PAPER_SHAPE)
        killed = killed_callee_saved(module.functions["sub"])
        assert [r.name for r in killed] == ["r28", "r29", "r30", "r31"]

    def test_call_does_not_count_as_kill(self):
        module = parse_module(PAPER_SHAPE)
        killed = killed_callee_saved(module.functions["main"])
        assert [r.name for r in killed] == ["r28", "r29", "r30", "r31"]


class TestLinkageLowering:
    def test_abi_respected(self):
        _, after, _ = lower(PAPER_SHAPE, LinkageLowering())
        for args in ARGS:
            run_function(after, "main", args, check_callee_saved=True)

    def test_expected_values(self):
        # The unlowered module is not a valid differential reference here
        # (main deliberately reads callee-saved registers across the
        # call), so check against hand-computed results.
        _, after, _ = lower(PAPER_SHAPE, LinkageLowering())
        assert run_function(after, "main", [5]).value == 3 + 1110
        assert run_function(after, "main", [-5]).value == 2 + 1110
        assert run_function(after, "main", [-20]).value == -17 + 1110

    def test_saves_everything_on_every_path(self):
        _, after, _ = lower(PAPER_SHAPE, LinkageLowering())
        r = run_function(after, "main", [5], record_trace=True)
        saves, restores = dynamic_save_restore_count(r.trace)
        # main saves 4 + sub saves 4, symmetric restores.
        assert saves == 8
        assert restores == 8

    def test_idempotent(self):
        module = parse_module(PAPER_SHAPE)
        ctx = PassContext(module)
        assert LinkageLowering().run_on_module(module, ctx)
        assert not LinkageLowering().run_on_module(module, ctx)


class TestPrologTailoring:
    def test_abi_respected(self):
        _, after, _ = lower(PAPER_SHAPE, PrologTailoring())
        for args in ARGS:
            run_function(after, "main", args, check_callee_saved=True)

    def test_expected_values(self):
        _, after, _ = lower(PAPER_SHAPE, PrologTailoring())
        assert run_function(after, "main", [5]).value == 3 + 1110
        assert run_function(after, "main", [-5]).value == 2 + 1110
        assert run_function(after, "main", [-20]).value == -17 + 1110

    def test_unwind_invariant_holds(self):
        _, after, _ = lower(PAPER_SHAPE, PrologTailoring())
        check_unwind_invariant(after.functions["sub"])
        check_unwind_invariant(after.functions["main"])

    def test_fewer_dynamic_saves_than_untailored(self):
        _, tailored, _ = lower(PAPER_SHAPE, PrologTailoring())
        _, untailored, _ = lower(PAPER_SHAPE, LinkageLowering())
        for args in ARGS:
            rt = run_function(tailored, "main", args, record_trace=True)
            ru = run_function(untailored, "main", args, record_trace=True)
            st, _ = dynamic_save_restore_count(rt.trace)
            su, _ = dynamic_save_restore_count(ru.trace)
            assert st <= su
        # On the arm1 path only r29/r31 are needed: strictly fewer saves.
        rt = run_function(tailored, "main", [5], record_trace=True)
        ru = run_function(untailored, "main", [5], record_trace=True)
        assert dynamic_save_restore_count(rt.trace)[0] < dynamic_save_restore_count(ru.trace)[0]

    def test_saves_never_inside_loops(self):
        src = """
func f(r3):
entry:
    MTCTR r3
loop:
    LI r20, 7
    A r3, r3, r20
    BCT loop
done:
    RET
"""
        module = parse_module(src)
        ctx = PassContext(module)
        PrologTailoring().run_on_module(module, ctx)
        verify_module(module)
        fn = module.functions["f"]
        from repro.analysis import find_natural_loops

        loops = find_natural_loops(fn)
        for loop in loops:
            for bb in loop.blocks(fn):
                assert all(not i.attrs.get("save") for i in bb.instrs)
        check_unwind_invariant(fn)

    def test_no_kills_no_lowering(self):
        src = "func f(r3):\n    AI r3, r3, 1\n    RET"
        module = parse_module(src)
        assert not PrologTailoring().run_on_module(module, PassContext(module))

    def test_straightline_function_saves_in_prolog(self):
        src = "func f(r3):\n    LI r20, 5\n    A r3, r3, r20\n    RET"
        before = parse_module(src)
        after = parse_module(src)
        PrologTailoring().run_on_module(after, PassContext(after))
        verify_module(after)
        assert_equivalent(before, after, "f", [[3]], check_memory=False)
        saves = [i for i in after.functions["f"].instructions() if i.attrs.get("save")]
        assert len(saves) == 1
