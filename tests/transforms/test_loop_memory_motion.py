"""Speculative load/store motion out of loops (paper section 2.1)."""

from repro.ir import parse_module, verify_module
from repro.transforms import LoopMemoryMotion
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent, run

PAPER_EXAMPLE = """
data a: size=16 init=[0, 0, 0, 5]
data b: size=40 init=[1, 0, 1, 1, 0, 1, 0, 0, 1, 1]

func f(r3):
    LA r4, a
    LA r6, b
    LI r5, 0
loop:
    L r7, 0(r6)
    CI cr0, r7, 0
    BT skip, cr0.eq
    L r3, 12(r4)
    AI r3, r3, 1
    ST 12(r4), r3
skip:
    AI r6, r6, 4
    AI r5, r5, 1
    CI cr1, r5, 10
    BF loop, cr1.eq
done:
    L r3, 12(r4)
    RET
"""


def apply(src: str):
    before = parse_module(src)
    after = parse_module(src)
    ctx = PassContext(after)
    changed = LoopMemoryMotion().run_on_module(after, ctx)
    verify_module(after)
    return before, after, ctx, changed


class TestPaperExample:
    def test_motion_applies_and_preserves_semantics(self):
        before, after, ctx, changed = apply(PAPER_EXAMPLE)
        assert changed
        assert ctx.stats.get("loop-motion.groups-moved", 0) >= 1
        assert_equivalent(before, after, "f", [[0]])

    def test_loop_body_has_no_memory_access_to_moved_location(self):
        _, after, _, _ = apply(PAPER_EXAMPLE)
        fn = after.functions["f"]
        from repro.analysis import find_natural_loops

        loop = find_natural_loops(fn)[0]
        for bb in loop.blocks(fn):
            for instr in bb.instrs:
                assert not (instr.is_memory and instr.disp == 12), (
                    f"moved access still in loop: {instr}"
                )

    def test_store_materialised_at_exit(self):
        _, after, _, _ = apply(PAPER_EXAMPLE)
        r = run(after, "f", [0])
        layout = after.layout()
        assert r.state.mem.get(layout["a"] + 12) == 11  # 5 + 6 ones


class TestSafetyConditions:
    def test_volatile_blocks_motion(self):
        src = PAPER_EXAMPLE.replace(
            "data a: size=16 init=[0, 0, 0, 5]",
            "data a: size=16 init=[0, 0, 0, 5] volatile",
        )
        _, _, ctx, changed = apply(src)
        assert not changed

    def test_base_written_in_loop_blocks_motion(self):
        src = """
data a: size=64
func f(r3):
    LA r4, a
    LI r5, 0
loop:
    L r6, 0(r4)
    ST 0(r4), r5
    AI r4, r4, 4
    AI r5, r5, 1
    CI cr1, r5, 8
    BF loop, cr1.eq
done:
    LR r3, r6
    RET
"""
        _, _, ctx, changed = apply(src)
        assert not changed

    def test_aliasing_reference_blocks_motion(self):
        # A store through an unknown (parameter) pointer may hit 'a'.
        src = """
data a: size=16 init=[0,0,0,5]
func f(r3):
    LA r4, a
    LI r5, 0
loop:
    ST 0(r3), r5
    L r6, 12(r4)
    AI r6, r6, 1
    ST 12(r4), r6
    AI r5, r5, 1
    CI cr1, r5, 4
    BF loop, cr1.eq
done:
    L r3, 12(r4)
    RET
"""
        _, _, ctx, changed = apply(src)
        assert not changed

    def test_out_of_bounds_displacement_blocks_motion(self):
        # a is too small: 12+4 > 8, condition 5a fails.
        src = PAPER_EXAMPLE.replace(
            "data a: size=16 init=[0, 0, 0, 5]", "data a: size=8 init=[0, 0]"
        )
        _, _, ctx, changed = apply(src)
        assert not changed

    def test_unknown_call_blocks_motion(self):
        src = """
data a: size=16 init=[0,0,0,5]
func g(r3):
    RET
func f(r3):
    LA r4, a
    LI r5, 0
loop:
    L r6, 12(r4)
    AI r6, r6, 1
    ST 12(r4), r6
    CALL g, 0
    AI r5, r5, 1
    CI cr1, r5, 4
    BF loop, cr1.eq
done:
    L r3, 12(r4)
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        ctx = PassContext(after)
        changed = LoopMemoryMotion().run_on_module(after, ctx)
        # g is a module function with unknown effects: blocked.
        assert not changed


class TestLibraryCallException:
    def test_memory_confined_call_allows_motion_with_flush(self):
        # memset_words only touches memory through its arguments; the
        # paper's I/O-procedure exception keeps motion legal with a
        # flush/reload around the call.
        src = """
data a: size=16 init=[0,0,0,5]
data buf: size=32
func f(r3):
    LA r4, a
    LI r5, 0
loop:
    L r6, 12(r4)
    AI r6, r6, 1
    ST 12(r4), r6
    LA r3, buf
    LI r4, 7
    LI r5, 2
    CALL memset_words, 3
    LA r4, a
    LI r5, 0
    AI r5, r5, 1
    CI cr1, r5, 1
    BF loop, cr1.eq
done:
    L r3, 12(r4)
    RET
"""
        # This loop structure is contrived (r4/r5 rewritten inside), so
        # motion is blocked by condition 2 anyway; use a cleaner one:
        src = """
data a: size=16 init=[0,0,0,5]
data buf: size=32
func f(r3, r9):
    LA r4, a
    LA r8, buf
    LI r5, 0
loop:
    L r6, 12(r4)
    AI r6, r6, 1
    ST 12(r4), r6
    LR r3, r8
    LI r4, 7
    LI r5, 2
    CALL memset_words, 3
    AI r9, r9, 1
    CI cr1, r9, 3
    BF loop, cr1.eq
done:
    LA r4, a
    L r3, 12(r4)
    RET
"""
        # The base register must survive the call, so it lives in a
        # callee-saved register (a call clobbers the volatile ones, which
        # correctly fails condition 2 otherwise).
        src = """
data a: size=16 init=[0,0,0,5]
data buf: size=32
func f(r20):
    LA r21, a
    LA r22, buf
loop:
    L r6, 12(r21)
    AI r6, r6, 1
    ST 12(r21), r6
    LR r3, r22
    LI r4, 7
    LI r5, 2
    CALL memset_words, 3
    AI r20, r20, -1
    CI cr1, r20, 0
    BF loop, cr1.eq
done:
    L r3, 12(r21)
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        ctx = PassContext(after)
        changed = LoopMemoryMotion().run_on_module(after, ctx)
        verify_module(after)
        assert changed
        assert_equivalent(before, after, "f", [[1], [3], [5]])
        # Flush code must surround the call inside the loop.
        fn = after.functions["f"]
        flushes = [i for i in fn.instructions() if i.attrs.get("cached")]
        assert flushes


class TestIdempotence:
    def test_second_run_is_noop(self):
        after = parse_module(PAPER_EXAMPLE)
        ctx = PassContext(after)
        LoopMemoryMotion().run_on_module(after, ctx)
        snapshot = [str(i) for i in after.functions["f"].instructions()]
        LoopMemoryMotion().run_on_module(after, ctx)
        assert [str(i) for i in after.functions["f"].instructions()] == snapshot
