"""A pass that silently leaves an unreachable block with a dangling
branch target must not slip through the pipeline.

Selective verification only re-checks functions a pass *reports*
changing, so a buggy pass that mutates while reporting ``False`` used
to escape verification entirely — and ``Straighten``, the pass that
could have cleaned the garbage up, crashed with a ``KeyError`` when
CFG queries hit the dangling target. Three independent defenses are
exercised here:

- ``Function.successors`` is total on broken IR (a dangling target
  contributes no edge),
- ``Straighten`` deletes the unreachable block instead of crashing,
- both pass managers re-verify the whole module at the end of the
  pipeline and surface the corruption.
"""

import pytest

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import make_b
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module
from repro.pipeline import compile_module
from repro.robustness.guard import GuardedPassManager
from repro.transforms.pass_manager import Pass, PassContext, PassManager
from repro.transforms.straighten import Straighten

SOURCE = """
func f(r3):
entry:
    AI r3, r3, 1
    RET
"""


class LyingPass(Pass):
    """Adds an unreachable block branching nowhere; reports no change."""

    name = "lying-pass"

    def run_on_function(self, fn, ctx) -> bool:
        orphan = BasicBlock(fn.new_label("orphan"))
        orphan.append(make_b("no_such_label"))
        fn.blocks.append(orphan)
        return False  # the lie: selective verification is skipped


def _corrupted():
    module = parse_module(SOURCE)
    LyingPass().run_on_function(module.functions["f"], PassContext(module))
    return module


def test_successors_total_on_dangling_target():
    module = _corrupted()
    fn = module.functions["f"]
    orphan = fn.blocks[-1]
    assert fn.successors(orphan) == []
    # predecessor_map used to raise KeyError via successors.
    assert orphan.label in fn.predecessor_map()


def test_verifier_still_rejects_dangling_target():
    with pytest.raises(Exception):
        verify_module(_corrupted())


def test_straighten_cleans_dangling_unreachable():
    module = _corrupted()
    fn = module.functions["f"]
    assert Straighten().run_on_function(fn, PassContext(module))
    assert [bb.label for bb in fn.blocks] == ["entry"]
    verify_module(module)  # clean again


def test_pass_manager_final_verify_catches_lying_pass():
    module = parse_module(SOURCE)
    manager = PassManager([LyingPass()])
    with pytest.raises(RuntimeError, match="end of pipeline"):
        manager.run(module)


def test_guarded_manager_final_verify_catches_lying_pass():
    module = parse_module(SOURCE)
    manager = GuardedPassManager([LyingPass()], policy="rollback")
    with pytest.raises(RuntimeError, match="end of pipeline"):
        manager.run(module)


def test_straighten_in_pipeline_repairs_before_final_verify():
    """A lying pass followed by Straighten: cleanup wins, compile is clean.

    This mirrors the real pipelines, where Straighten runs late exactly
    to mop up after CFG-restructuring passes.
    """
    module = parse_module(SOURCE)
    manager = PassManager([LyingPass(), Straighten()])
    manager.run(module)
    verify_module(module)
    assert [bb.label for bb in module.functions["f"].blocks] == ["entry"]


def test_compile_module_end_to_end_still_clean():
    compiled = compile_module(parse_module(SOURCE), level="vliw")
    verify_module(compiled.module)
